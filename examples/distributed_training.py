"""Distributed-training walkthrough: parameter servers, async pipeline, sharding.

The paper trains on 1000 workers / 40 parameter servers with a distributed
graph engine (Euler) and an asynchronous IO pipeline.  This example exercises
the laptop-scale simulations of those subsystems:

1. shard the heterogeneous graph across simulated Euler servers and inspect
   the storage / request balance,
2. train a model through the simulated worker/parameter-server cluster with
   asynchronous (stale) pulls,
3. quantify the benefit of overlapping the three training stages with the
   async pipeline model,
4. use the GNN cost model to reproduce the shape of Fig. 4(a): memory and
   iteration speed vs the number of sampled neighbors,
5. stream new sessions into the sharded store while it keeps serving
   queries (the distributed face of the streaming-update subsystem; see
   ``examples/streaming_ingest.py`` for the full replay-driver demo).

Run with:  python examples/distributed_training.py
"""

from repro.api import build_model, load_dataset
from repro.data import train_test_split_examples
from repro.distributed import (
    AsyncPipeline,
    AsyncTrainingSimulator,
    GNNCostModel,
    ParameterServerCluster,
)
from repro.experiments import format_table
from repro.graph import GraphMutator, ShardedGraphStore
from repro.graph.schema import NodeType


def main() -> None:
    dataset = load_dataset("synthetic-taobao", num_users=50, num_queries=40,
                           num_items=120, sessions_per_user=5.0, seed=8)
    train, _ = train_test_split_examples(dataset.impressions, 0.9, seed=0)

    # 1. Distributed graph storage (Euler-like sharding + replication).
    store = ShardedGraphStore(dataset.graph, num_shards=4, replication_factor=2)
    for user in range(30):
        store.neighbors(NodeType.USER, user % dataset.config.num_users)
    print(f"Sharded graph store: {store.num_servers} servers, "
          f"storage imbalance {store.storage_imbalance():.2f}, "
          f"request imbalance {store.load_imbalance():.2f}")

    # 2. Asynchronous worker / parameter-server training.
    model = build_model("GraphSage", dataset.graph, embedding_dim=16,
                        fanouts=(4, 2), seed=0)
    cluster = ParameterServerCluster(num_servers=4, learning_rate=0.05)
    simulator = AsyncTrainingSimulator(model, cluster, num_workers=4,
                                       staleness=2, seed=0)
    losses = simulator.run(train[:400], batch_size=32, steps=12)
    print(f"\nAsync PS training: {len(losses)} steps, "
          f"loss {losses[0]:.4f} -> {losses[-1]:.4f}, "
          f"stale pulls observed: {simulator.stale_pulls}, "
          f"PS traffic {cluster.total_traffic_bytes() / 1e6:.2f} MB, "
          f"parameter placement {cluster.placement_counts()}")

    # 3. Pipeline overlap of the three training stages.
    pipeline = AsyncPipeline.default_training_pipeline(
        subgraph_io=0.012, embedding_io=0.018, compute=0.020)
    print(f"\nPipeline overlap over 500 batches: "
          f"sequential {pipeline.sequential_time(500):.1f}s vs "
          f"pipelined {pipeline.pipelined_time(500):.1f}s "
          f"(speedup {pipeline.speedup(500):.2f}x, "
          f"bottleneck: {pipeline.bottleneck().name})")

    # 4. Fig. 4(a)-style cost sweep: growing the sampled-neighbor count.
    cost_model = GNNCostModel(hidden_dim=16)
    rows = []
    for fanout, cost in cost_model.sweep_fanouts([5, 10, 15, 20, 25, 30],
                                                 num_layers=2, batch_size=256):
        row = {"fanout": fanout}
        row.update(cost.as_row())
        rows.append(row)
    print()
    print(format_table(rows, title="Training cost vs sampled neighbors "
                                   "(2-layer GCN cost model, Fig. 4a shape)"))

    # 5. Streaming updates into the sharded store: new sessions (including a
    #    brand-new user) flow through the same scoped-alias-rebuild path the
    #    single-machine graph uses; the partitioner is stable, so only the
    #    new nodes gain shard assignments.
    from repro.graph.schema import EdgeType, RelationSpec

    new_user = dataset.config.num_users          # id beyond the built graph
    mutator = GraphMutator(store.graph, seed=1)
    update = mutator.update_from_sessions([
        (new_user, 3, [10, 11]),
        (2, 5, [40]),
    ])
    delta = store.apply_updates(update)          # shard accounting included
    touched = ", ".join(f"{t}: {len(ids)}" for t, ids in delta.touched.items())
    print(f"\nStreaming into the sharded store: version "
          f"{store.graph.version}, touched {{{touched}}}, "
          f"storage imbalance {store.storage_imbalance():.2f}")
    click = RelationSpec(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    ids, weights = store.sample_neighbors(click, new_user, 2)
    print(f"New user {new_user} is immediately sampleable: "
          f"clicked items {ids.tolist()} "
          f"(weights {[round(float(w), 1) for w in weights]})")


if __name__ == "__main__":
    main()
