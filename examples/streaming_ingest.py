"""Streaming ingest: replay a behavior log against a live, serving pipeline.

The paper's behavior graph is continuously fed by user interaction logs;
this example shows the reproduction's end-to-end streaming path:

1. split a session log in time order: the warm prefix builds the initial
   ``behavior-logs`` graph, the tail becomes the live stream,
2. train and deploy a server on the warm graph (one declarative spec,
   including the ``StreamingSpec`` micro-batch/refresh cadence),
3. replay the tail with :class:`~repro.streaming.ReplayDriver`: events are
   micro-batched into :meth:`~repro.api.Pipeline.ingest`, each batch is one
   vectorized ``apply_updates`` (alias rebuilds scoped to touched rows), and
   the server refreshes on cadence — touched cache keys and postings are
   invalidated exactly, new ANN structures swap in atomically,
4. serve requests that reference users/queries/items that did not exist
   before the stream.

Run with:  python examples/streaming_ingest.py
"""

from repro.api import (
    DataSpec,
    ExperimentSpec,
    ServingSpec,
    StreamingSpec,
    TrainSpec,
    Pipeline,
    load_dataset,
)
from repro.data import split_sessions_at
from repro.experiments import format_table
from repro.streaming import ReplayDriver


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A recorded session log, split in time order: warm prefix + stream
    # ------------------------------------------------------------------ #
    source = load_dataset("synthetic-taobao", num_users=80, num_queries=60,
                          num_items=200, sessions_per_user=5.0, seed=4)
    warm, stream = split_sessions_at(source.sessions, 0.7)
    print(f"Recorded log: {len(source.sessions)} sessions -> "
          f"{len(warm)} warm the graph, {len(stream)} replay as the stream")

    # ------------------------------------------------------------------ #
    # 2. Train + deploy on the warm prefix (behavior-logs ingestion)
    # ------------------------------------------------------------------ #
    spec = ExperimentSpec(
        dataset=DataSpec(name="behavior-logs",
                         params={"sessions": warm, "seed": 0},
                         max_train_examples=250, max_test_examples=0),
        training=TrainSpec(epochs=1, max_batches_per_epoch=5, batch_size=64),
        serving=ServingSpec(ann_cells=8, warm_users=25, warm_queries=25),
        streaming=StreamingSpec(micro_batch_size=24, refresh_every=2))
    pipeline = Pipeline(spec)
    server = pipeline.deploy()
    before = pipeline.graph.summary()
    print(f"Deployed on the warm graph: {before['total_nodes']} nodes, "
          f"{before['total_edges']} edges, version {pipeline.graph.version}")

    # ------------------------------------------------------------------ #
    # 3. Replay the stream in timestamp order
    # ------------------------------------------------------------------ #
    report = ReplayDriver(pipeline).replay(stream)
    ingest = report.ingest
    after = pipeline.graph.summary()
    rows = [
        {"metric": "events replayed", "value": ingest.events},
        {"metric": "micro-batches", "value": ingest.micro_batches},
        {"metric": "server refreshes", "value": ingest.refreshes},
        {"metric": "edges appended", "value": ingest.new_edges},
        {"metric": "new nodes", "value": str(ingest.new_nodes)},
        {"metric": "cache keys invalidated",
         "value": ingest.invalidated_cache_keys},
        {"metric": "postings refreshed", "value": ingest.refreshed_postings},
        {"metric": "events/second", "value": round(report.events_per_second)},
    ]
    print()
    print(format_table(rows, title=f"Replay: {before['total_edges']} -> "
                                   f"{after['total_edges']} edges, graph "
                                   f"version {pipeline.graph.version}"))

    # ------------------------------------------------------------------ #
    # 4. The refreshed server serves requests the stream introduced
    # ------------------------------------------------------------------ #
    requests = [(s.user_id, s.query_id) for s in stream[-4:]]
    results = server.serve_batch(requests, k=5)
    rows = [{"user": r.user_id, "query": r.query_id,
             "top_items": " ".join(str(int(i)) for i in r.item_ids[:5]),
             "via_index": r.from_inverted_index,
             "cache_hit_rate": round(server.cache.hit_rate(), 3)}
            for r in results]
    print()
    print(format_table(rows, title="Serving streamed-in requests"))


if __name__ == "__main__":
    main()
