"""MovieLens-style recommendation: the paper's Table II scenario in miniature.

The prediction task is a triple ``(user, tag, movie)``: did the user interact
with the movie under the given tag?  The example builds the three-node-type
graph (users, tags, movies with top-5 relevance tags per movie), trains
Zoomer with the tag playing the "query" focal role, and compares against the
session/heterogeneous baselines the paper uses on MovieLens.

Run with:  python examples/movielens_recommendation.py
"""

from repro.baselines import HANModel, STAMPModel
from repro.core import ZoomerConfig, ZoomerModel
from repro.data import MovieLensConfig, generate_movielens_dataset, \
    train_test_split_examples
from repro.experiments import format_table
from repro.training import Trainer, TrainingConfig


def main() -> None:
    dataset = generate_movielens_dataset(MovieLensConfig(
        num_users=80, num_movies=140, num_tags=24, num_genres=6,
        ratings_per_user=10.0, seed=5))
    graph = dataset.graph
    print("MovieLens-like graph:", graph.summary()["num_nodes"],
          f"edges={graph.total_edges}")
    # The paper splits MovieLens 80/20.
    train, test = train_test_split_examples(dataset.examples, 0.8, seed=0)
    train, test = train[:1200], test[:400]
    print(f"Training triples: {len(train)}, test triples: {len(test)}")

    # One-hop aggregation on MovieLens, as in the paper's settings.
    train_config = TrainingConfig(epochs=2, batch_size=64, learning_rate=0.03,
                                  loss="focal")
    models = [
        ZoomerModel(graph, ZoomerConfig(embedding_dim=16, fanouts=(5,), seed=0)),
        HANModel(graph, embedding_dim=16, fanouts=(5,), seed=0),
        STAMPModel(graph, embedding_dim=16, seed=0),
    ]
    rows = []
    for model in models:
        trainer = Trainer(model, train_config)
        result = trainer.train(train, test)
        report = result.final_metrics
        rows.append({
            "model": model.name,
            "auc": round(report.auc * 100, 2),     # Table II reports AUC in %
            "mae": round(report.mae, 4),
            "rmse": round(report.rmse, 4),
            "train_s": round(result.training_seconds, 1),
        })
    print()
    print(format_table(rows, title="MovieLens-like comparison (Table II style)"))
    print("\nPaper Table II (for shape comparison): Zoomer AUC 93.79 vs best "
          "baseline 91.92; Zoomer also lowest MAE (0.3014).")


if __name__ == "__main__":
    main()
