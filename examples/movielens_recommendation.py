"""MovieLens-style recommendation: the paper's Table II scenario in miniature.

The prediction task is a triple ``(user, tag, movie)``: did the user interact
with the movie under the given tag?  The example declares the three-node-type
scenario (users, tags, movies with top-5 relevance tags per movie) as one
:class:`~repro.api.ExperimentSpec` with the ``movielens`` registry dataset
and the tag playing the "query" focal role; each compared model — Zoomer and
the session/heterogeneous baselines the paper uses on MovieLens — is the same
spec with a different registered model name.

Run with:  python examples/movielens_recommendation.py
"""

import dataclasses

from repro.api import DataSpec, ExperimentSpec, ModelSpec, Pipeline, TrainSpec
from repro.experiments import format_table


def main() -> None:
    spec = ExperimentSpec(
        dataset=DataSpec(
            name="movielens",
            params={"num_users": 80, "num_movies": 140, "num_tags": 24,
                    "num_genres": 6, "ratings_per_user": 10.0, "seed": 5},
            # The paper splits MovieLens 80/20.
            train_fraction=0.8,
            max_train_examples=1200, max_test_examples=400),
        # One-hop aggregation on MovieLens, as in the paper's settings.
        model=ModelSpec(name="zoomer", embedding_dim=16, fanouts=(5,)),
        training=TrainSpec(epochs=2, batch_size=64, learning_rate=0.03,
                           loss="focal"),
        seed=0)

    pipeline = Pipeline(spec).build_graph()
    graph = pipeline.graph
    print("MovieLens-like graph:", graph.summary()["num_nodes"],
          f"edges={graph.total_edges}")
    print(f"Training triples: {len(pipeline.train_examples)}, "
          f"test triples: {len(pipeline.test_examples)}")

    rows = []
    for model_name in ("zoomer", "HAN", "STAMP"):
        variant = dataclasses.replace(
            spec, model=dataclasses.replace(spec.model, name=model_name))
        result = Pipeline(variant).fit().result
        report = result.final_metrics
        rows.append({
            "model": result.model_name,
            "auc": round(report.auc * 100, 2),     # Table II reports AUC in %
            "mae": round(report.mae, 4),
            "rmse": round(report.rmse, 4),
            "train_s": round(result.training_seconds, 1),
        })
    print()
    print(format_table(rows, title="MovieLens-like comparison (Table II style)"))
    print("\nPaper Table II (for shape comparison): Zoomer AUC 93.79 vs best "
          "baseline 91.92; Zoomer also lowest MAE (0.3014).")


if __name__ == "__main__":
    main()
