"""Search-retrieval serving scenario: the Taobao workflow of the paper's Fig. 3.

A user poses a query on the app; the search engine retrieves a candidate set
from a large item pool, then ranks it.  This example exercises the retrieval
stage end to end the way the paper deploys it:

1. train Zoomer offline on behavior logs,
2. export item embeddings, build the ANN index and the two-layer inverted
   index, warm the neighbor caches (the asynchronous refresh path),
3. serve a stream of requests through :class:`repro.serving.OnlineServer`,
   measuring the latency breakdown and the relevance of what was returned,
4. sweep QPS through the queueing model to see the Fig. 9 behaviour.

Run with:  python examples/search_retrieval_serving.py
"""

import numpy as np

from repro.core import ZoomerConfig, ZoomerModel
from repro.data import (
    SyntheticTaobaoConfig,
    generate_taobao_dataset,
    train_test_split_examples,
)
from repro.experiments import format_table
from repro.serving import OnlineServer
from repro.training import Trainer, TrainingConfig


def main() -> None:
    dataset = generate_taobao_dataset(SyntheticTaobaoConfig(
        num_users=50, num_queries=40, num_items=120, num_categories=8,
        sessions_per_user=6.0, seed=3))
    train, _ = train_test_split_examples(dataset.impressions, 0.9, seed=0)

    # Offline training.
    model = ZoomerModel(dataset.graph,
                        ZoomerConfig(embedding_dim=16, fanouts=(5, 3), seed=0))
    print("Training Zoomer offline ...")
    Trainer(model, TrainingConfig(epochs=1, batch_size=64,
                                  learning_rate=0.03)).train(train[:800])

    # Build the serving stack: ANN index + inverted index + neighbor caches.
    server = OnlineServer(model, cache_capacity=30, ann_cells=8, ann_nprobe=3,
                          posting_length=50)
    active_users = list(range(20))
    active_queries = list(range(20))
    server.warm_caches(active_users, active_queries)
    server.build_inverted_index(active_queries)
    print(f"Serving stack ready: {len(server.inverted_index)} posting lists, "
          f"ANN over {dataset.config.num_items} items, "
          f"{len(server.cache)} cached nodes")

    # Serve a stream of requests taken from real sessions.
    rows = []
    relevant_hits = 0
    total_shown = 0
    for session in dataset.sessions[:25]:
        result = server.serve(session.user_id, session.query_id, k=10)
        query_category = dataset.query_categories[session.query_id]
        relevant = sum(1 for item in result.item_ids
                       if dataset.item_categories[item] == query_category)
        relevant_hits += relevant
        total_shown += len(result.item_ids)
        rows.append({
            "user": session.user_id,
            "query": session.query_id,
            "from_index": result.from_inverted_index,
            "cache_ms": round(result.latency.cache_ms, 3),
            "attention_ms": round(result.latency.attention_ms, 3),
            "ann_ms": round(result.latency.ann_ms, 3),
            "total_ms": round(result.latency.total_ms, 3),
        })
    print()
    print(format_table(rows[:10], title="First 10 served requests"))
    print(f"\nCategory-relevant items among retrieved: "
          f"{relevant_hits}/{total_shown} "
          f"({100.0 * relevant_hits / max(total_shown, 1):.1f}%)")
    print(f"Neighbor-cache hit rate: {server.cache.hit_rate():.2f}")

    # QPS sweep through the queueing model (the Fig. 9 curve).
    calibration = [(s.user_id, s.query_id) for s in dataset.sessions[:20]]
    sweep = server.qps_sweep([1000, 2000, 5000, 10000, 20000, 50000],
                             calibration)
    print()
    print(format_table(sweep, title="Response time vs QPS (queueing model)"))


if __name__ == "__main__":
    main()
