"""Search-retrieval serving scenario: the Taobao workflow of the paper's Fig. 3.

A user poses a query on the app; the search engine retrieves a candidate set
from a large item pool, then ranks it.  This example exercises the retrieval
stage end to end the way the paper deploys it — and the way the unified API
spells it: ``Pipeline(spec).fit().deploy()``.

1. declare the whole scenario (data, model, training budget, sharded serving
   stack) as one :class:`~repro.api.ExperimentSpec`,
2. ``fit()`` trains Zoomer offline on the behavior logs; ``deploy()`` exports
   item embeddings, builds the sharded ANN index and the two-layer inverted
   index, and warms the neighbor caches (the asynchronous refresh path),
3. serve a stream of requests through the returned
   :class:`repro.serving.OnlineServer`, measuring the latency breakdown and
   the relevance of what was returned,
4. replay the same stream through the **batched engine**: a
   :class:`repro.serving.RequestBatcher` micro-batches concurrent requests
   into vectorized ``serve_batch`` calls, returning identical results at a
   much higher per-machine throughput,
5. sweep QPS through the queueing model to see the Fig. 9 behaviour, plus
   the batch-size-versus-latency trade-off.

Run with:  python examples/search_retrieval_serving.py
"""

import time

from repro.api import (
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    Pipeline,
    ServingSpec,
    TrainSpec,
)
from repro.experiments import format_table
from repro.serving import RequestBatcher


def main() -> None:
    spec = ExperimentSpec(
        dataset=DataSpec(
            name="synthetic-taobao",
            params={"num_users": 50, "num_queries": 40, "num_items": 120,
                    "num_categories": 8, "sessions_per_user": 6.0, "seed": 3},
            train_fraction=0.9,
            max_train_examples=800, max_test_examples=0),
        model=ModelSpec(name="zoomer", embedding_dim=16, fanouts=(5, 3)),
        training=TrainSpec(epochs=1, batch_size=64, learning_rate=0.03),
        serving=ServingSpec(cache_capacity=30, ann_cells=8, ann_nprobe=3,
                            posting_length=50, num_shards=2,
                            warm_users=20, warm_queries=20),
        seed=0)

    # Offline training + serving-stack construction, one chained call.
    print("Training Zoomer offline ...")
    pipeline = Pipeline(spec)
    server = pipeline.fit().deploy()
    dataset = pipeline.dataset
    print(f"Serving stack ready: {len(server.inverted_index)} posting lists, "
          f"ANN over {dataset.config.num_items} items in "
          f"{server.num_shards} shards, {len(server.cache)} cached nodes")

    # Serve a stream of requests taken from real sessions.
    rows = []
    relevant_hits = 0
    total_shown = 0
    for session in dataset.sessions[:25]:
        result = server.serve(session.user_id, session.query_id, k=10)
        query_category = dataset.query_categories[session.query_id]
        relevant = sum(1 for item in result.item_ids
                       if dataset.item_categories[item] == query_category)
        relevant_hits += relevant
        total_shown += len(result.item_ids)
        rows.append({
            "user": session.user_id,
            "query": session.query_id,
            "from_index": result.from_inverted_index,
            "cache_ms": round(result.latency.cache_ms, 3),
            "attention_ms": round(result.latency.attention_ms, 3),
            "ann_ms": round(result.latency.ann_ms, 3),
            "total_ms": round(result.latency.total_ms, 3),
        })
    print()
    print(format_table(rows[:10], title="First 10 served requests"))
    print(f"\nCategory-relevant items among retrieved: "
          f"{relevant_hits}/{total_shown} "
          f"({100.0 * relevant_hits / max(total_shown, 1):.1f}%)")
    print(f"Neighbor-cache hit rate: {server.cache.hit_rate():.2f}")

    # Replay the stream through the micro-batching front end: identical
    # results, one vectorized serve_batch call per formed batch.  A warm-up
    # pass populates the request-embedding and neighbor caches so the timing
    # compares the two dispatch paths, not cold-cache model calls.
    stream = [(s.user_id, s.query_id) for s in dataset.sessions[:100]]
    server.serve_batch(stream, k=10)
    batcher = RequestBatcher(server,
                             max_batch_size=spec.serving.serve_batch_size,
                             max_wait_ms=5.0, k=10)
    start = time.perf_counter()
    batched_results = []
    for user_id, query_id in stream:
        batched_results.extend(batcher.submit(user_id, query_id))
    batched_results.extend(batcher.flush())
    batched_s = time.perf_counter() - start
    start = time.perf_counter()
    for user_id, query_id in stream:
        server.serve(user_id, query_id, k=10)
    sequential_s = time.perf_counter() - start
    print(f"\nBatched engine: {len(batched_results)} requests in "
          f"{batcher.stats.batches} batches "
          f"(mean size {batcher.stats.mean_batch_size:.1f}), "
          f"{len(stream) / batched_s:,.0f} QPS vs "
          f"{len(stream) / sequential_s:,.0f} QPS sequential "
          f"({sequential_s / batched_s:.1f}x)")

    # QPS sweep through the queueing model (the Fig. 9 curve), plus the
    # batch-size-versus-latency trade-off of the batched engine.
    calibration = [(s.user_id, s.query_id) for s in dataset.sessions[:20]]
    sweep = server.qps_sweep([1000, 2000, 5000, 10000, 20000, 50000],
                             calibration)
    print()
    print(format_table(sweep, title="Response time vs QPS (queueing model)"))
    batch_sweep = server.batch_size_sweep(10_000, calibration, [1, 8, 32, 128])
    print()
    print(format_table(batch_sweep, title="Batch size vs latency at 10K QPS"))


if __name__ == "__main__":
    main()
