"""Quickstart: build a graph, train Zoomer, evaluate and retrieve.

This walks through the full public API in a few minutes on a laptop:

1. generate a synthetic Taobao-like behavior log and build the heterogeneous
   user-query-item retrieval graph from it,
2. construct a Region of Interest (ROI) for one request and inspect it,
3. train the Zoomer twin-tower model with focal cross-entropy,
4. evaluate AUC / HitRate@K against a GraphSAGE baseline,
5. retrieve items for a live request.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import GraphSAGEModel
from repro.core import ROIBuilder, ZoomerConfig, ZoomerModel
from repro.data import (
    SyntheticTaobaoConfig,
    generate_taobao_dataset,
    train_test_split_examples,
)
from repro.experiments import format_table
from repro.training import Trainer, TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: synthetic Taobao-like behavior logs -> heterogeneous graph
    # ------------------------------------------------------------------ #
    dataset = generate_taobao_dataset(SyntheticTaobaoConfig(
        num_users=60, num_queries=50, num_items=150, num_categories=8,
        sessions_per_user=6.0, seed=0))
    graph = dataset.graph
    print("Graph summary:", graph.summary()["num_nodes"],
          f"edges={graph.total_edges}")

    train, test = train_test_split_examples(dataset.impressions, 0.9, seed=0)
    train, test = train[:1200], test[:400]
    print(f"Training impressions: {len(train)}, test impressions: {len(test)}")

    # ------------------------------------------------------------------ #
    # 2. Inspect a Region of Interest for one request
    # ------------------------------------------------------------------ #
    config = ZoomerConfig(embedding_dim=16, fanouts=(5, 3), seed=0)
    roi_builder = ROIBuilder(config)
    session = dataset.sessions[0]
    roi = roi_builder.build(graph, session.user_id, session.query_id)
    print(f"ROI for user {session.user_id} / query {session.query_id}: "
          f"{roi.num_nodes()} nodes, {roi.num_edges()} edges, "
          f"coverage={roi_builder.coverage_ratio(graph, roi):.2f}")

    # ------------------------------------------------------------------ #
    # 3. Train Zoomer and a GraphSAGE baseline
    # ------------------------------------------------------------------ #
    train_config = TrainingConfig(epochs=2, batch_size=64, learning_rate=0.03,
                                  loss="focal")
    rows = []
    for model in (ZoomerModel(graph, config),
                  GraphSAGEModel(graph, embedding_dim=16, fanouts=(5, 3))):
        trainer = Trainer(model, train_config)
        result = trainer.train(train, test)
        hit_rates = trainer.evaluate_hit_rate(test, ks=(10, 50),
                                              candidate_pool=120,
                                              max_requests=30)
        rows.append({
            "model": model.name,
            "auc": round(result.final_metrics.auc, 4),
            "hitrate@10": round(hit_rates[10], 3),
            "hitrate@50": round(hit_rates[50], 3),
            "train_s": round(result.training_seconds, 1),
        })
    print()
    print(format_table(rows, title="Quickstart comparison"))

    # ------------------------------------------------------------------ #
    # 4. Retrieve items for a live request with the trained Zoomer model
    # ------------------------------------------------------------------ #
    zoomer_row = rows[0]
    assert zoomer_row["model"] == "Zoomer"
    model = ZoomerModel(graph, config)   # fresh model for the demo retrieval
    Trainer(model, train_config).train(train[:600])
    user_id, query_id = session.user_id, session.query_id
    scores = model.score_items(user_id, query_id,
                               np.arange(dataset.config.num_items))
    top_items = np.argsort(-scores)[:5]
    query_category = dataset.query_categories[query_id]
    print(f"\nTop-5 retrieved items for (user={user_id}, query={query_id}) "
          f"[query category {query_category}]:")
    for rank, item in enumerate(top_items, start=1):
        print(f"  {rank}. item {item} (category "
              f"{dataset.item_categories[item]}, score {scores[item]:.3f})")


if __name__ == "__main__":
    main()
