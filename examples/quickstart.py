"""Quickstart: one declarative spec from behavior logs to online serving.

This walks the unified ``repro.api`` surface in a few minutes on a laptop:

1. describe the whole experiment — dataset, model, training, serving — as a
   single declarative :class:`~repro.api.ExperimentSpec` (JSON-round-trippable),
2. run the staged :class:`~repro.api.Pipeline`:
   ``build_graph() -> fit() -> evaluate() -> deploy()``,
3. inspect a Region of Interest on the built graph,
4. compare Zoomer against a registered baseline by swapping one field of the
   spec (every model in ``repro.api.MODELS`` is a one-line scenario),
5. retrieve items for live requests through the deployed online server.

Run with:  python examples/quickstart.py
"""

import dataclasses

from repro.api import (
    MODELS,
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    Pipeline,
    TrainSpec,
)
from repro.core import ROIBuilder, ZoomerConfig
from repro.experiments import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. One declarative spec: data -> model -> training -> serving
    # ------------------------------------------------------------------ #
    spec = ExperimentSpec(
        dataset=DataSpec(
            name="synthetic-taobao",
            params={"num_users": 60, "num_queries": 50, "num_items": 150,
                    "num_categories": 8, "sessions_per_user": 6.0, "seed": 0},
            train_fraction=0.9,
            max_train_examples=1200, max_test_examples=400),
        model=ModelSpec(name="zoomer", embedding_dim=16, fanouts=(5, 3)),
        training=TrainSpec(epochs=2, batch_size=64, learning_rate=0.03,
                           loss="focal"),
        seed=0)
    print("Registered models:", ", ".join(MODELS.names()))
    print("Spec round-trips through JSON:",
          ExperimentSpec.from_json(spec.to_json()) == spec)

    # ------------------------------------------------------------------ #
    # 2. Stage 1 — build the heterogeneous graph from the behavior logs
    # ------------------------------------------------------------------ #
    pipeline = Pipeline(spec).build_graph()
    graph = pipeline.graph
    print("Graph summary:", graph.summary()["num_nodes"],
          f"edges={graph.total_edges}")
    print(f"Training impressions: {len(pipeline.train_examples)}, "
          f"test impressions: {len(pipeline.test_examples)}")

    # ------------------------------------------------------------------ #
    # 3. Inspect a Region of Interest for one request
    # ------------------------------------------------------------------ #
    roi_builder = ROIBuilder(ZoomerConfig(embedding_dim=16, fanouts=(5, 3),
                                          seed=0))
    session = pipeline.dataset.sessions[0]
    roi = roi_builder.build(graph, session.user_id, session.query_id)
    print(f"ROI for user {session.user_id} / query {session.query_id}: "
          f"{roi.num_nodes()} nodes, {roi.num_edges()} edges, "
          f"coverage={roi_builder.coverage_ratio(graph, roi):.2f}")

    # ------------------------------------------------------------------ #
    # 4. Train Zoomer and a baseline: one changed field per scenario
    # ------------------------------------------------------------------ #
    rows = []
    for model_name in ("zoomer", "GraphSage"):
        variant = dataclasses.replace(
            spec, model=dataclasses.replace(spec.model, name=model_name))
        run = Pipeline(variant).fit()
        evaluation = run.evaluate(ks=(10, 50), candidate_pool=120,
                                  max_requests=30)
        rows.append({
            "model": evaluation["model"],
            "auc": round(evaluation["auc"], 4),
            "hitrate@10": round(evaluation["hit_rates"][10], 3),
            "hitrate@50": round(evaluation["hit_rates"][50], 3),
            "train_s": round(evaluation["training_seconds"], 1),
        })
        if model_name == "zoomer":
            pipeline = run   # keep the fitted Zoomer pipeline for serving
    print()
    print(format_table(rows, title="Quickstart comparison"))

    # ------------------------------------------------------------------ #
    # 5. Deploy and retrieve items for live requests
    # ------------------------------------------------------------------ #
    server = pipeline.deploy()
    user_id, query_id = session.user_id, session.query_id
    result = server.serve(user_id, query_id, k=5)
    dataset = pipeline.dataset
    query_category = dataset.query_categories[query_id]
    print(f"\nTop-5 retrieved items for (user={user_id}, query={query_id}) "
          f"[query category {query_category}]:")
    for rank, (item, score) in enumerate(zip(result.item_ids, result.scores),
                                         start=1):
        print(f"  {rank}. item {item} (category "
              f"{dataset.item_categories[item]}, score {score:.3f})")


if __name__ == "__main__":
    main()
