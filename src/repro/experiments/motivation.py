"""Motivating measurements of information overload (paper Section IV, Fig. 4).

Two phenomena motivate the ROI design:

* **Dynamic focal interests** (Fig. 4b) — successive queries posed by the same
  user within a session window have low similarity to each other: the focal
  interest drifts quickly.
* **Small relevant area** (Fig. 4c) — given a focal (user, query) pair, most
  of the user's historical clicked items have low cosine similarity to the
  focal; the longer the history window (1 hour vs 1 day in the paper), the
  lower the relevant fraction.

Both functions operate on the synthetic dataset, which was designed to
reproduce these structural properties (interest drift and noisy histories).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from repro.data.synthetic import SyntheticTaobaoDataset


def _cosine(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b) + eps
    return float(a @ b / denom)


def successive_query_similarities(dataset: SyntheticTaobaoDataset,
                                  max_users: int = 10,
                                  seed: int = 0) -> Dict[int, List[float]]:
    """Similarity between each query and the previous one per user (Fig. 4b).

    Returns ``{user_id: [sim(q_1, q_2), sim(q_2, q_3), ...]}`` for a random
    selection of users with at least two sessions.
    """
    rng = np.random.default_rng(seed)
    sessions_by_user: Dict[int, List] = defaultdict(list)
    for session in dataset.sessions:
        sessions_by_user[session.user_id].append(session)
    eligible = [user for user, sessions in sessions_by_user.items()
                if len(sessions) >= 2]
    if not eligible:
        return {}
    if len(eligible) > max_users:
        eligible = list(rng.choice(eligible, size=max_users, replace=False))
    results: Dict[int, List[float]] = {}
    for user in eligible:
        ordered = sorted(sessions_by_user[user], key=lambda s: s.timestamp)
        sims = []
        for previous, current in zip(ordered[:-1], ordered[1:]):
            sims.append(_cosine(dataset.query_features[previous.query_id],
                                dataset.query_features[current.query_id]))
        results[int(user)] = sims
    return results


def focal_local_similarity_cdf(dataset: SyntheticTaobaoDataset,
                               history_sessions: Optional[int] = None,
                               num_users: int = 10,
                               num_bins: int = 50,
                               seed: int = 0) -> Dict[str, np.ndarray]:
    """CDF of similarities between focal points and users' local graphs (Fig. 4c).

    For each selected user, one of their queries is sampled; the focal vector
    is the sum of the user and query features, and the similarities are the
    cosine distances between the focal vector and all items the user clicked
    in their ``history_sessions`` most recent sessions (``None`` = the full
    history, i.e. the "1-day" long-window condition; a small number plays the
    role of the "1-hour" short window).

    Returns a dict with ``bin_edges``, ``mean_cdf`` and ``std_cdf`` arrays —
    the mean and standard deviation across users of the empirical CDF, which
    is what the paper plots as the curve plus shaded band.
    """
    rng = np.random.default_rng(seed)
    sessions_by_user: Dict[int, List] = defaultdict(list)
    for session in dataset.sessions:
        sessions_by_user[session.user_id].append(session)
    eligible = [user for user, sessions in sessions_by_user.items() if sessions]
    if not eligible:
        return {"bin_edges": np.zeros(0), "mean_cdf": np.zeros(0),
                "std_cdf": np.zeros(0)}
    if len(eligible) > num_users:
        eligible = list(rng.choice(eligible, size=num_users, replace=False))

    bin_edges = np.linspace(-1.0, 1.0, num_bins + 1)
    cdfs = []
    for user in eligible:
        ordered = sorted(sessions_by_user[user], key=lambda s: s.timestamp)
        if history_sessions is not None:
            ordered = ordered[-history_sessions:]
        clicked = [item for session in ordered for item in session.clicked_items]
        if not clicked:
            continue
        focal_session = ordered[int(rng.integers(len(ordered)))]
        focal_vector = (dataset.user_features[user]
                        + dataset.query_features[focal_session.query_id])
        sims = np.array([_cosine(focal_vector, dataset.item_features[item])
                         for item in clicked])
        histogram, _ = np.histogram(sims, bins=bin_edges)
        cdf = np.cumsum(histogram) / max(len(sims), 1)
        cdfs.append(cdf)
    if not cdfs:
        return {"bin_edges": bin_edges, "mean_cdf": np.zeros(num_bins),
                "std_cdf": np.zeros(num_bins)}
    stacked = np.vstack(cdfs)
    return {
        "bin_edges": bin_edges,
        "mean_cdf": stacked.mean(axis=0),
        "std_cdf": stacked.std(axis=0),
    }


def fraction_below(cdf_result: Dict[str, np.ndarray], threshold: float) -> float:
    """Fraction of similarities below ``threshold`` according to the mean CDF.

    The paper reports "roughly 80%/40% are lower than 0.0 in the 1-hour/1-day
    graph"; this helper extracts the comparable number from our measurement.
    """
    bin_edges = cdf_result["bin_edges"]
    mean_cdf = cdf_result["mean_cdf"]
    if bin_edges.size == 0 or mean_cdf.size == 0:
        return 0.0
    index = int(np.searchsorted(bin_edges, threshold) - 1)
    index = int(np.clip(index, 0, mean_cdf.size - 1))
    return float(mean_cdf[index])
