"""Experiment drivers: motivation measurements, A/B test, interpretability.

Each module reproduces one piece of the paper's empirical story:

* :mod:`repro.experiments.motivation` — the Section IV measurements (Fig. 4b
  query-drift similarities, Fig. 4c focal-vs-local-graph similarity CDF).
* :mod:`repro.experiments.ab_test` — the production A/B test simulation
  (Table IV: CTR / PPC / RPM lift of Zoomer over the PinSage channel).
* :mod:`repro.experiments.interpretability` — coupling-coefficient heatmaps
  (Fig. 13).
* :mod:`repro.experiments.harness` — a small registry + table formatter the
  benchmark scripts share, and the per-experiment result record written to
  EXPERIMENTS.md.
"""

from repro.experiments.motivation import (
    successive_query_similarities,
    focal_local_similarity_cdf,
)
from repro.experiments.ab_test import ABTestConfig, ABTestResult, ABTestSimulator
from repro.experiments.interpretability import coupling_heatmap_fixed_user, \
    coupling_heatmap_fixed_query
from repro.experiments.harness import ExperimentResult, format_table, save_results

__all__ = [
    "successive_query_similarities",
    "focal_local_similarity_cdf",
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "coupling_heatmap_fixed_user",
    "coupling_heatmap_fixed_query",
    "ExperimentResult",
    "format_table",
    "save_results",
]
