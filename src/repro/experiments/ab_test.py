"""Production A/B test simulation (paper Section VII-D, Table IV).

The paper replaces one retrieval channel (running PinSage) with Zoomer on 4%
of Taobao's search traffic and reports lifts in three online metrics:

* **CTR** — clicks / impressions,
* **PPC** — price paid per click,
* **RPM** — ad revenue per 1000 impressions.

Without production traffic we simulate the feedback loop: for each simulated
request the channel's model retrieves a top-K list, and a behavioural click
model decides which impressions are clicked — the click probability increases
with the true relevance of the shown item (same ground-truth category as the
query and matching the user's interest profile) and decreases with its rank.
Better retrieval therefore earns more clicks and more revenue, which is the
causal path the paper's lift numbers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic import SyntheticTaobaoDataset
from repro.models.base import RetrievalModel


@dataclass
class ABTestConfig:
    """Traffic and click-model parameters of the simulated A/B test."""

    num_requests: int = 200
    top_k: int = 10
    base_click_prob: float = 0.05
    relevance_click_prob: float = 0.35
    interest_bonus: float = 0.10
    position_decay: float = 0.85
    traffic_fraction: float = 0.04   # the paper's 4% of search traffic
    seed: int = 0

    def validate(self) -> None:
        if self.num_requests <= 0 or self.top_k <= 0:
            raise ValueError("num_requests and top_k must be positive")
        for name in ("base_click_prob", "relevance_click_prob", "interest_bonus"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 < self.position_decay <= 1.0:
            raise ValueError("position_decay must be in (0, 1]")
        if not 0.0 < self.traffic_fraction <= 1.0:
            raise ValueError("traffic_fraction must be in (0, 1]")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an int")


@dataclass
class ChannelMetrics:
    """Raw counters for one channel."""

    impressions: int = 0
    clicks: int = 0
    revenue: float = 0.0

    @property
    def ctr(self) -> float:
        return self.clicks / self.impressions if self.impressions else 0.0

    @property
    def ppc(self) -> float:
        return self.revenue / self.clicks if self.clicks else 0.0

    @property
    def rpm(self) -> float:
        return self.revenue / self.impressions * 1000.0 if self.impressions else 0.0


@dataclass
class ABTestResult:
    """Outcome of the simulated A/B test."""

    base: ChannelMetrics
    treatment: ChannelMetrics
    base_name: str
    treatment_name: str

    def lift(self, metric: str) -> float:
        """Relative lift (%) of the treatment channel over the base channel."""
        base_value = getattr(self.base, metric)
        treatment_value = getattr(self.treatment, metric)
        if base_value == 0:
            return 0.0
        return (treatment_value - base_value) / base_value * 100.0

    def as_rows(self) -> List[Dict[str, float]]:
        """Table IV style rows: lift of CTR / PPC / RPM."""
        return [{
            "metric": metric.upper(),
            self.base_name: round(getattr(self.base, metric), 4),
            self.treatment_name: round(getattr(self.treatment, metric), 4),
            "lift_pct": round(self.lift(metric), 3),
        } for metric in ("ctr", "ppc", "rpm")]


class ABTestSimulator:
    """Simulates an online A/B test between two retrieval models."""

    def __init__(self, dataset: SyntheticTaobaoDataset,
                 config: Optional[ABTestConfig] = None):
        self.dataset = dataset
        self.config = config if config is not None else ABTestConfig()
        self.config.validate()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # Click model
    # ------------------------------------------------------------------ #
    def _click_probability(self, user_id: int, query_id: int, item_id: int,
                           rank: int) -> float:
        """Ground-truth behavioural click probability of one impression."""
        query_category = self.dataset.query_categories[query_id]
        item_category = self.dataset.item_categories[item_id]
        probability = self.config.base_click_prob
        if item_category == query_category:
            probability += self.config.relevance_click_prob
        if item_category in self.dataset.user_interest_categories[user_id]:
            probability += self.config.interest_bonus
        probability *= self.config.position_decay ** rank
        return float(min(probability, 1.0))

    def simulate_impressions(self, user_id: int, query_id: int,
                             item_ids: Sequence[int]
                             ) -> Tuple[int, int, float]:
        """Run the click model over one served top-K list.

        Returns ``(impressions, clicks, revenue)`` for the ranked
        ``item_ids`` — the per-request feedback record a serving-time
        experiment (the :mod:`repro.serving.experiment` tier's ``feedback``
        path) attributes to the variant that served the list.  Draws from
        the simulator's seeded RNG, so a fixed request stream yields a
        reproducible feedback stream.
        """
        impressions, clicks, revenue = 0, 0, 0.0
        for rank, item_id in enumerate(item_ids):
            impressions += 1
            probability = self._click_probability(user_id, query_id,
                                                  int(item_id), rank)
            if self._rng.random() < probability:
                clicks += 1
                revenue += float(self.dataset.item_prices[int(item_id)])
        return impressions, clicks, revenue

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def _requests(self) -> List[Tuple[int, int]]:
        """Sample the request traffic from real (user, query) sessions."""
        sessions = self.dataset.sessions
        picks = self._rng.integers(0, len(sessions), size=self.config.num_requests)
        return [(sessions[i].user_id, sessions[i].query_id) for i in picks]

    def _run_channel(self, model: RetrievalModel,
                     requests: Sequence[Tuple[int, int]]) -> ChannelMetrics:
        metrics = ChannelMetrics()
        num_items = self.dataset.config.num_items
        all_items = np.arange(num_items)
        for user_id, query_id in requests:
            scores = model.score_items(user_id, query_id, all_items)
            top = np.argsort(-scores)[: self.config.top_k]
            for rank, item_id in enumerate(top):
                metrics.impressions += 1
                probability = self._click_probability(user_id, query_id,
                                                      int(item_id), rank)
                if self._rng.random() < probability:
                    metrics.clicks += 1
                    metrics.revenue += float(self.dataset.item_prices[item_id])
        return metrics

    def run(self, base_model: RetrievalModel,
            treatment_model: RetrievalModel) -> ABTestResult:
        """Run both channels on identical traffic and report the lifts."""
        requests = self._requests()
        base = self._run_channel(base_model, requests)
        treatment = self._run_channel(treatment_model, requests)
        return ABTestResult(base=base, treatment=treatment,
                            base_name=base_model.name,
                            treatment_name=treatment_model.name)
