"""Shared experiment harness: result records and table formatting.

Every benchmark script produces a list of row dictionaries; the helpers here
render them as aligned text tables (printed to stdout and captured by
``pytest-benchmark`` runs) and can persist them as JSON next to the benchmark
outputs so EXPERIMENTS.md can cite concrete measured numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float, str]


@dataclass
class ExperimentResult:
    """One experiment's identity, measured rows and paper reference values."""

    experiment_id: str               # e.g. "table3", "fig11"
    description: str
    rows: List[Dict[str, Number]] = field(default_factory=list)
    paper_reference: Dict[str, Number] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, **values: Number) -> None:
        """Append one measured row."""
        self.rows.append(dict(values))

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, default=str)


def format_table(rows: Sequence[Dict[str, Number]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {col: max(len(str(col)),
                       max(len(_fmt(row.get(col, ""))) for row in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(f"{col:>{widths[col]}}" for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(f"{_fmt(row.get(col, '')):>{widths[col]}}"
                                for col in columns))
    return "\n".join(lines)


def _fmt(value: Number) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def save_results(results: Sequence[ExperimentResult],
                 directory: str = "benchmark_results") -> List[str]:
    """Persist experiment results as JSON files; returns the written paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for result in results:
        path = os.path.join(directory, f"{result.experiment_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        paths.append(path)
    return paths


def load_result(experiment_id: str,
                directory: str = "benchmark_results") -> Optional[ExperimentResult]:
    """Load a previously saved experiment result (or ``None`` if missing)."""
    path = os.path.join(directory, f"{experiment_id}.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return ExperimentResult(**payload)
