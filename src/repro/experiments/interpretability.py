"""Coupling-coefficient heatmaps (paper Section VII-G, Fig. 13).

Zoomer can generate multiple embeddings for the same ego node under different
focal points; the edge-level attention weights ("coupling coefficients") show
*why*: when the focal query (or user) changes, the weights over the same set
of historical items change with it.  Fig. 13(a) fixes a user and varies the
query; Fig. 13(b) fixes a query and varies the user.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.model import ZoomerModel


def coupling_heatmap_fixed_user(model: ZoomerModel, user_id: int,
                                query_ids: Sequence[int],
                                item_ids: Sequence[int]) -> np.ndarray:
    """Fig. 13(a): rows = queries, columns = items, fixed user.

    Entry ``(i, j)`` is the edge-attention weight of item ``item_ids[j]``
    when the focal points are ``{user_id, query_ids[i]}``.
    """
    if not len(query_ids) or not len(item_ids):
        raise ValueError("need at least one query and one item")
    rows = []
    for query_id in query_ids:
        weights = model.coupling_coefficients(int(user_id), int(query_id),
                                              list(item_ids))
        rows.append(weights)
    return np.vstack(rows)


def coupling_heatmap_fixed_query(model: ZoomerModel, query_id: int,
                                 user_ids: Sequence[int],
                                 item_ids: Sequence[int]) -> np.ndarray:
    """Fig. 13(b): rows = users, columns = items, fixed query."""
    if not len(user_ids) or not len(item_ids):
        raise ValueError("need at least one user and one item")
    rows = []
    for user_id in user_ids:
        weights = model.coupling_coefficients(int(user_id), int(query_id),
                                              list(item_ids))
        rows.append(weights)
    return np.vstack(rows)


def heatmap_variation(heatmap: np.ndarray) -> Dict[str, float]:
    """Summary statistics of how much the weights move across focal points.

    The paper's qualitative claim is that "when we modify focal points ...
    edge relations correspondingly change"; the row-to-row variation captures
    that quantitatively (0 would mean the attention ignores the focal).
    """
    if heatmap.ndim != 2 or heatmap.shape[0] < 2:
        return {"mean_row_std": 0.0, "max_row_range": 0.0}
    per_item_std = heatmap.std(axis=0)
    per_item_range = heatmap.max(axis=0) - heatmap.min(axis=0)
    return {
        "mean_row_std": float(per_item_std.mean()),
        "max_row_range": float(per_item_range.max()),
    }


def render_ascii_heatmap(heatmap: np.ndarray, row_labels: Sequence[str],
                         col_labels: Sequence[str], cell_width: int = 6) -> str:
    """Plain-text rendering of a heatmap for the benchmark output."""
    lines = []
    header = " " * 12 + "".join(f"{label[:cell_width - 1]:>{cell_width}}"
                                for label in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, heatmap):
        cells = "".join(f"{value:>{cell_width}.2f}" for value in row)
        lines.append(f"{label[:11]:>11} {cells}")
    return "\n".join(lines)
