"""Project-specific static analysis: the repo's contracts as machine checks.

Generic linters (ruff, Pyflakes) cannot see the invariants this repo's
correctness rests on: Philox-keyed determinism across backends and worker
counts, shared-memory blocks that must be unlinked by their owner, an
asyncio serving daemon whose event loop must never block, and ``*Spec``
dataclasses that must round-trip and validate every field.  This package
turns each of those contracts into an AST rule that fails CI the moment a
change violates it.

Architecture mirrors :mod:`repro.api.registry`: rules are plugins added
with the :func:`~repro.analysis.core.register_rule` decorator, dispatched
off AST node types by the :class:`~repro.analysis.core.Analyzer` (one
parse per file).  Violations can be suppressed inline with a justification
comment — ``# repro: allow[RULE] -- why`` — and a suppression that stops
firing is itself a violation (``SUP001``), so the baseline can only shrink.

Entry points: ``python -m repro.cli lint [paths...]`` (text or ``--format
json``, exit code 1 on violations) and, programmatically::

    from repro.analysis import Analyzer

    violations = Analyzer().check_source(source_text, "src/repro/foo.py")
"""

from repro.analysis.core import (
    Analyzer,
    FileContext,
    Rule,
    Violation,
    all_rules,
    register_rule,
)
from repro.analysis.runner import LintReport, iter_python_files, run_lint

__all__ = [
    "Analyzer",
    "FileContext",
    "LintReport",
    "Rule",
    "Violation",
    "all_rules",
    "iter_python_files",
    "register_rule",
    "run_lint",
]
