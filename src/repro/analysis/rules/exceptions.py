"""Exception-hygiene rule: failures surface, they are not swallowed.

The parallel engine's crash story (worker death, shm leaks, abandoned
epochs) depends on errors propagating to the owner that can act on them;
an ``except Exception: pass`` turns a failed unlink or a dead worker into
silent corruption.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    body_only_passes,
    register_rule,
)


@register_rule
class SwallowedException(Rule):
    """EXC001 — no bare ``except:`` or ``except Exception: pass`` in src/repro.

    Contract: failure visibility.  The engine/pool/shm teardown protocol
    relies on errors reaching the owning process (a swallowed unlink
    failure is a leaked ``/dev/shm`` block; a swallowed worker crash is a
    hung ``collect``).  A bare ``except:`` additionally traps
    ``KeyboardInterrupt``/``SystemExit``.  Catch the narrow exception you
    expect and handle it, or let it propagate; genuinely-safe safety nets
    (``__del__`` GC teardown) carry a justified ``# repro: allow[EXC001]``.
    """

    name = "EXC001"
    node_types = (ast.ExceptHandler,)

    def applies_to(self, path: str) -> bool:
        """Library code only; scripts may be terse."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag bare handlers always; broad handlers when the body is empty."""
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(self, node,
                       "bare 'except:' also traps KeyboardInterrupt/"
                       "SystemExit; name the exception(s) you expect")
            return
        broad = isinstance(node.type, ast.Name) \
            and node.type.id in ("Exception", "BaseException")
        if broad and body_only_passes(node.body):
            ctx.report(self, node,
                       f"'except {node.type.id}: pass' swallows every "
                       f"failure silently; narrow the exception or handle "
                       f"it (log, re-raise, or record)")
