"""Exception-hygiene rule: failures surface, they are not swallowed.

The parallel engine's crash story (worker death, shm leaks, abandoned
epochs) depends on errors propagating to the owner that can act on them;
an ``except Exception: pass`` turns a failed unlink or a dead worker into
silent corruption.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    body_only_passes,
    register_rule,
)


@register_rule
class SwallowedException(Rule):
    """EXC001 — no bare ``except:`` or ``except Exception: pass`` in src/repro.

    Contract: failure visibility.  The engine/pool/shm teardown protocol
    relies on errors reaching the owning process (a swallowed unlink
    failure is a leaked ``/dev/shm`` block; a swallowed worker crash is a
    hung ``collect``).  A bare ``except:`` additionally traps
    ``KeyboardInterrupt``/``SystemExit``.  Catch the narrow exception you
    expect and handle it, or let it propagate; genuinely-safe safety nets
    (``__del__`` GC teardown) carry a justified ``# repro: allow[EXC001]``.
    """

    name = "EXC001"
    node_types = (ast.ExceptHandler,)

    def applies_to(self, path: str) -> bool:
        """Library code only; scripts may be terse."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag bare handlers always; broad handlers when the body is empty."""
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(self, node,
                       "bare 'except:' also traps KeyboardInterrupt/"
                       "SystemExit; name the exception(s) you expect")
            return
        broad = isinstance(node.type, ast.Name) \
            and node.type.id in ("Exception", "BaseException")
        if broad and body_only_passes(node.body):
            ctx.report(self, node,
                       f"'except {node.type.id}: pass' swallows every "
                       f"failure silently; narrow the exception or handle "
                       f"it (log, re-raise, or record)")


def _caught_names(type_node: ast.expr) -> List[str]:
    """Exception names an ``except`` clause catches (tuple-aware).

    ``except asyncio.CancelledError`` reports ``CancelledError`` — the
    terminal attribute is the class name whatever module path spells it.
    """
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
        else [type_node]
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


@register_rule
class RecoveryCatchMustReraise(Rule):
    """EXC002 — broad catches in the recovery layers must contain a ``raise``.

    Contract: supervised failure handling.  The fault-tolerance story of
    the serving and parallel layers (worker respawn, circuit breaking,
    failure-atomic refresh) is built from broad ``except`` blocks that
    *intercept* a failure, record or repair it, and then **re-raise** (the
    original, or a typed wrapper like ``RefreshError``) so the supervisor
    above makes the recovery decision.  A broad handler with no ``raise``
    converts a crash into silent state divergence — exactly the failure
    mode chaos testing exists to catch.  Handlers that catch
    ``Exception``, ``BaseException``, ``WorkerCrashError`` or
    ``CancelledError`` under ``src/repro/serving/`` or
    ``src/repro/parallel/`` must therefore re-raise on some path;
    deliberate terminal handlers (``__del__`` teardown, best-effort socket
    close, crash-detection loops that *convert* death into supervision
    calls) carry a justified ``# repro: allow[EXC002]``.  ``RuntimeError``
    and narrower types are exempt: catching a specific error you can fully
    handle locally is the normal, encouraged pattern.
    """

    name = "EXC002"
    node_types = (ast.ExceptHandler,)

    #: Catch targets broad enough to intercept a crash/cancellation.
    BROAD = ("BaseException", "CancelledError", "Exception",
             "WorkerCrashError")

    def applies_to(self, path: str) -> bool:
        """Only the layers that implement the recovery protocol."""
        return path.startswith(("src/repro/serving/", "src/repro/parallel/"))

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag broad handlers whose body (transitively) never raises."""
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            return  # bare 'except:' is EXC001's finding
        broad = sorted(set(_caught_names(node.type)) & set(self.BROAD))
        if not broad:
            return
        for statement in node.body:
            if any(isinstance(child, ast.Raise)
                   for child in ast.walk(statement)):
                return
        ctx.report(self, node,
                   f"broad 'except {'/'.join(broad)}' in a recovery layer "
                   f"swallows the failure; re-raise it (or a typed wrapper) "
                   f"so the supervisor can act, or justify the terminal "
                   f"handler with 'repro: allow[EXC002]'")
