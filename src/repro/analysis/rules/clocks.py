"""Clock-discipline rule: deterministic layers take time as data.

Graph decay, TTL eviction, and windowed compaction are all functions of an
explicit ``now_ms`` argument precisely so replays reproduce bit-for-bit;
serving latency accounting uses monotonic clocks so measurements survive
wall-clock adjustments.  A stray ``time.time()`` breaks both.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    dotted_name,
    register_rule,
)

#: Dotted call targets that read the wall clock.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
})


@register_rule
class WallClockRead(Rule):
    """CLK001 — no wall-clock reads (``time.time``/``datetime.now``) in src/repro.

    Contract: replayability.  Deterministic layers (``graph/``,
    ``sampling/``, ``nn/``, ``ndarray/``) take time as data — an explicit
    ``now_ms`` parameter — so the same (inputs, seed, now_ms) always yields
    the same state; serving code measures durations with
    ``time.monotonic()`` / ``time.perf_counter()`` so latency numbers are
    immune to NTP steps.  Reading the wall clock inline breaks both; pass
    ``now_ms`` in, or use a monotonic clock for intervals.
    """

    name = "CLK001"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """All library code; deterministic layers are just the worst case."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag calls whose dotted target is a wall-clock read."""
        assert isinstance(node, ast.Call)
        target = dotted_name(node.func)
        if target in _WALL_CLOCK_CALLS:
            ctx.report(self, node,
                       f"wall-clock read {target}(); deterministic layers "
                       f"take time as data (now_ms argument), serving code "
                       f"uses time.monotonic()/perf_counter() for intervals")
