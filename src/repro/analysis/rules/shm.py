"""Shared-memory ownership rule: whoever creates a block must unlink it.

``repro/parallel/shm.py`` defines the ownership protocol — the creator
(owner) is responsible for ``close()`` + ``unlink()``; workers only
attach and ``close()``.  A creation site with no reachable unlink is a
leaked ``/dev/shm`` segment that outlives the process.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    is_constant,
    keyword_value,
    register_rule,
)


def _is_shared_memory_create(node: ast.Call) -> bool:
    """Whether the call is ``SharedMemory(..., create=True)``."""
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    if name != "SharedMemory":
        return False
    return is_constant(keyword_value(node, "create"), True)


@register_rule
class UnpairedSharedMemory(Rule):
    """SHM001 — every ``SharedMemory(create=True)`` site pairs with close+unlink.

    Contract: the shm ownership protocol (``repro/parallel/shm.py``).  The
    process that creates a block owns it and must both ``close()`` its
    mapping and ``unlink()`` the segment, or the block leaks in
    ``/dev/shm`` after exit.  A creation inside a class must have
    ``close()`` and ``unlink()`` calls reachable from that class (or at
    module level); a module-level creation needs both somewhere in the
    same module.
    """

    name = "SHM001"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """Library code only — shm ownership is a src/repro protocol."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Record creation sites and close/unlink calls per owning class."""
        assert isinstance(node, ast.Call)
        creations: List[Tuple[ast.Call, Optional[str]]]
        calls: Set[Tuple[Optional[str], str]]
        creations, calls = ctx.state.setdefault(  # type: ignore[assignment]
            self.name, ([], set()))
        if _is_shared_memory_create(node):
            creations.append((node, ctx.current_class))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("close", "unlink"):
            calls.add((ctx.current_class, node.func.attr))

    def finish(self, ctx: FileContext) -> None:
        """Flag creation sites whose owner has no close+unlink pair."""
        if self.name not in ctx.state:
            return
        creations, calls = ctx.state[self.name]  # type: ignore[misc]
        for node, owner in creations:
            # Module-level close/unlink (owner None) satisfies any site;
            # a class-owned site is also satisfied by its own class.
            reachable = {None, owner}
            missing = [attr for attr in ("close", "unlink")
                       if not any((scope, attr) in calls
                                  for scope in reachable)]
            if missing:
                ctx.report(self, node,
                           f"SharedMemory(create=True) with no "
                           f"{' or '.join(missing)}() reachable from the "
                           f"owning scope; the owner must close() and "
                           f"unlink() the block (shm ownership protocol, "
                           f"repro/parallel/shm.py)")
