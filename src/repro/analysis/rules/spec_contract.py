"""Spec-contract rule: every ``*Spec`` field round-trips and is validated.

The declarative :class:`~repro.api.spec.ExperimentSpec` document is only
trustworthy if adding a field cannot silently skip serialization or
validation.  This rule is cross-file in the dynamic sense: it imports the
module under analysis and actually exercises the round-trip, in addition
to the static must-be-mentioned-in-validate check.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
from typing import Dict, List, Set

from repro.analysis.core import FileContext, Rule, register_rule

#: Where the declarative spec surface lives; ``*Spec`` classes elsewhere
#: (e.g. the graph-schema ``RelationSpec`` triple) carry no
#: validate/round-trip contract and are out of scope.
_SPEC_SCOPE = "src/repro/api/"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        if name == "dataclass":
            return True
    return False


def _module_name(path: str) -> str:
    """Import path for a repo-relative source path (src/a/b.py -> a.b)."""
    trimmed = path[len("src/"):] if path.startswith("src/") else path
    return trimmed[:-len(".py")].replace("/", ".")


@register_rule
class SpecFieldCoverage(Rule):
    """SPEC001 — every ``*Spec`` dataclass field round-trips and is validated.

    Contract: the :class:`~repro.api.spec.ExperimentSpec` document is the
    single input of the pipeline; a field that ``to_dict``/``from_dict``
    drops vanishes on save/load, and a field no ``validate`` ever mentions
    accepts garbage until deep inside training.  Static half: each field
    of each ``@dataclass class *Spec`` in ``src/repro/api/`` must be
    mentioned (as a name, attribute, or string literal) inside some
    ``validate`` function in the same module.  Dynamic half: the module is
    imported and each spec is default-constructed and round-tripped
    (``to_dict``/``from_dict`` when defined, ``dataclasses.asdict`` plus
    re-construction otherwise); dropped keys or unequal rebuilds fire.
    """

    name = "SPEC001"
    node_types = ()

    def applies_to(self, path: str) -> bool:
        """Only the declarative spec surface (see ``_SPEC_SCOPE``)."""
        return path.startswith(_SPEC_SCOPE)

    # ------------------------------------------------------------------ #
    # finish: static mention check + dynamic round-trip
    # ------------------------------------------------------------------ #
    def finish(self, ctx: FileContext) -> None:
        """Run both halves once the whole tree is available."""
        specs = self._spec_classes(ctx.tree)
        if not specs:
            return
        mentions = self._validate_mentions(ctx.tree)
        for class_node, fields in specs.items():
            for field_node in fields:
                assert isinstance(field_node.target, ast.Name)
                field_name = field_node.target.id
                if field_name not in mentions:
                    ctx.report(self, field_node,
                               f"field {class_node.name}.{field_name} is "
                               f"never mentioned in any validate() in this "
                               f"module; add a check (or an explicit "
                               f"type/range assertion) so bad values fail "
                               f"fast")
        self._check_round_trips(ctx, specs)

    def _spec_classes(self, tree: ast.Module
                      ) -> Dict[ast.ClassDef, List[ast.AnnAssign]]:
        """``*Spec`` dataclasses in the module and their field AnnAssigns."""
        specs: Dict[ast.ClassDef, List[ast.AnnAssign]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Spec") \
                    and _is_dataclass_decorated(node):
                specs[node] = [
                    stmt for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)]
        return specs

    def _validate_mentions(self, tree: ast.Module) -> Set[str]:
        """Identifiers/attributes/strings appearing in validate() bodies.

        Collected module-wide: a section spec may be validated by its
        parent's ``validate`` (``ExperimentSpec.validate`` checks the
        ``serving.*`` ranges), so the mention set is shared.  String
        constants count so ``getattr(self, attr)`` loops over literal
        field-name tuples register their fields.
        """
        mentions: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "validate":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        mentions.add(sub.id)
                    elif isinstance(sub, ast.Attribute):
                        mentions.add(sub.attr)
                    elif isinstance(sub, ast.Constant) \
                            and isinstance(sub.value, str):
                        mentions.add(sub.value)
        return mentions

    def _check_round_trips(self, ctx: FileContext,
                           specs: Dict[ast.ClassDef, List[ast.AnnAssign]]
                           ) -> None:
        """Import the module and exercise each spec's round-trip."""
        try:
            module = importlib.import_module(_module_name(ctx.path))
        except Exception:
            # Module not importable in this environment (missing optional
            # deps); the static half above still ran.
            return
        for class_node in specs:
            cls = getattr(module, class_node.name, None)
            if cls is None or not dataclasses.is_dataclass(cls):
                continue
            try:
                instance = cls()
            except TypeError:
                ctx.report(self, class_node,
                           f"{class_node.name} cannot be default-constructed "
                           f"for the round-trip check; give every field a "
                           f"default")
                continue
            field_names = {f.name for f in dataclasses.fields(cls)}
            if hasattr(cls, "to_dict") and hasattr(cls, "from_dict"):
                data = instance.to_dict()
                rebuilt = cls.from_dict(data)
                how = "to_dict/from_dict"
            else:
                data = dataclasses.asdict(instance)
                rebuilt = cls(**data)
                how = "asdict/reconstruct"
            dropped = sorted(field_names - set(data))
            if dropped:
                ctx.report(self, class_node,
                           f"{class_node.name}.{how} round-trip drops "
                           f"field(s) {dropped}")
            elif rebuilt != instance:
                ctx.report(self, class_node,
                           f"{class_node.name}.{how} round-trip does not "
                           f"reproduce the instance")
