"""Registry-name rule: factory string literals resolve against live registries.

``build_model("zommer", ...)`` is a runtime error the first time the
script runs; this rule makes it a lint error by resolving every literal
name against the actual :mod:`repro.api.registry` tables (aliases and
case-insensitivity included, because the check uses the registries'
own lookup).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import (
    FileContext,
    Rule,
    keyword_value,
    register_rule,
)

#: Builder function name -> which registry its first argument resolves in.
_BUILDERS = {
    "build_model": "MODELS",
    "build_sampler": "SAMPLERS",
    "load_dataset": "DATASETS",
}

_registries: Optional[dict] = None
_registries_failed = False


def _live_registries() -> Optional[dict]:
    """The live registry objects, or ``None`` if repro is not importable."""
    global _registries, _registries_failed
    if _registries is None and not _registries_failed:
        try:
            from repro.api.registry import DATASETS, MODELS, SAMPLERS
        except Exception:
            # Linting may run without the package importable (no numpy,
            # PYTHONPATH unset); the rule degrades to a no-op then.
            _registries_failed = True
            return None
        _registries = {"MODELS": MODELS, "SAMPLERS": SAMPLERS,
                       "DATASETS": DATASETS}
    return _registries


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``name`` argument of a builder call (first positional or kw)."""
    if node.args:
        return node.args[0]
    return keyword_value(node, "name")


@register_rule
class UnknownRegistryName(Rule):
    """REG001 — literal names given to the builder helpers must resolve.

    Contract: the registries (``repro.api.registry``) are the single
    factory surface; a string that does not resolve in ``MODELS`` /
    ``SAMPLERS`` / ``DATASETS`` is a guaranteed ``RegistryError`` at
    runtime.  The check consults the live registries (builtin
    registrations loaded), so aliases and case-insensitive matches pass
    exactly as they would at runtime.  Only literal strings are checked;
    names computed at runtime are out of scope.
    """

    name = "REG001"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """Library code plus the runnable trees that call the builders."""
        return path.startswith(("src/", "examples/", "benchmarks/"))

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Resolve literal builder-call names against the live registries."""
        assert isinstance(node, ast.Call)
        func = node.func
        fn_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if fn_name not in _BUILDERS:
            return
        registries = _live_registries()
        if registries is None:
            return
        registry = registries[_BUILDERS[fn_name]]
        checks = [(_name_argument(node), registry)]
        if fn_name == "build_model":
            checks.append((keyword_value(node, "sampler"),
                           registries["SAMPLERS"]))
        for arg, reg in checks:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str) \
                    and arg.value not in reg:
                ctx.report(self, arg,
                           f"unknown {reg.kind} name {arg.value!r}; "
                           f"registered {reg.kind}s: "
                           f"{', '.join(reg.names())}")
