"""Event-loop discipline: nothing inside ``async def`` may block.

The serving daemon (``repro/serving/daemon.py``) is a single-process
asyncio design — one dispatcher coroutine feeds the batcher and every
connection shares the loop.  One blocking call anywhere in an ``async
def`` stalls every in-flight request, which is exactly the tail-latency
failure mode the admission-control work exists to prevent.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    dotted_name,
    register_rule,
)

#: Dotted call targets that block the calling thread outright.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection",
    "os.system",
    "os.wait",
    "os.waitpid",
})

#: Modules whose every function blocks (``subprocess.run``, ``.call``, ...).
_BLOCKING_MODULES = frozenset({"subprocess"})

#: Constructors that open a *synchronous* client; awaiting code must use
#: the asyncio transport instead.
_SYNC_CLIENTS = frozenset({"DaemonClient"})

#: Method names that are blocking socket/file-object I/O when called on
#: anything inside a coroutine (``sock.recv``, ``conn.sendall``, ...).
_BLOCKING_METHODS = frozenset({"sendall", "recv", "recv_into", "accept",
                               "makefile", "connect"})


@register_rule
class BlockingCallInAsync(Rule):
    """ASY001 — no blocking calls inside ``async def`` bodies.

    Contract: the serving daemon's single event loop (PR 7) services every
    connection; admission control bounds queueing only if no coroutine
    ever blocks the loop.  ``time.sleep``, sync socket send/recv,
    ``subprocess.*``, and the synchronous ``DaemonClient`` all stall the
    dispatcher and every in-flight request with it.  Use ``await
    asyncio.sleep(...)``, the reader/writer transports, or push the work
    into an executor.
    """

    name = "ASY001"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """Library code only — that is where coroutines serve traffic."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag blocking call targets when the innermost def is async."""
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function():
            return
        target = dotted_name(node.func)
        if target is not None:
            head = target.split(".", 1)[0]
            tail = target.rsplit(".", 1)[-1]
            if target in _BLOCKING_CALLS or head in _BLOCKING_MODULES \
                    or tail in _SYNC_CLIENTS:
                ctx.report(self, node,
                           f"blocking call {target}() inside async def "
                           f"stalls the serving event loop; use the asyncio "
                           f"equivalent or run_in_executor")
                return
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _BLOCKING_METHODS:
            ctx.report(self, node,
                       f"blocking .{node.func.attr}() call inside async def "
                       f"stalls the serving event loop; use the asyncio "
                       f"reader/writer transports")
