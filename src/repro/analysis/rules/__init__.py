"""The built-in rule battery; importing this package registers every rule.

Each module guards one family of contracts; the rule docstrings are the
authoritative statement of what each code means (``repro.cli lint
--list-rules`` prints them).
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    asyncio_rules,
    clocks,
    exceptions,
    registry_names,
    rng,
    shm,
    spec_contract,
)
