"""Randomness-discipline rules: every draw flows through a keyed Generator.

The repo's determinism contract (see ``repro/parallel/rng.py``) is that
serial and parallel backends — and any worker count — are bit-identical
under a fixed seed.  That only holds if no code path reads the process's
global numpy RNG state and no Generator is created without a seed being
threaded in.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import (
    SRC_PREFIX,
    FileContext,
    Rule,
    is_constant,
    keyword_value,
    register_rule,
)

#: Things under ``np.random`` that are fine to call: Generator plumbing,
#: not draws from the legacy global RandomState.
_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "Philox", "PCG64",
    "PCG64DXSM", "MT19937", "SFC64", "BitGenerator", "RandomState",
})


def _np_random_call(node: ast.Call) -> Optional[str]:
    """``fn`` when the call is ``np.random.fn(...)`` / ``numpy.random.fn(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Attribute) \
            and func.value.attr == "random" \
            and isinstance(func.value.value, ast.Name) \
            and func.value.value.id in ("np", "numpy"):
        return func.attr
    return None


@register_rule
class LegacyGlobalRandom(Rule):
    """RNG001 — no legacy global-state ``np.random.<fn>()`` calls in src/repro.

    Contract: Philox-keyed determinism (``repro/parallel/rng.py``).  Calls
    like ``np.random.seed`` / ``np.random.randint`` draw from (or mutate)
    one process-global ``RandomState``, so the result depends on import
    order, call interleaving, and worker scheduling — exactly what the
    serial-vs-shared bit-identity pins forbid.  Draw from an explicit
    ``np.random.Generator`` threaded in by the caller instead.
    """

    name = "RNG001"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """Library code only; scripts may do as they like."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag ``np.random.<fn>()`` calls that are not Generator plumbing."""
        assert isinstance(node, ast.Call)
        attr = _np_random_call(node)
        if attr is not None and attr not in _CONSTRUCTORS:
            ctx.report(self, node,
                       f"legacy global-state np.random.{attr}() call; draw "
                       f"from an explicit np.random.Generator instead (the "
                       f"rng_stream discipline, repro/parallel/rng.py)")


@register_rule
class UnseededDefaultRng(Rule):
    """RNG002 — no unseeded ``np.random.default_rng()`` in src/repro.

    Contract: same-seed reproducibility.  A ``default_rng()`` with no seed
    pulls OS entropy, so model construction, sampling, or cold-start
    embeddings silently stop being a function of the experiment seed.  A
    seed or an existing ``Generator`` must be threaded in
    (``rng_stream(seed, shard, version, batch_id)`` for shard-local work,
    ``repro.nn.init.default_init_rng()`` for rng-less construction).
    """

    name = "RNG002"
    node_types = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        """Library code only; scripts may seed however they like."""
        return path.startswith(SRC_PREFIX)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Flag ``default_rng()`` calls whose seed is absent or ``None``."""
        assert isinstance(node, ast.Call)
        if _np_random_call(node) != "default_rng":
            return
        unseeded = (not node.args and not node.keywords) \
            or (len(node.args) == 1 and is_constant(node.args[0], None)) \
            or is_constant(keyword_value(node, "seed"), None)
        if unseeded:
            ctx.report(self, node,
                       "unseeded np.random.default_rng(); thread the "
                       "experiment seed or an existing Generator in "
                       "(rng_stream discipline, repro/parallel/rng.py)")
