"""The AST-visitor framework behind :mod:`repro.analysis`.

One :class:`Analyzer` parses each file exactly once and walks the tree a
single time, dispatching nodes to every registered :class:`Rule` that
declared interest in that node type (the same decorator-registry pattern
as :mod:`repro.api.registry`).  The walk maintains the class/function
scope stacks rules need (is this call inside an ``async def``? which class
owns this ``SharedMemory`` creation?), and a per-file
:class:`FileContext` carries scratch state so rule instances stay
stateless across files.

Suppressions: a comment ``# repro: allow[RULE]`` (optionally
``allow[RULE1,RULE2]``, optionally followed by ``-- justification``) on the
violating line — or standing alone on the line directly above it —
silences that rule for that line.  Every suppression must justify its
existence by actually firing: unused or unknown-rule suppressions are
reported as :class:`UnusedSuppression` (``SUP001``) violations, so stale
baselines cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: Path prefix of the library code most rules scope to.
SRC_PREFIX = "src/repro/"

#: Layers whose outputs must be a pure function of (inputs, seed): the
#: bit-identity contracts of the sampling engine and the parallel backend
#: live here, so wall-clock reads and global RNG state are banned outright.
DETERMINISTIC_LAYERS = (
    "src/repro/graph/",
    "src/repro/sampling/",
    "src/repro/nn/",
    "src/repro/ndarray/",
)

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, and what broke the contract."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """The one-line text form (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``--format json`` output schema)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass
class _Suppression:
    """One parsed ``repro: allow[...]`` entry targeting a source line."""

    rule: str
    target_line: int      # line whose violations it silences
    origin_line: int      # line the comment physically sits on
    used: bool = False


class Rule:
    """Base class for one contract check.

    Subclasses set :attr:`name` (the ``ABC123`` code), declare the AST
    node types they want via :attr:`node_types`, and implement
    :meth:`visit`; file-level checks that need the whole tree (pairing
    rules, cross-file imports) override :meth:`finish`.  The class
    docstring names the contract the rule guards — it is what
    ``repro.cli lint --list-rules`` prints.
    """

    #: The rule code, e.g. ``"RNG001"``.
    name: str = ""
    #: AST node classes dispatched to :meth:`visit`.
    node_types: Tuple[type, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether the rule runs on the repo-relative ``path`` at all."""
        return True

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        """Called once per matching node during the file walk."""

    def finish(self, ctx: "FileContext") -> None:
        """Called after the walk, for whole-file / cross-file checks."""


#: Registered rule classes by name (the plugin table).
RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to :data:`RULES`."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in RULES:
        raise ValueError(f"rule {cls.name!r} is already registered")
    if not cls.__doc__:
        raise ValueError(f"rule {cls.name!r} must document its contract")
    RULES[cls.name] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Every registered rule class, loading the built-in rule modules."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(RULES)


@dataclass
class FileContext:
    """Everything a rule may consult while one file is analyzed."""

    #: Repo-relative posix path (rules scope on this, not the fs path).
    path: str
    tree: ast.Module
    source: str
    #: Enclosing ``class`` statements, innermost last.
    class_stack: List[ast.ClassDef] = field(default_factory=list)
    #: Enclosing ``def`` / ``async def`` statements, innermost last.
    function_stack: List[ast.AST] = field(default_factory=list)
    #: Per-rule scratch space (keyed by rule name; fresh per file).
    state: Dict[str, object] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    _suppressions: List[_Suppression] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Scope helpers
    # ------------------------------------------------------------------ #
    @property
    def current_class(self) -> Optional[str]:
        """Name of the innermost enclosing class, if any."""
        return self.class_stack[-1].name if self.class_stack else None

    def in_async_function(self) -> bool:
        """Whether the innermost enclosing function is ``async def``."""
        return bool(self.function_stack) and isinstance(
            self.function_stack[-1], ast.AsyncFunctionDef)

    # ------------------------------------------------------------------ #
    # Reporting (suppression-aware)
    # ------------------------------------------------------------------ #
    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record a violation at ``node`` unless an allow comment covers it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        for suppression in self._suppressions:
            if suppression.rule == rule.name and suppression.target_line == line:
                suppression.used = True
                return
        self.violations.append(Violation(rule=rule.name, path=self.path,
                                         line=line, col=col, message=message))

    # ------------------------------------------------------------------ #
    # Suppression parsing / auditing
    # ------------------------------------------------------------------ #
    def load_suppressions(self) -> None:
        """Extract every ``repro: allow[...]`` comment from the source.

        A comment trailing code targets its own line; a comment alone on a
        line targets the next line that holds code (so long statements can
        carry their justification above themselves).
        """
        lines = self.source.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            row = token.start[0]
            standalone = lines[row - 1].lstrip().startswith("#")
            target = row
            if standalone:
                target = row + 1
                while target <= len(lines) and (
                        not lines[target - 1].strip()
                        or lines[target - 1].lstrip().startswith("#")):
                    target += 1
            for name in match.group(1).split(","):
                name = name.strip()
                if name:
                    self._suppressions.append(_Suppression(
                        rule=name, target_line=target, origin_line=row))

    def audit_suppressions(self, known_rules: Iterable[str]) -> None:
        """Emit ``SUP001`` for suppressions that never fired (or are bogus)."""
        known = set(known_rules)
        rule = UnusedSuppression()
        for suppression in self._suppressions:
            if suppression.rule not in known:
                self.violations.append(Violation(
                    rule=rule.name, path=self.path,
                    line=suppression.origin_line, col=0,
                    message=f"suppression names unknown rule "
                            f"{suppression.rule!r} (known rules: "
                            f"{', '.join(sorted(known))})"))
            elif not suppression.used:
                self.violations.append(Violation(
                    rule=rule.name, path=self.path,
                    line=suppression.origin_line, col=0,
                    message=f"unused suppression: no {suppression.rule} "
                            f"violation fires on line "
                            f"{suppression.target_line} — delete the "
                            f"'repro: allow[{suppression.rule}]' comment"))


@register_rule
class UnusedSuppression(Rule):
    """SUP001 — every inline baseline must still be load-bearing.

    Contract: ``# repro: allow[RULE]`` comments are justified exceptions,
    not decoration.  When the code they excused is fixed or deleted the
    comment must go too, otherwise the baseline rots into a list of
    permissions nobody can audit.  This rule fires on any allow comment
    whose rule no longer fires on its target line, and on comments naming
    a rule that does not exist.  SUP001 itself cannot be suppressed.
    """

    name = "SUP001"
    # Emitted by FileContext.audit_suppressions, not by the tree walk.
    node_types = ()


class Analyzer:
    """Run a battery of rules over source files, one parse per file."""

    def __init__(self, select: Optional[Sequence[str]] = None):
        """Instantiate the registered rules (optionally only ``select``)."""
        available = all_rules()
        if select is not None:
            unknown = sorted(set(select) - set(available))
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {unknown}; known rules: "
                    f"{', '.join(sorted(available))}")
            chosen = {name: available[name] for name in select}
            # The suppression audit is part of the framework contract and
            # always runs alongside whatever selection is active.
            chosen.setdefault(UnusedSuppression.name, UnusedSuppression)
        else:
            chosen = available
        self.rules: List[Rule] = [cls() for _, cls in sorted(chosen.items())]

    def rule_names(self) -> List[str]:
        """Names of the active rules, sorted."""
        return sorted(rule.name for rule in self.rules)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def check_source(self, source: str, path: str) -> List[Violation]:
        """Analyze ``source`` as if it lived at repo-relative ``path``."""
        path = path.replace("\\", "/").lstrip("./")
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return [Violation(rule="SYNTAX", path=path,
                              line=error.lineno or 1,
                              col=error.offset or 0,
                              message=f"file does not parse: {error.msg}")]
        ctx = FileContext(path=path, tree=tree, source=source)
        ctx.load_suppressions()
        active = [rule for rule in self.rules if rule.applies_to(path)]
        by_type: Dict[type, List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                by_type.setdefault(node_type, []).append(rule)
        self._walk(tree, ctx, by_type)
        for rule in active:
            rule.finish(ctx)
        ctx.audit_suppressions(rule.name for rule in self.rules)
        return sorted(ctx.violations,
                      key=lambda v: (v.line, v.col, v.rule))

    def check_file(self, fs_path: str, rel_path: Optional[str] = None
                   ) -> List[Violation]:
        """Analyze the file at ``fs_path`` (reported as ``rel_path``)."""
        with open(fs_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.check_source(source, rel_path or fs_path)

    # ------------------------------------------------------------------ #
    # The single tree walk
    # ------------------------------------------------------------------ #
    def _walk(self, node: ast.AST, ctx: FileContext,
              by_type: Dict[type, List[Rule]]) -> None:
        for rule in by_type.get(type(node), ()):
            rule.visit(node, ctx)
        is_class = isinstance(node, ast.ClassDef)
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_class:
            ctx.class_stack.append(node)
        if is_function:
            ctx.function_stack.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ctx, by_type)
        finally:
            if is_class:
                ctx.class_stack.pop()
            if is_function:
                ctx.function_stack.pop()


# ---------------------------------------------------------------------- #
# Shared AST helpers used by several rule modules
# ---------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def keyword_value(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The AST value of keyword ``name`` in ``call``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.expr], value: object) -> bool:
    """Whether ``node`` is the literal constant ``value``."""
    return isinstance(node, ast.Constant) and node.value is value


def body_only_passes(body: Sequence[ast.stmt]) -> bool:
    """Whether a statement body does nothing (``pass`` / ``...`` only)."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant) and \
                statement.value.value is Ellipsis:
            continue
        return False
    return True
