"""File discovery, report formatting, and the ``repro.cli lint`` backend.

Kept separate from :mod:`repro.analysis.core` so the framework stays a
pure library (no filesystem walking, no printing) and the CLI layer stays
a thin shell over :func:`run_lint`.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass, field
from typing import IO, Iterator, List, Optional, Sequence

from repro.analysis.core import Analyzer, Violation

#: Directory basenames never worth descending into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache",
                        ".mypy_cache", ".pytest_cache"})

#: What ``repro.cli lint`` checks when no paths are given.
DEFAULT_PATHS = ("src", "benchmarks", "examples")


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files pass through), sorted.

    Paths that do not exist are skipped silently so the default path set
    works in partial checkouts.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)


@dataclass
class LintReport:
    """The outcome of one lint run: violations plus counters."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 violations found."""
        return 1 if self.violations else 0

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` document)."""
        return {
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self, fmt: str = "text") -> str:
        """The report as ``text`` (one line per finding) or ``json``."""
        if fmt == "json":
            return json.dumps(self.to_dict(), indent=2)
        lines = [v.format() for v in self.violations]
        lines.append(f"{len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s)")
        return "\n".join(lines)


def run_lint(paths: Optional[Sequence[str]] = None, fmt: str = "text",
             select: Optional[Sequence[str]] = None,
             stream: Optional[IO[str]] = None) -> int:
    """Lint ``paths`` (default :data:`DEFAULT_PATHS`), print, return exit code."""
    stream = stream if stream is not None else sys.stdout
    analyzer = Analyzer(select=select)
    report = LintReport()
    for file_path in iter_python_files(list(paths or DEFAULT_PATHS)):
        report.files_checked += 1
        report.violations.extend(analyzer.check_file(file_path))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    print(report.render(fmt), file=stream)
    return report.exit_code


def list_rules(stream: Optional[IO[str]] = None) -> int:
    """Print every registered rule and the contract its docstring names."""
    from repro.analysis.core import all_rules

    stream = stream if stream is not None else sys.stdout
    for name, cls in sorted(all_rules().items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name}  {doc}", file=stream)
    return 0
