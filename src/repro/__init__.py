"""Zoomer reproduction: ROI-based GNN retrieval on web-scale graphs.

Reproduction of "Zoomer: Boosting Retrieval on Web-scale Graphs by Regions of
Interest" (ICDE 2022).  The package is organised as:

* :mod:`repro.api` — the unified surface: plugin registries
  (``register_model`` / ``register_sampler`` / ``register_dataset``), the
  declarative ``ExperimentSpec``, and the staged ``Pipeline`` facade
  (``build_graph() -> fit() -> evaluate() -> deploy()``).
* :mod:`repro.ndarray`, :mod:`repro.nn` — numpy autodiff engine and NN layers.
* :mod:`repro.graph` — heterogeneous graph engine (Euler-like substrate).
* :mod:`repro.sampling` — neighbor samplers (uniform, importance, random-walk,
  cluster, and the focal-biased ROI sampler).
* :mod:`repro.core` — Zoomer itself: focal interests, ROI construction,
  multi-level attention, twin-tower model, ablations.
* :mod:`repro.baselines` — GCN, GraphSAGE, GAT, HAN, PinSage, PinnerSage,
  Pixie, GCE-GNN, FGNN, STAMP, MCCF.
* :mod:`repro.training` — dataloaders, trainer, metrics.
* :mod:`repro.distributed` — parameter-server / pipeline simulation and
  training-cost models.
* :mod:`repro.serving` — neighbor cache, ANN index, inverted index, latency
  simulator, online server.
* :mod:`repro.data` — synthetic Taobao-like and MovieLens-like datasets.
* :mod:`repro.experiments` — motivation measurements, A/B test simulator,
  interpretability, experiment harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
