"""ROI-based multi-level attention (paper Section V-D, Fig. 6, Eqs. 6-11).

Three attention levels are applied inside the ROI, all oriented by the focal
vector:

* **Feature projection** (Eqs. 6-7): each node is represented by a small set
  of feature latent vectors (id embedding, content projection, type
  embedding); their weights are a softmax of their dot products with the
  focal vector, so focal-relevant feature fields are amplified.
* **Edge reweighing** (Eqs. 8-9): when aggregating same-type neighbors onto
  an ego node, each edge's weight is an attention score over the
  concatenation ``[z_i || z_j || z_c]`` (ego, neighbor, focal), normalised
  within the neighbor type so neighbors stay fairly comparable.
* **Semantic combination** (Eqs. 10-11): the per-type aggregated embeddings
  are combined with weights given by their cosine similarity to the ego's
  feature-level embedding, capturing which relation semantics matter.

Each level can be independently replaced by mean pooling, which yields the
ablation variants of Fig. 8 (GCN, Zoomer-FE, Zoomer-FS, Zoomer-ES).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.sampling.base import SampledNode


class FeatureProjection(Module):
    """Focal-oriented feature-level attention (Eqs. 6-7).

    Input: per-node slot matrices ``H`` of shape ``(n, s, d)`` (``s`` feature
    latent vectors per node) and a focal vector ``C`` of shape ``(d,)``.
    Output: ``(n, d)`` node vectors where each node is the weighted sum of its
    slots, weights ``softmax(H C / sqrt(d))``.
    """

    def __init__(self, hidden_dim: int, enabled: bool = True):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.enabled = enabled
        self._scale = 1.0 / np.sqrt(hidden_dim)

    def forward(self, slots: Tensor, focal: Tensor) -> Tensor:
        num_slots = slots.shape[1]
        if not self.enabled:
            # Ablation (Zoomer-ES): keep the original features — plain mean
            # over the slots, no focal-oriented reweighing.
            return slots.mean(axis=1)
        scores = (slots @ focal) * self._scale           # (n, s)
        weights = scores.softmax(axis=-1)                # (n, s)
        weighted = slots * weights.reshape(weights.shape[0], num_slots, 1)
        return weighted.sum(axis=1)                      # (n, d)


class EdgeLevelAttention(Module):
    """Focal-oriented edge-level attention (Eqs. 8-9).

    Scores each neighbor ``j`` of ego ``i`` with
    ``a^T [z_i || z_j || z_c]`` passed through LeakyReLU, softmax-normalised
    within the neighbor type, then aggregates ``E_t = sum_j e_ij z_j``.
    """

    def __init__(self, hidden_dim: int, enabled: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.enabled = enabled
        self.attention_vector = Parameter(
            xavier_uniform((3 * hidden_dim, 1), rng), name="edge_attention_a")

    def forward(self, ego: Tensor, neighbors: Tensor, focal: Tensor) -> Tensor:
        """Aggregate ``neighbors`` (k, d) onto ``ego`` (d,) guided by ``focal``."""
        k = neighbors.shape[0]
        if not self.enabled:
            # Ablation (Zoomer-FS / GCN): mean pooling over the neighbors.
            return neighbors.mean(axis=0)
        ones = Tensor(np.ones((k, 1)))
        ego_tiled = ones @ ego.reshape(1, self.hidden_dim)      # (k, d)
        focal_tiled = ones @ focal.reshape(1, self.hidden_dim)  # (k, d)
        concatenated = Tensor.concat([ego_tiled, neighbors, focal_tiled], axis=-1)
        scores = (concatenated @ self.attention_vector).reshape(k)
        scores = scores.leaky_relu()
        weights = scores.softmax(axis=-1)                        # (k,)
        return weights @ neighbors                               # (d,)

    def attention_weights(self, ego: Tensor, neighbors: Tensor,
                          focal: Tensor) -> np.ndarray:
        """Return the normalised edge weights (used by Fig. 13 heatmaps)."""
        k = neighbors.shape[0]
        ones = Tensor(np.ones((k, 1)))
        ego_tiled = ones @ ego.reshape(1, self.hidden_dim)
        focal_tiled = ones @ focal.reshape(1, self.hidden_dim)
        concatenated = Tensor.concat([ego_tiled, neighbors, focal_tiled], axis=-1)
        scores = (concatenated @ self.attention_vector).reshape(k).leaky_relu()
        return scores.softmax(axis=-1).numpy().copy()


class SemanticCombination(Module):
    """Semantic-level combination across neighbor types (Eqs. 10-11).

    The weight of neighbor type ``k`` is the cosine similarity between the
    ego's feature-level embedding ``C_i`` and the type's edge-level embedding
    ``E_ik``; the final aggregation is the weighted sum over types.
    """

    def __init__(self, hidden_dim: int, enabled: bool = True):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.enabled = enabled

    def forward(self, ego: Tensor, per_type: Dict[str, Tensor]) -> Tensor:
        if not per_type:
            raise ValueError("semantic combination needs at least one neighbor type")
        type_embeddings = list(per_type.values())
        if not self.enabled or len(type_embeddings) == 1:
            if len(type_embeddings) == 1:
                return type_embeddings[0] if self.enabled else type_embeddings[0]
            # Ablation (Zoomer-FE / GCN): plain mean over the types.
            stacked = Tensor.stack(type_embeddings, axis=0)
            return stacked.mean(axis=0)
        combined: Optional[Tensor] = None
        for embedding in type_embeddings:
            weight = _cosine(ego, embedding)
            term = embedding * weight
            combined = term if combined is None else combined + term
        return combined

    def semantic_weights(self, ego: Tensor,
                         per_type: Dict[str, Tensor]) -> Dict[str, float]:
        """Return the per-type cosine weights (for inspection / tests)."""
        return {name: float(_cosine(ego, emb).item())
                for name, emb in per_type.items()}


def _cosine(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    num = (a * b).sum()
    denom = ((a * a).sum() ** 0.5) * ((b * b).sum() ** 0.5) + eps
    return num / denom


class MultiLevelAttention(Module):
    """Full multi-level attention applied recursively over an ROI tree.

    The module is given per-node slot matrices through a callable encoder
    (owned by the model), applies feature projection to every node, then
    aggregates the tree bottom-up with edge-level attention within each
    neighbor type and semantic combination across types.  A self connection
    (``z_i + H_i``) keeps the ego's own information, mirroring the
    self-loops of GCN-style propagation.
    """

    def __init__(self, hidden_dim: int,
                 use_feature_attention: bool = True,
                 use_edge_attention: bool = True,
                 use_semantic_attention: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.feature_projection = FeatureProjection(hidden_dim, use_feature_attention)
        self.edge_attention = EdgeLevelAttention(hidden_dim, use_edge_attention, rng)
        self.semantic_combination = SemanticCombination(hidden_dim,
                                                        use_semantic_attention)

    def forward(self, tree: SampledNode, projected: Dict[int, Tensor],
                focal: Tensor) -> Tensor:
        """Aggregate the tree into the ego representation.

        ``projected`` maps ``id(SampledNode)`` to that node's feature-projected
        vector (computed in one batched pass by the model).
        """
        return self._aggregate(tree, projected, focal)

    def _aggregate(self, node: SampledNode, projected: Dict[int, Tensor],
                   focal: Tensor) -> Tensor:
        ego_vector = projected[id(node)]
        groups = node.children_by_type()
        if not groups:
            return ego_vector
        per_type: Dict[str, Tensor] = {}
        for node_type, members in groups.items():
            child_vectors = [self._aggregate(child, projected, focal)
                             for child, _ in members]
            stacked = Tensor.stack(child_vectors, axis=0)
            per_type[node_type] = self.edge_attention(ego_vector, stacked, focal)
        aggregated = self.semantic_combination(ego_vector, per_type)
        return ego_vector + aggregated

    def edge_weights_for(self, node: SampledNode, projected: Dict[int, Tensor],
                         focal: Tensor) -> Dict[str, np.ndarray]:
        """Edge-attention weights of the ego's children, per neighbor type.

        This is the quantity visualised in the paper's Fig. 13 heatmaps.
        """
        ego_vector = projected[id(node)]
        weights: Dict[str, np.ndarray] = {}
        for node_type, members in node.children_by_type().items():
            child_vectors = [self._aggregate(child, projected, focal)
                             for child, _ in members]
            stacked = Tensor.stack(child_vectors, axis=0)
            weights[node_type] = self.edge_attention.attention_weights(
                ego_vector, stacked, focal)
        return weights
