"""Focal-point selection and focal-vector construction (paper Section V-B).

User behavior is the tuple ``{u_k, q_k, i_k}``: user ``u_k`` searched query
``q_k`` and clicked item ``i_k``.  Zoomer assigns the pair ``{u_k, q_k}`` as
the focal points of each request — the user carries personalised information,
the query carries the explicit, time-sensitive intention.  The clicked item is
deliberately *not* a focal point (to avoid biasing towards one specific item).

Two focal representations are needed:

* a **raw focal vector** built from the nodes' dense content features, used by
  the focal-biased sampler *before* any model parameters exist (graph
  sampling is stage 1 of the pipeline);
* a **learned focal vector** built inside the model by space-mapping the focal
  points' embeddings into a shared latent space and summing them, used by the
  multi-level attention module (stage 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import NodeType
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module


@dataclass(frozen=True)
class FocalPoints:
    """The focal points of one recommendation request."""

    user_id: int
    query_id: int

    def as_dict(self) -> Dict[str, int]:
        return {NodeType.USER: self.user_id, NodeType.QUERY: self.query_id}


class FocalSelector:
    """Selects focal points and builds raw (feature-space) focal vectors."""

    def __init__(self, user_type: str = NodeType.USER,
                 query_type: str = NodeType.QUERY):
        self.user_type = user_type
        self.query_type = query_type

    def select(self, user_id: int, query_id: int) -> FocalPoints:
        """Return the focal points for a request (the ``{u_k, q_k}`` pair)."""
        return FocalPoints(user_id=int(user_id), query_id=int(query_id))

    def focal_vector(self, graph: HeteroGraph, focal: FocalPoints) -> np.ndarray:
        """Raw focal vector: sum of the focal points' dense content features.

        The paper "directly sums up embeddings of focal points in c as F_c"
        (Section V-C); before training, content features stand in for the
        embeddings so that ROI sampling is possible from the first batch.
        """
        user_feat = graph.node_feature(self.user_type, focal.user_id)
        query_feat = graph.node_feature(self.query_type, focal.query_id)
        return np.asarray(user_feat) + np.asarray(query_feat)

    def focal_vectors(self, graph: HeteroGraph, user_ids: Sequence[int],
                      query_ids: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`focal_vector` for a batch of requests."""
        users = graph.node_features(self.user_type, user_ids)
        queries = graph.node_features(self.query_type, query_ids)
        return users + queries


class LearnedFocalEncoder(Module):
    """Space-maps focal-point embeddings into a shared latent focal vector.

    "We first retrieve the embeddings of the focal points from embedding
    tables separately, then we perform space mapping on focal points of
    different types into the same latent space.  After this, we directly sum
    up the processed focal points' representations to a focal vector."
    (Section V-A.)
    """

    def __init__(self, embedding_dim: int, hidden_dim: int,
                 node_types: Sequence[str] = (NodeType.USER, NodeType.QUERY),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.node_types = tuple(node_types)
        self.hidden_dim = hidden_dim
        for node_type in self.node_types:
            self.add_module(f"map_{node_type}",
                            Linear(embedding_dim, hidden_dim, rng=rng))

    def forward(self, embeddings: Dict[str, Tensor]) -> Tensor:
        """Sum the space-mapped embeddings of the focal points.

        ``embeddings`` maps node type -> embedding tensor of shape ``(d,)`` or
        ``(batch, d)``; missing types are simply skipped (the item-side base
        model has no focal points).
        """
        total: Optional[Tensor] = None
        for node_type in self.node_types:
            if node_type not in embeddings:
                continue
            mapper: Linear = getattr(self, f"map_{node_type}")
            mapped = mapper(embeddings[node_type])
            total = mapped if total is None else total + mapped
        if total is None:
            raise ValueError("no focal embeddings supplied")
        return total
