"""Ablation variants of the multi-level attention module (paper Fig. 8).

The paper disables one attention level at a time:

* **GCN** — mean-pooling aggregation at the edge level (and no feature or
  semantic attention): the plain-GCN reference point.
* **Zoomer-FE** — semantic combination replaced by mean pooling (Feature and
  Edge attention kept).
* **Zoomer-FS** — edge reweighing replaced by mean pooling (Feature and
  Semantic attention kept).
* **Zoomer-ES** — feature projection replaced by the original feature (Edge
  and Semantic attention kept).
* **Zoomer** — all three levels enabled.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.config import ZoomerConfig
from repro.core.model import ZoomerModel
from repro.graph.hetero_graph import HeteroGraph

#: The ablation switch settings, keyed by the names used in Fig. 8.
ABLATION_VARIANTS: Dict[str, Dict[str, bool]] = {
    "GCN": {
        "use_feature_attention": False,
        "use_edge_attention": False,
        "use_semantic_attention": False,
    },
    "Zoomer-FE": {
        "use_feature_attention": True,
        "use_edge_attention": True,
        "use_semantic_attention": False,
    },
    "Zoomer-FS": {
        "use_feature_attention": True,
        "use_edge_attention": False,
        "use_semantic_attention": True,
    },
    "Zoomer-ES": {
        "use_feature_attention": False,
        "use_edge_attention": True,
        "use_semantic_attention": True,
    },
    "Zoomer": {
        "use_feature_attention": True,
        "use_edge_attention": True,
        "use_semantic_attention": True,
    },
}


def ablation_config(variant: str,
                    base: Optional[ZoomerConfig] = None) -> ZoomerConfig:
    """Return a :class:`ZoomerConfig` with the variant's attention switches."""
    if variant not in ABLATION_VARIANTS:
        raise KeyError(f"unknown ablation variant {variant!r}; "
                       f"choose from {sorted(ABLATION_VARIANTS)}")
    base = base if base is not None else ZoomerConfig()
    return replace(base, **ABLATION_VARIANTS[variant])


def build_ablation_variant(graph: HeteroGraph, variant: str,
                           base: Optional[ZoomerConfig] = None,
                           **model_kwargs) -> ZoomerModel:
    """Instantiate a :class:`ZoomerModel` configured as the given variant."""
    config = ablation_config(variant, base)
    model = ZoomerModel(graph, config, **model_kwargs)
    model.name = variant
    return model
