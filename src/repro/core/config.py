"""Zoomer configuration: model hyper-parameters and ablation switches.

Defaults follow Section VII-A of the paper: hidden size 128 for the paper's
production runs (we default to 32 to keep the laptop-scale reproduction fast —
benchmarks can raise it), 2-hop aggregation with fanout 10 on Taobao graphs,
1-hop on MovieLens, focal cross-entropy with focal weight 2, regularisation
weight 1e-6, learning rate 0.1, Adam, batch size 1024 (we default smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass
class ZoomerConfig:
    """Hyper-parameters of the Zoomer model and its training."""

    # Model dimensions.
    embedding_dim: int = 32
    hidden_dim: int = 32
    tower_hidden: Tuple[int, ...] = (64, 32)

    # Neighborhood sampling.
    fanouts: Tuple[int, ...] = (10, 5)
    relevance_metric: str = "generalized_jaccard"  # paper Eq. 5; or "cosine"
    roi_downscale: float = 1.0   # <1.0 further shrinks the ROI (Fig. 12: 0.1)

    # Multi-level attention switches (ablations of Fig. 8).
    use_feature_attention: bool = True    # feature projection (Eqs. 6-7)
    use_edge_attention: bool = True       # edge reweighing (Eqs. 8-9)
    use_semantic_attention: bool = True   # semantic combination (Eqs. 10-11)

    # Training.
    learning_rate: float = 0.1
    optimizer: str = "adam"
    batch_size: int = 128
    epochs: int = 5
    focal_loss_gamma: float = 2.0
    regularization_weight: float = 1e-6
    seed: int = 0

    # Serving-time simplifications (Section VII-E).
    serving_neighbor_cache: int = 30
    serving_edge_attention_only: bool = True

    def validate(self) -> None:
        if self.embedding_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        if not self.fanouts or any(k <= 0 for k in self.fanouts):
            raise ValueError("fanouts must be a non-empty tuple of positive ints")
        if not 0.0 < self.roi_downscale <= 1.0:
            raise ValueError("roi_downscale must be in (0, 1]")
        if self.relevance_metric not in ("generalized_jaccard", "cosine"):
            raise ValueError("relevance_metric must be generalized_jaccard or cosine")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be adam or sgd")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        if self.focal_loss_gamma <= 0:
            raise ValueError("focal_loss_gamma must be positive")
        if self.regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")
        if self.serving_neighbor_cache <= 0:
            raise ValueError("serving_neighbor_cache must be positive")

    def effective_fanouts(self) -> Tuple[int, ...]:
        """Fanouts after applying the ROI downscale factor (Fig. 12)."""
        if self.roi_downscale >= 1.0:
            return tuple(self.fanouts)
        scaled = tuple(max(1, int(round(k * self.roi_downscale)))
                       for k in self.fanouts)
        return scaled

    def ablation_name(self) -> str:
        """Name of the ablation variant this configuration corresponds to."""
        flags = (self.use_feature_attention, self.use_edge_attention,
                 self.use_semantic_attention)
        if flags == (True, True, True):
            return "Zoomer"
        if flags == (True, True, False):
            return "Zoomer-FE"
        if flags == (True, False, True):
            return "Zoomer-FS"
        if flags == (False, True, True):
            return "Zoomer-ES"
        if flags == (False, False, False):
            return "GCN"
        return "Zoomer-custom"
