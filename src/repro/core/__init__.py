"""Zoomer core: focal interests, ROI construction, multi-level attention.

This package implements the paper's primary contribution:

* :mod:`repro.core.config` — hyper-parameters and ablation switches.
* :mod:`repro.core.focal` — focal-point selection and focal-vector
  construction (Section V-B).
* :mod:`repro.core.roi` — ROI construction via the focal-biased sampler
  (Section V-C / Eq. 5).
* :mod:`repro.core.attention` — the ROI-based multi-level attention module:
  feature projection, edge reweighing and semantic combination
  (Section V-D / Eqs. 6-11).
* :mod:`repro.core.model` — the twin-tower Zoomer model used for CTR
  prediction and retrieval.
* :mod:`repro.core.ablation` — the ablation variants of Fig. 8
  (GCN, Zoomer-FE, Zoomer-FS, Zoomer-ES).
"""

from repro.core.config import ZoomerConfig
from repro.core.focal import FocalPoints, FocalSelector
from repro.core.roi import ROIBuilder, RegionOfInterest
from repro.core.attention import (
    FeatureProjection,
    EdgeLevelAttention,
    SemanticCombination,
    MultiLevelAttention,
)
from repro.core.model import ZoomerModel
from repro.core.ablation import build_ablation_variant, ABLATION_VARIANTS

__all__ = [
    "ZoomerConfig",
    "FocalPoints",
    "FocalSelector",
    "ROIBuilder",
    "RegionOfInterest",
    "FeatureProjection",
    "EdgeLevelAttention",
    "SemanticCombination",
    "MultiLevelAttention",
    "ZoomerModel",
    "build_ablation_variant",
    "ABLATION_VARIANTS",
]
