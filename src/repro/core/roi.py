"""Region-of-Interest construction (paper Section V-C, Fig. 5 Stage 1).

The ROI of a request is the focal-relevant part of the ego node's
neighborhood: the focal-biased sampler scores every neighbor against the
focal vector (Eq. 5) and keeps the top-k, recursively over the configured
number of hops.  The result is a small sampled tree plus bookkeeping (how
many nodes were touched, which were left out) that the efficiency
experiments use as the unit of cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import ZoomerConfig
from repro.core.focal import FocalPoints, FocalSelector
from repro.graph.hetero_graph import HeteroGraph
from repro.sampling.base import SampledNode
from repro.sampling.focal import FocalBiasedSampler


@dataclass
class RegionOfInterest:
    """An ROI: the focal points, the focal vector and the sampled subgraphs."""

    focal: FocalPoints
    focal_vector: np.ndarray
    ego_trees: Dict[str, SampledNode]   # keyed by ego node type

    def num_nodes(self) -> int:
        """Total sampled nodes across all ego trees (the downsized graph size)."""
        return sum(tree.num_nodes() for tree in self.ego_trees.values())

    def num_edges(self) -> int:
        """Total sampled edges across all ego trees."""
        return sum(tree.num_edges() for tree in self.ego_trees.values())

    def tree(self, ego_type: str) -> SampledNode:
        """The sampled tree rooted at the ego node of ``ego_type``."""
        return self.ego_trees[ego_type]


class ROIBuilder:
    """Builds ROIs for recommendation requests using the focal-biased sampler."""

    def __init__(self, config: Optional[ZoomerConfig] = None,
                 selector: Optional[FocalSelector] = None,
                 sampler: Optional[FocalBiasedSampler] = None):
        self.config = config if config is not None else ZoomerConfig()
        self.config.validate()
        self.selector = selector if selector is not None else FocalSelector()
        self.sampler = sampler if sampler is not None else FocalBiasedSampler(
            seed=self.config.seed, metric=self.config.relevance_metric)

    def build(self, graph: HeteroGraph, user_id: int, query_id: int,
              fanouts: Optional[Sequence[int]] = None) -> RegionOfInterest:
        """Construct the ROI for the request ``(user_id, query_id)``.

        Zoomer is deployed on the user-query side only (Section V-B), so the
        ROI contains one sampled tree rooted at the user node and one rooted
        at the query node; the item side uses a base model without ROIs.
        """
        focal = self.selector.select(user_id, query_id)
        focal_vector = self.selector.focal_vector(graph, focal)
        fanouts = tuple(fanouts) if fanouts is not None \
            else self.config.effective_fanouts()
        user_type = self.selector.user_type
        query_type = self.selector.query_type
        trees = {
            user_type: self.sampler.sample(
                graph, user_type, focal.user_id, fanouts, focal_vector),
            query_type: self.sampler.sample(
                graph, query_type, focal.query_id, fanouts, focal_vector),
        }
        return RegionOfInterest(focal=focal, focal_vector=focal_vector,
                                ego_trees=trees)

    def build_batch(self, graph: HeteroGraph, user_ids: Sequence[int],
                    query_ids: Sequence[int],
                    fanouts: Optional[Sequence[int]] = None
                    ) -> List[RegionOfInterest]:
        """Construct ROIs for a batch of requests in vectorized passes.

        Focal vectors for the whole batch come from one feature gather, and
        the user-side and query-side trees of all requests are expanded
        with the focal sampler's batched forest path — no per-request
        Python sampling loop.  Results are identical to looping
        :meth:`build` (the focal top-k selection is deterministic).
        """
        if len(user_ids) != len(query_ids):
            raise ValueError("user_ids and query_ids must have the same length")
        if not len(user_ids):
            return []
        fanouts = tuple(fanouts) if fanouts is not None \
            else self.config.effective_fanouts()
        focal_vectors = self.selector.focal_vectors(graph, user_ids, query_ids)
        user_type = self.selector.user_type
        query_type = self.selector.query_type
        user_trees = self.sampler.sample_batch(
            graph, user_type, user_ids, fanouts, focal_vectors)
        query_trees = self.sampler.sample_batch(
            graph, query_type, query_ids, fanouts, focal_vectors)
        rois = []
        for index, (user_id, query_id) in enumerate(zip(user_ids, query_ids)):
            rois.append(RegionOfInterest(
                focal=self.selector.select(user_id, query_id),
                focal_vector=focal_vectors[index],
                ego_trees={user_type: user_trees[index],
                           query_type: query_trees[index]}))
        return rois

    def coverage_ratio(self, graph: HeteroGraph, roi: RegionOfInterest) -> float:
        """Fraction of the egos' full 1-hop neighborhoods kept in the ROI.

        A direct measure of how aggressively the ROI "zooms in"; used by the
        efficiency benchmarks.
        """
        kept = 0
        available = 0
        for ego_type, tree in roi.ego_trees.items():
            kept += len(tree.children)
            available += sum(ids.size for _, ids, _ in
                             graph.neighbors(ego_type, tree.node_id))
        if available == 0:
            return 1.0
        return kept / available
