"""The Zoomer twin-tower model (paper Fig. 5, Stage 2).

One tower handles the user-query side: for each request the focal-biased
sampler builds the ROI around the user and query ego nodes, and the
multi-level attention module aggregates those ROIs — guided by the learned
focal vector — into ego representations that are concatenated and passed
through a DSSM tower.  The other tower is a base item model (id embedding +
content projection + MLP) without ROIs, matching the paper's decision to keep
the item side cheap for online serving (Section V-B).  The click probability
is the sigmoid of the two towers' dot product.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.core.attention import MultiLevelAttention
from repro.core.config import ZoomerConfig
from repro.core.focal import FocalSelector, LearnedFocalEncoder
from repro.core.roi import ROIBuilder, RegionOfInterest
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import NodeType
from repro.models.base import RetrievalModel
from repro.models.encoders import HeteroNodeEncoder, TwinTowerHead
from repro.ndarray.tensor import Tensor, no_grad
from repro.sampling.base import SampledNode


@register_model("Zoomer", config_class=ZoomerConfig)
class ZoomerModel(RetrievalModel):
    """ROI-based multi-level-attention retrieval model."""

    name = "Zoomer"

    def __init__(self, graph: HeteroGraph, config: Optional[ZoomerConfig] = None,
                 user_type: Optional[str] = None,
                 query_type: Optional[str] = None,
                 item_type: Optional[str] = None):
        super().__init__(graph)
        self.config = config if config is not None else ZoomerConfig()
        self.config.validate()
        rng = np.random.default_rng(self.config.seed)

        # Resolve node-type roles (Taobao: user/query/item; MovieLens:
        # user/tag/movie).
        self.user_type = user_type or NodeType.USER
        self.query_type = query_type or self._default_query_type()
        self.item_type = item_type or self._default_item_type()

        dim = self.config.embedding_dim
        self.encoder = HeteroNodeEncoder(graph, dim, rng=rng)
        self.focal_encoder = LearnedFocalEncoder(
            dim, dim, node_types=(self.user_type, self.query_type), rng=rng)
        self.attention = MultiLevelAttention(
            dim,
            use_feature_attention=self.config.use_feature_attention,
            use_edge_attention=self.config.use_edge_attention,
            use_semantic_attention=self.config.use_semantic_attention,
            rng=rng)
        self.head = TwinTowerHead(2 * dim, dim, self.config.tower_hidden,
                                  dim, rng=rng)
        self.roi_builder = ROIBuilder(
            self.config,
            selector=FocalSelector(self.user_type, self.query_type))
        self._roi_cache: Dict[Tuple[int, int], RegionOfInterest] = {}
        self.name = self.config.ablation_name()

    # ------------------------------------------------------------------ #
    # Role resolution helpers
    # ------------------------------------------------------------------ #
    def _default_query_type(self) -> str:
        if self.graph.num_nodes.get(NodeType.QUERY, 0) > 0:
            return NodeType.QUERY
        if self.graph.num_nodes.get(NodeType.TAG, 0) > 0:
            return NodeType.TAG
        return NodeType.QUERY

    def _default_item_type(self) -> str:
        if self.graph.num_nodes.get(NodeType.ITEM, 0) > 0:
            return NodeType.ITEM
        if self.graph.num_nodes.get(NodeType.MOVIE, 0) > 0:
            return NodeType.MOVIE
        return NodeType.ITEM

    # ------------------------------------------------------------------ #
    # ROI handling
    # ------------------------------------------------------------------ #
    def roi_for(self, user_id: int, query_id: int) -> RegionOfInterest:
        """ROI for a request, cached because it only depends on (user, query)."""
        key = (int(user_id), int(query_id))
        roi = self._roi_cache.get(key)
        if roi is None:
            roi = self.roi_builder.build(self.graph, user_id, query_id)
            self._roi_cache[key] = roi
        return roi

    def prime_rois(self, user_ids: Sequence[int],
                   query_ids: Sequence[int]) -> None:
        """Build the ROIs of every uncached ``(user, query)`` pair at once.

        Uses the batched ROI builder (vectorized focal scoring and fanout
        expansion), so one call per mini-batch replaces per-request
        sampling loops; the results land in the same cache ``roi_for``
        reads.
        """
        pairs: List[Tuple[int, int]] = []
        seen = set()
        for user_id, query_id in zip(user_ids, query_ids):
            key = (int(user_id), int(query_id))
            if key in seen or key in self._roi_cache:
                continue
            seen.add(key)
            pairs.append(key)
        if not pairs:
            return
        rois = self.roi_builder.build_batch(
            self.graph, [u for u, _ in pairs], [q for _, q in pairs])
        for key, roi in zip(pairs, rois):
            self._roi_cache[key] = roi

    def clear_roi_cache(self) -> None:
        """Drop cached ROIs (e.g. after the graph changed)."""
        self._roi_cache.clear()

    def on_graph_update(self, delta, rng=None) -> None:
        """Absorb a streaming graph update (scoped, not a full reset).

        Grows the id-embedding tables for nodes the update appended, then
        drops exactly the cached ROIs whose user or query had its
        neighborhood changed — every other ``(user, query)`` ROI stays
        cached, keeping the serving-time cost of an update proportional to
        the delta.
        """
        self.encoder.sync_with_graph(rng=rng)
        touched_users = set(delta.touched_ids(self.user_type).tolist())
        touched_queries = set(delta.touched_ids(self.query_type).tolist())
        if touched_users or touched_queries:
            self._roi_cache = {
                key: roi for key, roi in self._roi_cache.items()
                if key[0] not in touched_users and key[1] not in touched_queries
            }

    # ------------------------------------------------------------------ #
    # Request (user-query) side
    # ------------------------------------------------------------------ #
    def _learned_focal(self, user_id: int, query_id: int) -> Tensor:
        user_vec = self.encoder.mean_vectors(self.user_type, [user_id])
        query_vec = self.encoder.mean_vectors(self.query_type, [query_id])
        focal = self.focal_encoder({self.user_type: user_vec,
                                    self.query_type: query_vec})
        return focal.reshape(self.config.embedding_dim)

    def _project_tree(self, tree: SampledNode, focal: Tensor
                      ) -> Dict[int, Tensor]:
        """Feature-project every node of a sampled tree in batched passes."""
        nodes_by_type: Dict[str, List[SampledNode]] = {}
        for node in tree.iter_nodes():
            nodes_by_type.setdefault(node.node_type, []).append(node)
        projected: Dict[int, Tensor] = {}
        for node_type, nodes in nodes_by_type.items():
            ids = [node.node_id for node in nodes]
            slots = self.encoder.slots(node_type, ids)
            vectors = self.attention.feature_projection(slots, focal)
            for row, node in enumerate(nodes):
                projected[id(node)] = vectors[row]
        return projected

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        """The concatenated (user ego, query ego) representation of a request."""
        roi = self.roi_for(user_id, query_id)
        focal = self._learned_focal(user_id, query_id)
        ego_vectors = []
        for ego_type in (self.user_type, self.query_type):
            tree = roi.tree(ego_type)
            projected = self._project_tree(tree, focal)
            ego_vectors.append(self.attention(tree, projected, focal))
        return Tensor.concat(ego_vectors, axis=-1)

    # ------------------------------------------------------------------ #
    # Item (base-model) side
    # ------------------------------------------------------------------ #
    def _item_inputs(self, item_ids: Sequence[int]) -> Tensor:
        return self.encoder.mean_vectors(self.item_type, item_ids)

    # ------------------------------------------------------------------ #
    # RetrievalModel interface
    # ------------------------------------------------------------------ #
    def forward_batch(self, user_ids: np.ndarray, query_ids: np.ndarray,
                      item_ids: np.ndarray) -> Tensor:
        user_ids = np.asarray(user_ids, dtype=np.int64)
        query_ids = np.asarray(query_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        self.prime_rois(user_ids, query_ids)
        request_vectors = [
            self.request_representation(int(u), int(q))
            for u, q in zip(user_ids, query_ids)
        ]
        request_matrix = Tensor.stack(request_vectors, axis=0)
        request_out = self.head.request(request_matrix)
        item_out = self.head.item(self._item_inputs(item_ids))
        logits = (request_out * item_out).sum(axis=-1)
        return logits.sigmoid()

    def request_embedding(self, user_id: int, query_id: int) -> np.ndarray:
        with no_grad():
            representation = self.request_representation(user_id, query_id)
            output = self.head.request(representation.reshape(1, -1))
        return output.numpy().reshape(-1).copy()

    def item_embedding(self, item_id: int) -> np.ndarray:
        with no_grad():
            output = self.head.item(self._item_inputs([int(item_id)]))
        return output.numpy().reshape(-1).copy()

    def item_embeddings(self, item_ids: Optional[Sequence[int]] = None) -> np.ndarray:
        if item_ids is None:
            item_ids = range(self.graph.num_nodes[self.item_type])
        item_ids = list(item_ids)
        with no_grad():
            output = self.head.item(self._item_inputs(item_ids))
        return output.numpy().copy()

    # ------------------------------------------------------------------ #
    # Interpretability (Fig. 13)
    # ------------------------------------------------------------------ #
    def coupling_coefficients(self, user_id: int, query_id: int,
                              item_ids: Sequence[int]) -> np.ndarray:
        """Edge-attention weights of given items under the focal (u, q).

        Reproduces the quantity plotted in the paper's Fig. 13: how strongly
        each historical item is attended to when the focal points change.
        """
        with no_grad():
            focal = self._learned_focal(user_id, query_id)
            item_slots = self.encoder.slots(self.item_type, list(item_ids))
            item_vectors = self.attention.feature_projection(item_slots, focal)
            user_slots = self.encoder.slots(self.user_type, [user_id])
            user_vector = self.attention.feature_projection(user_slots, focal)[0]
            weights = self.attention.edge_attention.attention_weights(
                user_vector, item_vectors, focal)
        return weights
