"""Multi-core parallel execution: shared-memory graph store + worker pools.

The subsystem has four pieces (see ``docs/ARCHITECTURE.md`` for the layout
diagram and the determinism contract):

* :mod:`repro.parallel.shm` — numpy arrays in shared-memory blocks,
* :mod:`repro.parallel.store` — zero-copy exports of the graph's sampling
  state and the serving ANN index, plus the worker-side views,
* :mod:`repro.parallel.pool` — the persistent, spawn-safe worker pool,
* :mod:`repro.parallel.engine` — :class:`ParallelEngine`, the facade the
  graph / training / serving / streaming layers call.

``ParallelEngine(graph, num_workers=4, backend="shared")`` is the whole
API for callers; ``backend="serial"`` runs the identical shard tasks
in-process and is bit-identical to the shared backend under a fixed seed.
"""

from repro.parallel.engine import BACKENDS, ParallelEngine, SerialExecutor
from repro.parallel.pool import (
    PoolStats,
    WorkerCrashError,
    WorkerPool,
    WorkerTaskError,
    pool_task,
)
from repro.parallel.rng import rng_stream
from repro.parallel.shm import SharedArray, SharedArrayHandle
from repro.parallel.store import SharedGraphStore, SharedIndexStore

__all__ = [
    "BACKENDS",
    "ParallelEngine",
    "PoolStats",
    "SerialExecutor",
    "SharedArray",
    "SharedArrayHandle",
    "SharedGraphStore",
    "SharedIndexStore",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTaskError",
    "pool_task",
    "rng_stream",
]
