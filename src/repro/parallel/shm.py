"""Shared-memory numpy arrays: zero-copy graph state across processes.

:class:`SharedArray` places one numpy array into a
:mod:`multiprocessing.shared_memory` block so worker processes can map the
same physical pages instead of receiving pickled copies.  The creating
process *owns* the block (it unlinks the segment on :meth:`SharedArray.close`);
workers attach read-only views through the picklable
:class:`SharedArrayHandle` and never unlink.

Attachment detail: Python's ``resource_tracker`` registers every attached
segment and would unlink it again when the attaching side's tracker shuts
down — destroying the owner's block from under it (CPython issue 82300) —
and, with several workers attaching the same block, the shared tracker
process logs spurious KeyErrors on the duplicate registrations.  Worker
attachments therefore suppress tracker registration entirely; the owner
remains the single point of cleanup.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Tuple

import numpy as np


@contextmanager
def _tracker_silenced():
    """Keep the resource tracker out of untracked attach/create/unlink.

    Registration would let the tracker unlink blocks other processes still
    own (see module docstring); unregistration of a never-registered name
    makes the shared tracker process log spurious ``KeyError`` tracebacks.
    """
    register = resource_tracker.register
    unregister = resource_tracker.unregister
    resource_tracker.register = lambda *args, **kwargs: None
    resource_tracker.unregister = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = register
        resource_tracker.unregister = unregister


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable description of a shared block: enough to re-map the array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, initial=1)))


class SharedArray:
    """One numpy array backed by an owned shared-memory block."""

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        # A zero-byte block cannot be created; keep one spare byte so empty
        # arrays (e.g. a relation with no edges) still round-trip.
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1))
        self._handle = SharedArrayHandle(name=self._shm.name,
                                         shape=tuple(array.shape),
                                         dtype=array.dtype.str)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
        view[...] = array
        self._closed = False

    @property
    def handle(self) -> SharedArrayHandle:
        """The picklable handle workers attach with."""
        return self._handle

    @property
    def name(self) -> str:
        """Kernel name of the backing segment (a file under ``/dev/shm``)."""
        return self._handle.name

    def array(self) -> np.ndarray:
        """The owner-side view of the shared block."""
        if self._closed:
            raise RuntimeError("shared array already closed")
        return np.ndarray(self._handle.shape, dtype=self._handle.dtype,
                          buffer=self._shm.buf)

    def close(self) -> None:
        """Release and unlink the segment (owner side); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:   # pragma: no cover - already gone
            pass

    def __del__(self):   # pragma: no cover - GC safety net
        try:
            self.close()
        # repro: allow[EXC001,EXC002] -- __del__ GC safety net must never raise
        except Exception:
            pass


@dataclass(frozen=True)
class SharedPackHandle:
    """One shm block holding several packed arrays (a task's bulk result).

    ``meta`` records ``(shape, dtype, offset)`` per array.  Packing a whole
    result into one block matters: block creation/attachment is a few
    syscalls each, so per-array blocks would pay that fixed cost dozens of
    times per batch.
    """

    name: str
    size: int
    meta: Tuple[Tuple[Tuple[int, ...], str, int], ...]


#: Pack offsets are aligned so every dtype's view is well-aligned.
_PACK_ALIGN = 64

# Result packs created under a pool-assigned prefix get predictable kernel
# names (``<prefix>_<seq>``), so the pool can sweep crash leftovers — a
# worker that died between creating a pack and queueing its handle leaves
# an orphan no handle points at.  ``None`` falls back to anonymous names.
_PACK_PREFIX = {"value": None, "seq": 0}


def set_pack_prefix(prefix) -> None:
    """Adopt (or clear, with ``None``) this process's result-pack prefix."""
    _PACK_PREFIX["value"] = prefix
    _PACK_PREFIX["seq"] = 0


def _create_pack_block(size: int) -> shared_memory.SharedMemory:
    """Create one untracked pack block, under the prefix when one is set."""
    prefix = _PACK_PREFIX["value"]
    with _tracker_silenced():
        if prefix is None:
            return shared_memory.SharedMemory(create=True, size=size)
        while True:
            _PACK_PREFIX["seq"] += 1
            name = f"{prefix}_{_PACK_PREFIX['seq']}"
            try:
                return shared_memory.SharedMemory(name=name, create=True,
                                                  size=size)
            except FileExistsError:   # pragma: no cover - stale leftover
                continue


def sweep_leaked_packs(prefix: str) -> int:
    """Unlink every surviving ``/dev/shm`` pack under ``prefix``.

    Called by the pool after its workers are gone: anything still named
    ``<prefix>_*`` is a consume-once pack whose handle was lost to a crash.
    Returns how many blocks were removed (0 on platforms without a
    ``/dev/shm`` view of POSIX shared memory).
    """
    import pathlib

    shm_dir = pathlib.Path("/dev/shm")
    if not prefix or not shm_dir.is_dir():   # pragma: no cover - non-Linux
        return 0
    swept = 0
    for path in shm_dir.glob(f"{prefix}_*"):
        with _tracker_silenced():
            try:
                leaked = shared_memory.SharedMemory(name=path.name)
                leaked.close()
                leaked.unlink()
                swept += 1
            except FileNotFoundError:   # pragma: no cover - concurrent sweep
                pass
    return swept


def share_result_pack(arrays) -> SharedPackHandle:
    """Hand a list of bulk result arrays to another process in one block.

    The transport for large worker results (pipe-backed queues copy every
    byte four times; a block is written once and read once).  The block is
    *untracked and unowned*: the receiving side must consume it with
    :func:`take_result_pack`, which unlinks it.
    """
    arrays = [np.ascontiguousarray(array) for array in arrays]
    meta = []
    offset = 0
    for array in arrays:
        meta.append((tuple(array.shape), array.dtype.str, offset))
        offset += -(-array.nbytes // _PACK_ALIGN) * _PACK_ALIGN
    shm = _create_pack_block(max(offset, 1))
    for array, (shape, dtype, start) in zip(arrays, meta):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf,
                          offset=start)
        view[...] = array
    handle = SharedPackHandle(name=shm.name, size=max(offset, 1),
                              meta=tuple(meta))
    shm.close()              # unmap only; the segment lives until unlinked
    return handle


class PackLease:
    """Keeps a mapped result pack alive until its views are consumed.

    The segment is unlinked the moment the lease exists (no ``/dev/shm``
    entry can leak); :meth:`release` additionally unmaps it.  If a view is
    still referenced at release time the unmap is deferred to garbage
    collection — harmless, since the name is already gone.
    """

    def __init__(self, shm):
        self._shm = shm

    def release(self) -> None:
        """Unmap the pack; views must not be dereferenced afterwards."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        with _tracker_silenced():
            try:
                shm.close()
            except BufferError:   # pragma: no cover - view still exported
                pass


def map_result_pack(handle: SharedPackHandle):
    """Zero-copy views of a :func:`share_result_pack` block + its lease.

    The block is unlinked immediately (consume-once semantics, nothing left
    behind in ``/dev/shm``); the returned :class:`PackLease` keeps the
    mapping alive while the caller reads the views.
    """
    with _tracker_silenced():
        shm = shared_memory.SharedMemory(name=handle.name)
        try:
            shm.unlink()
        except FileNotFoundError:   # pragma: no cover - already consumed
            pass
    views = [np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
             for shape, dtype, offset in handle.meta]
    return views, PackLease(shm)


def take_result_pack(handle: SharedPackHandle):
    """Copy a :func:`share_result_pack` block out and unlink it."""
    views, lease = map_result_pack(handle)
    arrays = [np.array(view) for view in views]
    del views
    lease.release()
    return arrays


def discard_result_handles(value) -> None:
    """Unlink every result-pack handle nested inside ``value``.

    Safety net for results that were produced but never consumed (an
    abandoned async token, a pool shut down with results still queued) —
    their blocks would otherwise outlive every process in ``/dev/shm``.
    """
    if isinstance(value, SharedPackHandle):
        try:
            take_result_pack(value)
        # repro: allow[EXC001,EXC002] -- consume-once race: another consumer won
        except Exception:   # pragma: no cover - already consumed
            pass
    elif isinstance(value, dict):
        for nested in value.values():
            discard_result_handles(nested)
    elif isinstance(value, (list, tuple)):
        for nested in value:
            discard_result_handles(nested)


class AttachedArray:
    """A worker-side mapping of a :class:`SharedArrayHandle`.

    Keeps the underlying :class:`~multiprocessing.shared_memory.SharedMemory`
    object alive for as long as the numpy view is used (the view borrows the
    mapping's buffer).  Never unlinks — the owner does that.
    """

    def __init__(self, handle: SharedArrayHandle):
        # Keep the tracker out of the attach: this process must neither
        # unlink the owner's segment at exit nor double-register a block
        # that several workers map (see module docstring).
        with _tracker_silenced():
            self._shm = shared_memory.SharedMemory(name=handle.name)
        self.array = np.ndarray(handle.shape, dtype=handle.dtype,
                                buffer=self._shm.buf)

    def close(self) -> None:
        """Unmap the segment (worker side; the owner keeps the block)."""
        self.array = None
        self._shm.close()
