"""Counter-based RNG streams for deterministic parallel sampling.

Parallel draws cannot share one sequential ``Generator`` — the stream order
would depend on worker scheduling.  Instead every unit of shard-local work
gets its own Philox counter stream keyed by ``(seed, shard, version,
batch_id)``:

* ``seed`` — the experiment seed,
* ``shard`` — the partition whose ego nodes are being drawn,
* ``version`` — the graph's monotonic update stamp (a stream never repeats
  across streaming updates),
* ``batch_id`` — a caller-maintained counter separating successive batches.

Philox is a counter-based generator: the key fully determines the stream,
independent of which process draws it or in which order shards are
scheduled.  The serial and shared backends draw from identical streams and
merge results in shard order, which is what makes parallel output
bit-identical to serial under a fixed seed.
"""

from __future__ import annotations

import numpy as np


def rng_stream(seed: int, shard: int, version: int,
               batch_id: int) -> np.random.Generator:
    """The Philox stream for one shard's draws of one batch."""
    sequence = np.random.SeedSequence(
        entropy=(int(seed) & 0xFFFFFFFFFFFFFFFF, int(shard), int(version),
                 int(batch_id)))
    return np.random.Generator(np.random.Philox(seed=sequence))
