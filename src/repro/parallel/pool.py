"""Persistent spawn-based worker pool executing registered shard tasks.

The pool is **fork-free**: workers are started with the ``spawn`` context,
so they never inherit the parent's (arbitrarily large) heap — everything a
task needs arrives either through its payload or through a shared-memory
handle the worker attaches to lazily on first use (and caches for the pool's
lifetime).  Tasks are referenced *by name* against the module-level
:data:`TASKS` registry (:func:`pool_task`), which keeps payloads picklable
under spawn without shipping closures.

Failure semantics:

* a task that raises propagates as :class:`WorkerTaskError` carrying the
  remote traceback,
* a worker that dies mid-batch (killed, segfault, ``os._exit``) is detected
  by the liveness poll inside the waiting ``gather``; the pool *supervises*
  the crash — completed results are salvaged off the queue, every worker is
  respawned (fresh workers re-attach shm views lazily through their
  :class:`WorkerCache`), and the in-flight tasks are resubmitted.  Tasks
  are pure functions of their payload (shard-keyed Philox streams), so a
  retried task is bit-identical to an uncrashed run,
* after ``max_task_retries`` crash recoveries the pool gives up: it marks
  itself broken and raises :class:`WorkerCrashError` — the
  :class:`~repro.parallel.engine.ParallelEngine` catches that and downgrades
  to the serial backend instead of failing the caller,
* ``shutdown()`` drains the workers with sentinels, joins them (terminating
  stragglers), closes the queues and sweeps crash-orphaned result packs
  out of ``/dev/shm``; it is idempotent and also registered via ``atexit``
  so an abandoned pool cannot leak processes or segments.

Fault injection: ``submit`` consults the armed
:class:`~repro.faults.FaultPlan` at the ``worker.crash`` site; a firing
occurrence poisons that one task, making its worker hard-exit before
running it.  Resubmissions are never poisoned — one injected crash tests
one recovery.
"""

from __future__ import annotations

import atexit
import logging
import queue as queue_module
import traceback
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults import fault_point

logger = logging.getLogger("repro.parallel")

#: Name -> task function registry; tasks take ``(payload, cache)`` where
#: ``cache`` is the per-worker :class:`WorkerCache` of shared attachments.
TASKS: Dict[str, Callable[[Any, "WorkerCache"], Any]] = {}


def pool_task(name: str):
    """Register a function as a named pool task (spawn-safe by-name lookup)."""

    def register(fn):
        TASKS[name] = fn
        return fn

    return register


class WorkerCrashError(RuntimeError):
    """A worker process died while results were outstanding."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; the message carries its traceback."""


class WorkerCache:
    """Per-worker cache of attached shared-memory views.

    Views are cached per *slot* (one slot per exported store) at exactly one
    version: when a task references a newer export of the same slot, the
    superseded view's attachments are unmapped before the new ones are
    built — a worker's memory therefore tracks the live exports, not the
    history of re-exports a long stream of graph updates produces.
    """

    def __init__(self):
        #: slot -> (version, view, [attachments])
        self._slots: Dict[Any, Any] = {}

    def view(self, slot: Any, version: Any,
             build: Callable[[Callable[[Any], Any]], Any]) -> Any:
        """The view for ``slot`` at ``version``; rebuilds on version change.

        ``build`` receives a ``track`` callback to register each
        shared-memory attachment the view depends on.
        """
        entry = self._slots.get(slot)
        if entry is not None and entry[0] == version:
            return entry[1]
        if entry is not None:
            self._release(entry[2])
        attachments: List[Any] = []

        def track(attachment):
            attachments.append(attachment)
            return attachment

        view = build(track)
        self._slots[slot] = (version, view, attachments)
        return view

    @staticmethod
    def _release(attachments: List[Any]) -> None:
        for attachment in attachments:
            try:
                attachment.close()
            # repro: allow[EXC001,EXC002] -- worker teardown must unmap every attachment
            except Exception:   # pragma: no cover - best-effort unmap
                pass

    def close(self) -> None:
        """Unmap every attachment (worker exit)."""
        for _, _, attachments in self._slots.values():
            self._release(attachments)
        self._slots.clear()


#: Exit code of a worker killed by an injected ``worker.crash`` fault.
POISON_EXIT_CODE = 77


def _worker_main(task_queue, result_queue, pack_prefix: str) -> None:
    """Worker loop: execute named tasks until the ``None`` sentinel arrives."""
    # Importing the task module registers every named task in TASKS.
    import repro.parallel.tasks   # noqa: F401
    from repro.parallel.shm import set_pack_prefix

    # Result packs carry the pool's prefix so the parent can sweep any
    # block this process orphans by dying before its handle is consumed.
    set_pack_prefix(pack_prefix)
    cache = WorkerCache()
    try:
        while True:
            item = task_queue.get()
            if item is None:
                break
            ticket, name, payload, poison = item
            if poison:
                import os
                os._exit(POISON_EXIT_CODE)   # injected worker.crash fault
            try:
                fn = TASKS[name]
                result_queue.put((ticket, True, fn(payload, cache)))
            # repro: allow[EXC002] -- the remote traceback is re-raised
            # parent-side as WorkerTaskError; nothing is swallowed
            except BaseException:
                result_queue.put((ticket, False, traceback.format_exc()))
    finally:
        cache.close()


@dataclass
class PoolStats:
    """Supervision ledger: what the pool survived (chaos-run accounting)."""

    #: Crash events detected and recovered by respawn + resubmit.
    crashes_recovered: int = 0
    #: Worker processes started to replace dead ones.
    workers_respawned: int = 0
    #: In-flight tasks resubmitted after a crash.
    tasks_resubmitted: int = 0
    #: Tasks poisoned by an injected ``worker.crash`` fault.
    faults_injected: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-able form for the chaos CLI report."""
        return {"crashes_recovered": self.crashes_recovered,
                "workers_respawned": self.workers_respawned,
                "tasks_resubmitted": self.tasks_resubmitted,
                "faults_injected": self.faults_injected}


class WorkerPool:
    """A fixed set of persistent spawn workers consuming a shared task queue."""

    def __init__(self, num_workers: int, poll_seconds: float = 0.2,
                 max_task_retries: int = 2):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        import multiprocessing as mp

        self.num_workers = int(num_workers)
        self._poll_seconds = float(poll_seconds)
        #: Crash recoveries allowed before the pool declares itself broken.
        self.max_task_retries = int(max_task_retries)
        self._context = mp.get_context("spawn")
        self._tasks = None
        self._results = None
        self._workers: List[Any] = []
        self._next_ticket = 0
        self._done: Dict[int, Any] = {}
        #: ticket -> remote traceback of a failed task drained mid-recovery.
        self._failures: Dict[int, str] = {}
        #: ticket -> (name, payload) for every submitted-but-unfinished task;
        #: the resubmission source after a crash.
        self._inflight: Dict[int, Tuple[str, Any]] = {}
        self._broken: Optional[str] = None
        self._closed = False
        #: Kernel-name prefix of this pool's result packs (crash sweep key).
        self.pack_prefix = f"rp{uuid.uuid4().hex[:10]}"
        #: Supervision accounting for this pool's lifetime.
        self.stats = PoolStats()
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """True once the worker processes exist (first submit starts them)."""
        return bool(self._workers)

    @property
    def num_slots(self) -> int:
        """Parallel slots available (the executor-interface view of size)."""
        return self.num_workers

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("pool already shut down")
        if self._broken:
            raise WorkerCrashError(self._broken)
        if self._workers:
            return
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        """Start ``num_workers`` fresh processes on the current queues."""
        for _ in range(self.num_workers):
            worker = self._context.Process(
                target=_worker_main,
                args=(self._tasks, self._results, self.pack_prefix),
                daemon=True)
            worker.start()
            self._workers.append(worker)

    def shutdown(self) -> None:
        """Stop the workers and release the queues; idempotent."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.shutdown)
        if self._workers:
            alive = any(worker.is_alive() for worker in self._workers)
            if alive and not self._broken:
                for _ in self._workers:
                    try:
                        self._tasks.put(None)
                    except (OSError, ValueError):  # pragma: no cover - torn down
                        break
            for worker in self._workers:
                worker.join(timeout=5.0)
            for worker in self._workers:
                if worker.is_alive():   # pragma: no cover - stuck worker
                    worker.terminate()
                    worker.join(timeout=1.0)
        self._drain_unconsumed_results()
        self._close_queues()
        self._workers = []
        self._inflight.clear()
        self._sweep_packs()

    def _close_queues(self) -> None:
        for q in (self._tasks, self._results):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._tasks = None
        self._results = None

    def _sweep_packs(self) -> None:
        """Unlink result packs orphaned by dead workers (satellite of crash
        recovery: a worker that dies after creating a consume-once pack but
        before its handle reaches the parent leaves a ``/dev/shm`` block no
        drain can see)."""
        from repro.parallel.shm import sweep_leaked_packs

        swept = sweep_leaked_packs(self.pack_prefix)
        if swept:
            logger.warning("swept %d leaked result pack(s) under prefix %s",
                           swept, self.pack_prefix)

    def _drain_unconsumed_results(self) -> None:
        """Release shm blocks of results nobody gathered (no /dev/shm leaks)."""
        from repro.parallel.shm import discard_result_handles

        for value in self._done.values():
            discard_result_handles(value)
        self._done.clear()
        if self._results is None:
            return
        while True:
            try:
                _, ok, value = self._results.get_nowait()
            except (queue_module.Empty, OSError, ValueError, EOFError):
                break
            if ok:
                discard_result_handles(value)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def submit(self, name: str, payload: Any) -> int:
        """Queue one named task; returns the ticket to :meth:`gather` on.

        Consults the armed fault plan at ``worker.crash``: a firing
        occurrence poisons this one task, so the worker that picks it up
        hard-exits before running it (the supervised-crash drill).
        """
        if name not in TASKS:
            raise KeyError(f"unknown pool task {name!r}")
        self._ensure_started()
        ticket = self._next_ticket
        self._next_ticket += 1
        poison = fault_point("worker.crash")
        if poison:
            self.stats.faults_injected += 1
        self._inflight[ticket] = (name, payload)
        self._tasks.put((ticket, name, payload, poison))
        return ticket

    def _record_result(self, ticket: int, ok: bool, value: Any) -> None:
        self._inflight.pop(ticket, None)
        if ok:
            self._done[ticket] = value
        else:
            self._failures[ticket] = value

    def _salvage_queued_results(self) -> None:
        """Drain already-produced results off the queue without blocking."""
        while True:
            try:
                ticket, ok, value = self._results.get_nowait()
            except (queue_module.Empty, OSError, ValueError, EOFError):
                return
            self._record_result(ticket, ok, value)

    def _recover_from_crash(self, dead: List[Any],
                            outstanding_hint: int) -> None:
        """Supervise a detected crash: salvage, respawn, resubmit — or give up.

        Recovery is bounded by ``max_task_retries``; past that the pool
        marks itself broken and raises, letting the engine downgrade to
        the serial backend.
        """
        detail = (f"{len(dead)} worker(s) exited with code(s) "
                  f"{[w.exitcode for w in dead]} while "
                  f"{outstanding_hint} result(s) were outstanding")
        self._salvage_queued_results()
        if self.stats.crashes_recovered >= self.max_task_retries:
            self._broken = detail + (
                f" (after {self.stats.crashes_recovered} earlier recoveries)")
            raise WorkerCrashError(self._broken)
        # Tear everything down: tasks the dead worker dequeued are gone, and
        # the shared queues cannot distinguish them from queued-but-untaken
        # ones, so every surviving worker restarts on fresh queues and the
        # whole in-flight set is resubmitted.  Tasks draw from shard-keyed
        # Philox streams, so the retried results are bit-identical.
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        self._close_queues()
        # No pack sweep here: salvaged results in ``_done`` still reference
        # their consume-once packs; orphans are swept at shutdown instead.
        retry = sorted(self._inflight)
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._spawn_workers()
        for ticket in retry:
            name, payload = self._inflight[ticket]
            self._tasks.put((ticket, name, payload, False))
        self.stats.crashes_recovered += 1
        self.stats.workers_respawned += self.num_workers
        self.stats.tasks_resubmitted += len(retry)
        logger.warning(
            "worker crash recovered (%s): respawned %d worker(s), "
            "resubmitted %d in-flight task(s)",
            detail, self.num_workers, len(retry))

    def gather(self, tickets: Sequence[int]) -> List[Any]:
        """Collect results for ``tickets`` in order (blocking, crash-aware).

        A worker death detected while waiting triggers supervised recovery
        (respawn + resubmit, see :meth:`_recover_from_crash`); only after
        ``max_task_retries`` recoveries does the crash surface as
        :class:`WorkerCrashError`.
        """
        outstanding = {t for t in tickets if t not in self._done}
        while outstanding:
            if self._broken:
                raise WorkerCrashError(self._broken)
            failed = outstanding & set(self._failures)
            if failed:
                raise WorkerTaskError(
                    f"pool task failed in worker:\n"
                    f"{self._failures.pop(min(failed))}")
            try:
                ticket, ok, value = self._results.get(
                    timeout=self._poll_seconds)
            except queue_module.Empty:
                dead = [w for w in self._workers if not w.is_alive()]
                if dead:
                    self._recover_from_crash(dead, len(outstanding))
                continue
            if not ok:
                self._record_result(ticket, False, value)
                raise WorkerTaskError(
                    f"pool task failed in worker:\n"
                    f"{self._failures.pop(ticket)}")
            self._record_result(ticket, True, value)
            outstanding.discard(ticket)
        return [self._done.pop(ticket) for ticket in tickets]

    def map(self, name: str, payloads: Sequence[Any]) -> List[Any]:
        """Run one named task per payload; results come back in order."""
        tickets = [self.submit(name, payload) for payload in payloads]
        return self.gather(tickets)
