"""Persistent spawn-based worker pool executing registered shard tasks.

The pool is **fork-free**: workers are started with the ``spawn`` context,
so they never inherit the parent's (arbitrarily large) heap — everything a
task needs arrives either through its payload or through a shared-memory
handle the worker attaches to lazily on first use (and caches for the pool's
lifetime).  Tasks are referenced *by name* against the module-level
:data:`TASKS` registry (:func:`pool_task`), which keeps payloads picklable
under spawn without shipping closures.

Failure semantics:

* a task that raises propagates as :class:`WorkerTaskError` carrying the
  remote traceback,
* a worker that dies mid-batch (killed, segfault, ``os._exit``) raises
  :class:`WorkerCrashError` at the waiting ``gather`` instead of hanging —
  the pool polls worker liveness while draining the result queue,
* ``shutdown()`` drains the workers with sentinels, joins them (terminating
  stragglers) and closes the queues; it is idempotent and also registered
  via ``atexit`` so an abandoned pool cannot leak processes.
"""

from __future__ import annotations

import atexit
import queue as queue_module
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Name -> task function registry; tasks take ``(payload, cache)`` where
#: ``cache`` is the per-worker :class:`WorkerCache` of shared attachments.
TASKS: Dict[str, Callable[[Any, "WorkerCache"], Any]] = {}


def pool_task(name: str):
    """Register a function as a named pool task (spawn-safe by-name lookup)."""

    def register(fn):
        TASKS[name] = fn
        return fn

    return register


class WorkerCrashError(RuntimeError):
    """A worker process died while results were outstanding."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; the message carries its traceback."""


class WorkerCache:
    """Per-worker cache of attached shared-memory views.

    Views are cached per *slot* (one slot per exported store) at exactly one
    version: when a task references a newer export of the same slot, the
    superseded view's attachments are unmapped before the new ones are
    built — a worker's memory therefore tracks the live exports, not the
    history of re-exports a long stream of graph updates produces.
    """

    def __init__(self):
        #: slot -> (version, view, [attachments])
        self._slots: Dict[Any, Any] = {}

    def view(self, slot: Any, version: Any,
             build: Callable[[Callable[[Any], Any]], Any]) -> Any:
        """The view for ``slot`` at ``version``; rebuilds on version change.

        ``build`` receives a ``track`` callback to register each
        shared-memory attachment the view depends on.
        """
        entry = self._slots.get(slot)
        if entry is not None and entry[0] == version:
            return entry[1]
        if entry is not None:
            self._release(entry[2])
        attachments: List[Any] = []

        def track(attachment):
            attachments.append(attachment)
            return attachment

        view = build(track)
        self._slots[slot] = (version, view, attachments)
        return view

    @staticmethod
    def _release(attachments: List[Any]) -> None:
        for attachment in attachments:
            try:
                attachment.close()
            # repro: allow[EXC001] -- worker teardown must unmap every attachment
            except Exception:   # pragma: no cover - best-effort unmap
                pass

    def close(self) -> None:
        """Unmap every attachment (worker exit)."""
        for _, _, attachments in self._slots.values():
            self._release(attachments)
        self._slots.clear()


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: execute named tasks until the ``None`` sentinel arrives."""
    # Importing the task module registers every named task in TASKS.
    import repro.parallel.tasks   # noqa: F401

    cache = WorkerCache()
    try:
        while True:
            item = task_queue.get()
            if item is None:
                break
            ticket, name, payload = item
            try:
                fn = TASKS[name]
                result_queue.put((ticket, True, fn(payload, cache)))
            except BaseException:
                result_queue.put((ticket, False, traceback.format_exc()))
    finally:
        cache.close()


class WorkerPool:
    """A fixed set of persistent spawn workers consuming a shared task queue."""

    def __init__(self, num_workers: int, poll_seconds: float = 0.2):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        import multiprocessing as mp

        self.num_workers = int(num_workers)
        self._poll_seconds = float(poll_seconds)
        self._context = mp.get_context("spawn")
        self._tasks = None
        self._results = None
        self._workers: List[Any] = []
        self._next_ticket = 0
        self._done: Dict[int, Any] = {}
        self._broken: Optional[str] = None
        self._closed = False
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """True once the worker processes exist (first submit starts them)."""
        return bool(self._workers)

    @property
    def num_slots(self) -> int:
        """Parallel slots available (the executor-interface view of size)."""
        return self.num_workers

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("pool already shut down")
        if self._broken:
            raise WorkerCrashError(self._broken)
        if self._workers:
            return
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        for _ in range(self.num_workers):
            worker = self._context.Process(
                target=_worker_main, args=(self._tasks, self._results),
                daemon=True)
            worker.start()
            self._workers.append(worker)

    def shutdown(self) -> None:
        """Stop the workers and release the queues; idempotent."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.shutdown)
        if self._workers:
            alive = any(worker.is_alive() for worker in self._workers)
            if alive and not self._broken:
                for _ in self._workers:
                    try:
                        self._tasks.put(None)
                    except Exception:   # pragma: no cover - queue torn down
                        break
            for worker in self._workers:
                worker.join(timeout=5.0)
            for worker in self._workers:
                if worker.is_alive():   # pragma: no cover - stuck worker
                    worker.terminate()
                    worker.join(timeout=1.0)
        self._drain_unconsumed_results()
        for q in (self._tasks, self._results):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._workers = []

    def _drain_unconsumed_results(self) -> None:
        """Release shm blocks of results nobody gathered (no /dev/shm leaks)."""
        from repro.parallel.shm import discard_result_handles

        for value in self._done.values():
            discard_result_handles(value)
        self._done.clear()
        if self._results is None:
            return
        while True:
            try:
                _, ok, value = self._results.get_nowait()
            except Exception:
                break
            if ok:
                discard_result_handles(value)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def submit(self, name: str, payload: Any) -> int:
        """Queue one named task; returns the ticket to :meth:`gather` on."""
        if name not in TASKS:
            raise KeyError(f"unknown pool task {name!r}")
        self._ensure_started()
        ticket = self._next_ticket
        self._next_ticket += 1
        self._tasks.put((ticket, name, payload))
        return ticket

    def gather(self, tickets: Sequence[int]) -> List[Any]:
        """Collect results for ``tickets`` in order (blocking, crash-aware)."""
        outstanding = {t for t in tickets if t not in self._done}
        while outstanding:
            if self._broken:
                raise WorkerCrashError(self._broken)
            try:
                ticket, ok, value = self._results.get(
                    timeout=self._poll_seconds)
            except queue_module.Empty:
                dead = [w for w in self._workers if not w.is_alive()]
                if dead:
                    self._broken = (
                        f"{len(dead)} worker(s) exited with code(s) "
                        f"{[w.exitcode for w in dead]} while "
                        f"{len(outstanding)} result(s) were outstanding")
                    raise WorkerCrashError(self._broken)
                continue
            if not ok:
                raise WorkerTaskError(
                    f"pool task failed in worker:\n{value}")
            self._done[ticket] = value
            outstanding.discard(ticket)
        return [self._done.pop(ticket) for ticket in tickets]

    def map(self, name: str, payloads: Sequence[Any]) -> List[Any]:
        """Run one named task per payload; results come back in order."""
        tickets = [self.submit(name, payload) for payload in payloads]
        return self.gather(tickets)
