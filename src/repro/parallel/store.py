"""Shared-memory exports of the graph and ANN state, plus worker-side views.

:class:`SharedGraphStore` snapshots exactly the state the sampling engine
reads — every node type's union CSR (``indptr`` / ``indices`` / ``weights`` /
``rel_local``) and its :class:`~repro.graph.alias.BatchedAliasTable` buffers
(``prob`` / ``alias``) — into shared-memory blocks.  Workers rebuild
zero-copy :class:`~repro.graph.hetero_graph.TypedAdjacency` /
``BatchedAliasTable`` objects over those blocks (no pickling of the graph,
no per-task copies), so shard-local sampling in a worker runs the very same
code, over the very same bytes, as the in-process engine.

:class:`SharedIndexStore` does the same for the serving-side ANN state
(:class:`~repro.serving.ann.ExactIndex`, :class:`~repro.serving.ann.IVFIndex`
or a :class:`~repro.serving.sharding.ShardedIndex` of either).

Both stores own their blocks: ``close()`` unlinks every segment.  Handles
are small picklable dataclasses; attachment happens lazily per worker and
is cached per export *slot* at one version — when a streaming update bumps
the version and the engine re-exports, a worker's next task attaches the
fresh blocks and unmaps the superseded ones, so worker memory tracks the
live exports rather than the re-export history.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.alias import BatchedAliasTable
from repro.graph.hetero_graph import HeteroGraph, TypedAdjacency
from repro.graph.schema import RelationSpec
from repro.parallel.shm import AttachedArray, SharedArray, SharedArrayHandle
from repro.serving.ann import ExactIndex, IVFIndex
from repro.serving.sharding import ShardedIndex


# ---------------------------------------------------------------------- #
# Graph export
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedAdjacencyHandle:
    """Shared blocks of one node type's union CSR + alias buffers."""

    num_src: int
    specs: Tuple[RelationSpec, ...]
    indptr: SharedArrayHandle
    indices: SharedArrayHandle
    weights: SharedArrayHandle
    rel_local: SharedArrayHandle
    prob: SharedArrayHandle
    alias: SharedArrayHandle


@dataclass(frozen=True)
class SharedGraphHandle:
    """Everything a worker needs to re-map the sampling state of a graph.

    ``slot`` names the logical export (stable across re-exports of the same
    graph); ``store_id``/``version`` identify one concrete snapshot.  A
    worker caches one view per slot and evicts the superseded one when the
    version moves.
    """

    store_id: str
    slot: str
    version: int
    node_types: Tuple[str, ...]
    specs: Tuple[RelationSpec, ...]
    num_nodes: Tuple[Tuple[str, int], ...]
    adjacency: Tuple[Tuple[str, SharedAdjacencyHandle], ...]


class _ViewSchema:
    """Minimal schema stand-in: the node-type order the expansion loop uses."""

    def __init__(self, node_types):
        self.node_types = list(node_types)


class SharedGraphView:
    """Worker-side graph facade over attached shared-memory adjacency."""

    def __init__(self, handle: SharedGraphHandle,
                 adjacency: Dict[str, TypedAdjacency]):
        self.schema = _ViewSchema(handle.node_types)
        self.num_nodes = dict(handle.num_nodes)
        self.version = handle.version
        self._spec_list = list(handle.specs)
        self._adjacency = adjacency

    @property
    def spec_list(self) -> List[RelationSpec]:
        """Relations in the owning graph's registration order."""
        return self._spec_list

    def typed_adjacency(self, node_type: str) -> TypedAdjacency:
        """The shared union adjacency of one node type."""
        return self._adjacency[node_type]


def _shared_alias_table(indptr: np.ndarray, prob: np.ndarray,
                        alias: np.ndarray, num_rows: int) -> BatchedAliasTable:
    """A ``BatchedAliasTable`` over already-built (shared) buffers."""
    table = object.__new__(BatchedAliasTable)
    table.indptr = indptr
    table.num_rows = num_rows
    table._prob = prob
    table._alias = alias
    return table


class SharedGraphStore:
    """Owner-side shared-memory snapshot of a graph's sampling state."""

    def __init__(self, graph: HeteroGraph, slot: str = ""):
        self._arrays: List[SharedArray] = []
        self._closed = False
        store_id = uuid.uuid4().hex
        adjacency = []
        for node_type in graph.schema.node_types:
            adj = graph.typed_adjacency(node_type)
            table = adj.alias_sampler()
            adjacency.append((node_type, SharedAdjacencyHandle(
                num_src=adj.num_src,
                specs=tuple(adj.specs),
                indptr=self._share(adj.indptr),
                indices=self._share(adj.indices),
                weights=self._share(adj.weights),
                rel_local=self._share(adj.rel_local),
                prob=self._share(table._prob),
                alias=self._share(table._alias))))
        self.handle = SharedGraphHandle(
            store_id=store_id,
            slot=slot or store_id,
            version=int(getattr(graph, "version", 0)),
            node_types=tuple(graph.schema.node_types),
            specs=tuple(graph.spec_list),
            num_nodes=tuple(graph.num_nodes.items()),
            adjacency=tuple(adjacency))

    def _share(self, array: np.ndarray) -> SharedArrayHandle:
        shared = SharedArray(array)
        self._arrays.append(shared)
        return shared.handle

    @property
    def block_names(self) -> List[str]:
        """Kernel names of every owned segment (``/dev/shm`` leak checks)."""
        return [shared.name for shared in self._arrays]

    def close(self) -> None:
        """Unlink every owned segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shared in self._arrays:
            shared.close()

    def __del__(self):   # pragma: no cover - GC safety net
        try:
            self.close()
        # repro: allow[EXC001,EXC002] -- __del__ GC safety net must never raise
        except Exception:
            pass


def attach_graph_view(handle: SharedGraphHandle, cache) -> SharedGraphView:
    """Map a :class:`SharedGraphHandle` into this process.

    Cached per export slot at one version — attaching a newer version of
    the same slot unmaps the superseded view's attachments first.
    """

    def build(track) -> SharedGraphView:
        adjacency: Dict[str, TypedAdjacency] = {}
        for node_type, ah in handle.adjacency:
            adj = object.__new__(TypedAdjacency)
            adj.specs = list(ah.specs)
            adj.num_src = ah.num_src
            adj.indptr = track(AttachedArray(ah.indptr)).array
            adj.indices = track(AttachedArray(ah.indices)).array
            adj.weights = track(AttachedArray(ah.weights)).array
            adj.rel_local = track(AttachedArray(ah.rel_local)).array
            adj._alias_batch = _shared_alias_table(
                adj.indptr,
                track(AttachedArray(ah.prob)).array,
                track(AttachedArray(ah.alias)).array,
                ah.num_src)
            adjacency[node_type] = adj
        return SharedGraphView(handle, adjacency)

    return cache.view(("graph", handle.slot),
                      (handle.store_id, handle.version), build)


# ---------------------------------------------------------------------- #
# ANN index export
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedExactHandle:
    """Shared blocks of an :class:`ExactIndex`."""

    embeddings: SharedArrayHandle
    ids: SharedArrayHandle


@dataclass(frozen=True)
class SharedIVFHandle:
    """Shared blocks of an :class:`IVFIndex` (cells stored CSR-style)."""

    embeddings: SharedArrayHandle
    ids: SharedArrayHandle
    centroids: SharedArrayHandle
    cell_indptr: SharedArrayHandle
    cell_members: SharedArrayHandle
    num_cells: int
    nprobe: int


@dataclass(frozen=True)
class SharedShardedHandle:
    """A sharded index: one sub-handle per shard plus the merge metadata."""

    shards: Tuple[object, ...]
    num_shards: int
    num_items: int
    shard_sizes: Tuple[int, ...]


@dataclass(frozen=True)
class SharedIndexHandle:
    """Top-level picklable ANN handle (exact / ivf / sharded).

    ``slot`` plays the same role as on :class:`SharedGraphHandle`: workers
    keep one cached view per slot and evict it when ``version`` moves
    (every :meth:`OnlineServer.refresh` swap bumps it).
    """

    store_id: str
    slot: str
    version: int
    inner: object


class SharedIndexStore:
    """Owner-side shared-memory export of a serving ANN index."""

    def __init__(self, index, version: int = 0, slot: str = ""):
        self._arrays: List[SharedArray] = []
        self._closed = False
        store_id = uuid.uuid4().hex
        self.handle = SharedIndexHandle(store_id=store_id,
                                        slot=slot or store_id,
                                        version=int(version),
                                        inner=self._export(index))

    def _share(self, array: np.ndarray) -> SharedArrayHandle:
        shared = SharedArray(array)
        self._arrays.append(shared)
        return shared.handle

    def _export(self, index):
        if isinstance(index, ShardedIndex):
            return SharedShardedHandle(
                shards=tuple(self._export(shard) for shard in index.shards),
                num_shards=index.num_shards,
                num_items=len(index),
                shard_sizes=tuple(index.shard_sizes))
        if isinstance(index, IVFIndex):
            if index.centroids is None:
                raise RuntimeError("cannot export an unbuilt IVFIndex")
            cells = index._cells
            cell_indptr = np.concatenate(
                ([0], np.cumsum([members.size for members in cells])))
            cell_members = (np.concatenate(cells) if cells
                            else np.empty(0, dtype=np.int64))
            return SharedIVFHandle(
                embeddings=self._share(index.embeddings),
                ids=self._share(index.ids),
                centroids=self._share(index.centroids),
                cell_indptr=self._share(cell_indptr.astype(np.int64)),
                cell_members=self._share(cell_members.astype(np.int64)),
                num_cells=index.num_cells,
                nprobe=index.nprobe)
        if isinstance(index, ExactIndex):
            return SharedExactHandle(embeddings=self._share(index.embeddings),
                                     ids=self._share(index.ids))
        raise TypeError(f"cannot export index of type {type(index).__name__}")

    @property
    def block_names(self) -> List[str]:
        """Kernel names of every owned segment."""
        return [shared.name for shared in self._arrays]

    def close(self) -> None:
        """Unlink every owned segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shared in self._arrays:
            shared.close()

    def __del__(self):   # pragma: no cover - GC safety net
        try:
            self.close()
        # repro: allow[EXC001,EXC002] -- __del__ GC safety net must never raise
        except Exception:
            pass


def _attach_index(inner, track):
    if isinstance(inner, SharedShardedHandle):
        sharded = object.__new__(ShardedIndex)
        sharded.num_shards = inner.num_shards
        sharded.index_factory = None
        sharded.shards = [_attach_index(shard, track)
                          for shard in inner.shards]
        sharded.dtype = (sharded.shards[0].dtype if sharded.shards
                         else np.dtype(np.float64))
        sharded._shard_sizes = list(inner.shard_sizes)
        sharded._num_items = inner.num_items
        return sharded
    if isinstance(inner, SharedIVFHandle):
        index = object.__new__(IVFIndex)
        index.num_cells = inner.num_cells
        index.nprobe = inner.nprobe
        index.kmeans_iterations = 0
        index._seed = 0
        index._rng = None
        index.dtype = np.dtype(inner.embeddings.dtype)
        index.embeddings = track(AttachedArray(inner.embeddings)).array
        index.ids = track(AttachedArray(inner.ids)).array
        index.centroids = track(AttachedArray(inner.centroids)).array
        cell_indptr = track(AttachedArray(inner.cell_indptr)).array
        cell_members = track(AttachedArray(inner.cell_members)).array
        index._cells = [cell_members[cell_indptr[c]:cell_indptr[c + 1]]
                        for c in range(cell_indptr.size - 1)]
        return index
    if isinstance(inner, SharedExactHandle):
        index = object.__new__(ExactIndex)
        index.dtype = np.dtype(inner.embeddings.dtype)
        index.embeddings = track(AttachedArray(inner.embeddings)).array
        index.ids = track(AttachedArray(inner.ids)).array
        return index
    raise TypeError(f"cannot attach index handle {type(inner).__name__}")


def attach_index_view(handle: SharedIndexHandle, cache):
    """Map a :class:`SharedIndexHandle` into this process (slot-cached)."""
    return cache.view(("index", handle.slot),
                      (handle.store_id, handle.version),
                      lambda track: _attach_index(handle.inner, track))


class LocalCache:
    """In-process stand-in for the worker cache (serial backend, tests)."""

    def __init__(self):
        self._slots: Dict[object, object] = {}

    def view(self, slot, version, build):
        """The view for ``slot`` at ``version``; rebuilds on version change."""
        entry = self._slots.get(slot)
        if entry is not None and entry[0] == version:
            return entry[1]
        view = build(lambda attachment: attachment)
        self._slots[slot] = (version, view)
        return view

    def close(self) -> None:
        """Drop cached views."""
        self._slots.clear()


__all__ = [
    "SharedGraphStore", "SharedGraphHandle", "SharedGraphView",
    "SharedIndexStore", "SharedIndexHandle", "attach_graph_view",
    "attach_index_view", "LocalCache",
]
