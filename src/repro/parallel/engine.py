"""The multi-core execution engine: shard-keyed work over shared memory.

:class:`ParallelEngine` is the one object the graph, training, serving and
streaming layers talk to.  It owns

* a :class:`~repro.parallel.store.SharedGraphStore` snapshot of the graph's
  sampling state (``backend="shared"`` only; re-exported when the graph's
  version stamp moves),
* a persistent spawn-based :class:`~repro.parallel.pool.WorkerPool`
  (``backend="shared"``), and
* the :class:`~repro.graph.partition.HashPartitioner` that keys every unit
  of work to a shard.

**Determinism contract.**  Work is split by *shard*, never by worker: ego
nodes are partitioned with the stable hash partitioner and each shard's
draws come from a Philox stream keyed by ``(seed, shard, graph version,
batch_id)`` (:func:`~repro.parallel.rng.rng_stream`); results are merged in
shard order.  Scheduling therefore cannot influence any output bit:
``backend="serial"`` (same shard tasks, run in-process) and
``backend="shared"`` with any worker count produce identical arrays under a
fixed seed — pinned by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import logging
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.batch import SubgraphBatch, SubgraphLayer, sequence_from
from repro.graph.partition import HashPartitioner
from repro.parallel.pool import TASKS, WorkerCrashError, WorkerPool
from repro.parallel.shm import map_result_pack
from repro.parallel.store import (
    LocalCache,
    SharedGraphStore,
    SharedIndexStore,
)
from repro.parallel.tasks import sample_shard_impl

logger = logging.getLogger("repro.parallel")


def _unpack_shard_result(result, leases):
    """Zero-copy views of a worker's shard layers (shm-transported when
    large); the mapping's lease is appended to ``leases``."""
    if isinstance(result, dict):
        views, lease = map_result_pack(result["shm_pack"])
        leases.append(lease)
        return [tuple(views[4 * layer:4 * layer + 4])
                for layer in range(result["num_layers"])]
    return result


#: The backends an engine (and ``ParallelSpec``) accepts.
BACKENDS = ("serial", "shared")

#: Default shard count of the work plan.  Deliberately *independent of the
#: worker count*: the shard plan (and with it every Philox stream key and
#: every serving row partition) must not change when the same spec runs
#: with a different ``num_workers``, or results would differ across
#: machines.  16 gives enough task granularity for the worker counts a
#: single host realistically runs.
DEFAULT_NUM_SHARDS = 16


class SerialExecutor:
    """In-process executor with the pool's ``map`` interface.

    Runs the very same registered task functions the workers run, in task
    order, against a process-local cache — the ``backend="serial"``
    reference every shared-backend result is equivalence-tested against.
    """

    def __init__(self, num_slots: int = 1):
        self.num_slots = max(1, int(num_slots))
        self._cache = LocalCache()

    def map(self, name: str, payloads: Sequence[Any]) -> List[Any]:
        """Execute one named task per payload, in order."""
        fn = TASKS[name]
        return [fn(payload, self._cache) for payload in payloads]


class _PendingSample:
    """Token for an in-flight :meth:`ParallelEngine.sample_subgraph_batch_async`."""

    def __init__(self, ego_type: str, egos: np.ndarray,
                 shard_positions: List[np.ndarray],
                 tickets: Optional[List[int]],
                 results: Optional[List[Any]],
                 payloads: Optional[List[Dict[str, Any]]] = None):
        self.ego_type = ego_type
        self.egos = egos
        self.shard_positions = shard_positions
        self.tickets = tickets
        self.results = results
        #: The shard payloads, kept so a pool downgrade can recompute the
        #: very same draws serially (bit-identical: streams are keyed by
        #: the payload, not by who executes it).
        self.payloads = payloads


class _FailoverExecutor:
    """The ``map``-style executor handle the engine gives other layers.

    A stable indirection: callers (``graph.parallel_executor``, the
    streaming rebuild fan-out) hold this object across the engine's whole
    life, so when a crashed pool is downgraded to the serial backend the
    same handle silently routes to the in-process executor — no caller
    rewiring, no dropped work.
    """

    def __init__(self, engine: "ParallelEngine"):
        self._engine = engine

    @property
    def num_slots(self) -> int:
        return self._engine._current_executor().num_slots

    def map(self, name: str, payloads: Sequence[Any]) -> List[Any]:
        engine = self._engine
        if engine._pool is None:
            return engine._serial.map(name, payloads)
        try:
            return engine._pool.map(name, payloads)
        # repro: allow[EXC002] -- this IS the supervisor: downgrade + recompute
        except WorkerCrashError as error:
            engine._downgrade_to_serial(error)
            return engine._serial.map(name, payloads)


class ParallelEngine:
    """Executes shard-local sampling, serving and rebuild work."""

    def __init__(self, graph, num_workers: int = 1, backend: str = "serial",
                 num_shards: Optional[int] = None,
                 partitioner: Optional[HashPartitioner] = None,
                 partition_seed: int = 17, max_task_retries: int = 2):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.graph = graph
        self.backend = backend
        self.num_workers = int(num_workers)
        self.partitioner = partitioner if partitioner is not None else \
            HashPartitioner(num_shards if num_shards is not None
                            else DEFAULT_NUM_SHARDS, seed=partition_seed)
        self._pool: Optional[WorkerPool] = (
            WorkerPool(self.num_workers, max_task_retries=max_task_retries)
            if backend == "shared" else None)
        self._serial = SerialExecutor(self.num_workers)
        self._failover = _FailoverExecutor(self)
        #: True once repeated worker crashes forced the serial downgrade.
        self.degraded = False
        #: Human-readable reason for the downgrade (empty while healthy).
        self.downgrade_reason = ""
        # Stable export-slot names: workers cache one view per slot and
        # evict it when a re-export bumps the version.
        self._slot = uuid.uuid4().hex
        self._graph_store: Optional[SharedGraphStore] = None
        self._index: Any = None
        self._index_store: Optional[SharedIndexStore] = None
        self._index_epoch = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def executor(self):
        """The ``map``-style executor scoped rebuilds fan out through.

        Always the same :class:`_FailoverExecutor` handle, so holders keep
        working across a crash-forced downgrade to the serial backend.
        """
        return self._failover

    def _current_executor(self):
        return self._pool if self._pool is not None else self._serial

    @property
    def pool_stats(self):
        """The pool's supervision ledger (``None`` on the serial backend)."""
        return self._pool.stats if self._pool is not None else None

    def _downgrade_to_serial(self, error: BaseException) -> None:
        """Repeated worker crashes: give up on the pool, keep the run alive.

        The serial executor runs the identical shard tasks in-process, so
        everything recomputed after the downgrade is bit-identical to what
        the pool would have produced — the caller only loses parallelism.
        """
        self.degraded = True
        self.downgrade_reason = f"worker pool downgraded to serial: {error}"
        logger.warning("%s", self.downgrade_reason)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._graph_store is not None:
            self._graph_store.close()
            self._graph_store = None
        if self._index_store is not None:
            self._index_store.close()
            self._index_store = None
        self.backend = "serial"

    @property
    def block_names(self) -> List[str]:
        """Kernel names of every shared segment this engine currently owns."""
        names: List[str] = []
        if self._graph_store is not None:
            names.extend(self._graph_store.block_names)
        if self._index_store is not None:
            names.extend(self._index_store.block_names)
        return names

    def close(self) -> None:
        """Shut the pool down and unlink every shared block; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
        if self._graph_store is not None:
            self._graph_store.close()
            self._graph_store = None
        if self._index_store is not None:
            self._index_store.close()
            self._index_store = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):   # pragma: no cover - GC safety net
        try:
            self.close()
        # repro: allow[EXC001,EXC002] -- __del__ GC safety net must never raise
        except Exception:
            pass

    def _graph_handle(self):
        """The shared snapshot's handle, re-exported if the graph moved on.

        Re-exporting closes the superseded snapshot, so callers must not
        hold un-collected sampling tokens across a graph update (the
        pipeline's stages never do: training finishes before ``ingest``).
        """
        version = int(getattr(self.graph, "version", 0))
        if self._graph_store is not None \
                and self._graph_store.handle.version != version:
            self._graph_store.close()
            self._graph_store = None
        if self._graph_store is None:
            self._graph_store = SharedGraphStore(self.graph,
                                                 slot=self._slot + "/graph")
        return self._graph_store.handle

    # ------------------------------------------------------------------ #
    # Training-side sampling
    # ------------------------------------------------------------------ #
    def sample_subgraph_batch(self, ego_type: str, ego_ids: Sequence[int],
                              fanouts: Sequence[int], *, seed: int,
                              batch_id: int, weighted: bool = True,
                              replace: bool = False) -> SubgraphBatch:
        """Expand fanout trees for a batch of egos across the shards.

        Bit-identical for both backends and any worker count: draws are
        keyed per ``(seed, shard, graph version, batch_id)`` and merged in
        shard order (see the module docstring's determinism contract).
        """
        pending = self.sample_subgraph_batch_async(
            ego_type, ego_ids, fanouts, seed=seed, batch_id=batch_id,
            weighted=weighted, replace=replace)
        return self.collect(pending)

    def sample_subgraph_batch_async(self, ego_type: str,
                                    ego_ids: Sequence[int],
                                    fanouts: Sequence[int], *, seed: int,
                                    batch_id: int, weighted: bool = True,
                                    replace: bool = False) -> _PendingSample:
        """Submit the shard draws and return a token for :meth:`collect`.

        With the shared backend the draws overlap whatever the caller does
        next (the presampling dataloader overlaps the training step this
        way); the serial backend computes eagerly so both backends consume
        identical stream keys.
        """
        egos = sequence_from(ego_ids)
        version = int(getattr(self.graph, "version", 0))
        shards = self.partitioner.shard_of_batch(ego_type, egos) \
            if egos.size else np.empty(0, dtype=np.int64)
        shard_positions: List[np.ndarray] = []
        payloads: List[Dict[str, Any]] = []
        for shard in np.unique(shards):
            positions = np.nonzero(shards == shard)[0]
            shard_positions.append(positions)
            payloads.append({
                "ego_type": ego_type, "ego_ids": egos[positions],
                "fanouts": tuple(int(k) for k in fanouts),
                "weighted": bool(weighted), "replace": bool(replace),
                "seed": int(seed), "shard": int(shard),
                "version": version, "batch_id": int(batch_id)})
        if self._pool is not None:
            handle = self._graph_handle()
            tickets = []
            for payload in payloads:
                payload["graph"] = handle
                tickets.append(self._pool.submit("sample_subgraph_shard",
                                                 payload))
            return _PendingSample(ego_type, egos, shard_positions, tickets,
                                  None, payloads)
        results = [sample_shard_impl(self.graph, payload)
                   for payload in payloads]
        return _PendingSample(ego_type, egos, shard_positions, None, results)

    def collect(self, pending: _PendingSample) -> SubgraphBatch:
        """Wait for a pending sample's shards and merge them in shard order.

        Shared-backend results arrive as shm-pack views; the merge's
        concatenate is the only parent-side copy, after which the packs are
        released.  A pool that exhausted its crash retries while this
        sample was in flight triggers the serial downgrade here, and the
        sample's own shard payloads are recomputed in-process —
        bit-identical, since the Philox streams are keyed by the payload.
        """
        leases: List[Any] = []
        if pending.results is not None:
            results = pending.results
        elif self._pool is None:
            # Token issued before a downgrade that has since happened.
            results = [sample_shard_impl(self.graph, payload)
                       for payload in pending.payloads]
        else:
            try:
                raw = self._pool.gather(pending.tickets)
            # repro: allow[EXC002] -- this IS the supervisor: downgrade + recompute
            except WorkerCrashError as error:
                self._downgrade_to_serial(error)
                raw = None
            if raw is None:
                results = [sample_shard_impl(self.graph, payload)
                           for payload in pending.payloads]
            else:
                results = [_unpack_shard_result(result, leases)
                           for result in raw]
        batch = self._merge_shards(pending.ego_type, pending.egos,
                                   pending.shard_positions, results)
        del results
        for lease in leases:
            lease.release()
        return batch

    def _merge_shards(self, ego_type: str, egos: np.ndarray,
                      shard_positions: List[np.ndarray],
                      results: List[List[Tuple[np.ndarray, ...]]]
                      ) -> SubgraphBatch:
        """Reassemble per-shard layer arrays into one :class:`SubgraphBatch`.

        Layer entries are edge lists with explicit parent pointers, so
        concatenating the shards' blocks (in shard order) only requires
        remapping parents: layer 0 parents map through each shard's ego
        positions, deeper parents shift by the preceding shards'
        previous-layer sizes.
        """
        batch = SubgraphBatch(ego_type=ego_type, ego_ids=egos,
                              specs=list(self.graph.spec_list))
        depth = max((len(layers) for layers in results), default=0)
        # Offset of each shard's entries inside the previous merged layer.
        previous_offsets = [0] * len(results)
        for level in range(depth):
            parts: List[Tuple[np.ndarray, ...]] = []
            offsets: List[int] = []
            running = 0
            for index, layers in enumerate(results):
                if level >= len(layers):
                    continue
                parents, rel_ids, node_ids, weights = layers[level]
                if level == 0:
                    parents = shard_positions[index][parents]
                else:
                    # astype first: int32-transported parents must not add
                    # the offset in 32-bit arithmetic.
                    parents = parents.astype(np.int64, copy=False) \
                        + previous_offsets[index]
                parts.append((parents, rel_ids, node_ids, weights))
                offsets.append(running)
                running += node_ids.size
            if not parts:
                break
            live = [i for i, layers in enumerate(results)
                    if level < len(layers)]
            for slot, index in enumerate(live):
                previous_offsets[index] = offsets[slot]
            # The concatenates restore int64 for int32-transported arrays;
            # values are unchanged, so backends stay bit-identical.
            batch.layers.append(SubgraphLayer(
                parents=np.concatenate([p[0] for p in parts]
                                       ).astype(np.int64, copy=False),
                rel_ids=np.concatenate([p[1] for p in parts]
                                       ).astype(np.int64, copy=False),
                node_ids=np.concatenate([p[2] for p in parts]
                                        ).astype(np.int64, copy=False),
                weights=np.concatenate([p[3] for p in parts])))
        return batch

    # ------------------------------------------------------------------ #
    # Serving-side search
    # ------------------------------------------------------------------ #
    def attach_index(self, index) -> None:
        """Adopt (and, for the shared backend, export) a serving ANN index.

        Call again after :meth:`~repro.serving.server.OnlineServer.refresh`
        swaps a fresh index in; the superseded export is unlinked.
        """
        self._index = index
        if self._pool is not None:
            if self._index_store is not None:
                self._index_store.close()
            self._index_epoch += 1
            self._index_store = SharedIndexStore(index,
                                                 version=self._index_epoch,
                                                 slot=self._slot + "/index")

    def search_batch(self, queries: np.ndarray,
                     k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Partition query rows round-robin across the shards and merge top-k.

        Row ``i`` goes to partition ``i % num_shards`` — the same
        round-robin rule the sharded serving tier uses, and deliberately
        keyed by the *shard plan* rather than the worker count so the exact
        per-partition search inputs (and with them every output bit) are
        identical no matter how many workers drain the partitions.  Per-row
        results are scattered straight back, so the merge is
        scheduling-independent.
        """
        if self._index is None:
            raise RuntimeError("no index attached; call attach_index() first")
        queries = np.asarray(queries)
        num_queries = queries.shape[0]
        if num_queries == 0:
            return self._index.search_batch(queries, k)
        num_groups = min(self.partitioner.num_shards, num_queries)
        groups = [np.arange(start, num_queries, num_groups)
                  for start in range(num_groups)]
        results = None
        if self._pool is not None:
            handle = self._index_store.handle
            payloads = [{"index": handle, "queries": queries[group], "k": k}
                        for group in groups]
            try:
                results = self._pool.map("ann_search", payloads)
            # repro: allow[EXC002] -- this IS the supervisor: downgrade + recompute
            except WorkerCrashError as error:
                self._downgrade_to_serial(error)
        if results is None:
            results = [self._index.search_batch(queries[group], k)
                       for group in groups]
        width = results[0][0].shape[1]
        ids = np.empty((num_queries, width), dtype=results[0][0].dtype)
        scores = np.empty((num_queries, width), dtype=results[0][1].dtype)
        for group, (group_ids, group_scores) in zip(groups, results):
            ids[group] = group_ids
            scores[group] = group_scores
        return ids, scores
