"""Registered worker-pool tasks (the shard-local units of parallel work).

Each task is a pure function of its payload (plus lazily attached shared
state), registered by name so the spawn-based pool can reference it without
pickling code.  The serial backend executes the *same* functions in-process
— over the live objects instead of shared-memory views — which is what makes
``backend="serial"`` and ``backend="shared"`` bit-identical by construction.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.alias import BatchedAliasTable
from repro.graph.hetero_graph import engine_sample_subgraph_batch
from repro.parallel.pool import pool_task
from repro.parallel.rng import rng_stream
from repro.parallel.shm import share_result_pack
from repro.parallel.store import attach_graph_view, attach_index_view

#: Results at least this large return through a shared-memory block instead
#: of the pipe-backed result queue (a pipe copies every byte ~4 times; a
#: block is written once by the worker and read once by the parent).
SHM_RESULT_BYTES = 1 << 18


# ---------------------------------------------------------------------- #
# Sampling
# ---------------------------------------------------------------------- #
def sample_shard_impl(graph_like, payload):
    """Expand one shard's ego nodes with its keyed Philox stream.

    Returns the layers as plain array tuples — the merge step reassembles a
    :class:`~repro.graph.batch.SubgraphBatch` in shard order.
    """
    rng = rng_stream(payload["seed"], payload["shard"], payload["version"],
                     payload["batch_id"])
    batch = engine_sample_subgraph_batch(
        graph_like, payload["ego_type"], payload["ego_ids"],
        payload["fanouts"], rng, weighted=payload["weighted"],
        replace=payload["replace"])
    return [(layer.parents, layer.rel_ids, layer.node_ids, layer.weights)
            for layer in batch.layers]


@pool_task("sample_subgraph_shard")
def _sample_subgraph_shard(payload, cache):
    view = attach_graph_view(payload["graph"], cache)
    layers = sample_shard_impl(view, payload)
    total_bytes = sum(array.nbytes for layer in layers for array in layer)
    if total_bytes >= SHM_RESULT_BYTES:
        flat = [_compact_for_transport(array)
                for layer in layers for array in layer]
        return {"shm_pack": share_result_pack(flat),
                "num_layers": len(layers)}
    return layers


def _compact_for_transport(array):
    """Downcast an int64 result array to int32 when every value fits.

    Transport-only and lossless: the merge step restores int64, so batches
    are bit-identical to the serial backend's — just 40% fewer bytes cross
    the process boundary.
    """
    if array.dtype == np.int64 and array.size \
            and -2**31 <= array.min() and array.max() < 2**31:
        return array.astype(np.int32)
    return array


# ---------------------------------------------------------------------- #
# Serving
# ---------------------------------------------------------------------- #
@pool_task("ann_search")
def _ann_search(payload, cache):
    index = attach_index_view(payload["index"], cache)
    return index.search_batch(payload["queries"], payload["k"])


# ---------------------------------------------------------------------- #
# Streaming rebuilds
# ---------------------------------------------------------------------- #
@pool_task("alias_build_rows")
def alias_build_rows(payload, cache=None):
    """Build the alias tables of a packed row chunk.

    ``payload`` carries the chunk's per-row ``degrees`` and the concatenated
    ``weights`` segments; the rows' tables are built against a local CSR of
    exactly those segments.  Alias construction is row-local, so the result
    is bit-identical to building the same rows inside the full table.
    """
    degrees = np.asarray(payload["degrees"], dtype=np.int64)
    weights = np.asarray(payload["weights"], dtype=np.float64)
    table = object.__new__(BatchedAliasTable)
    table.indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
    table.num_rows = degrees.size
    table._prob = np.ones(weights.size)
    table._alias = np.zeros(weights.size, dtype=np.int64)
    table._build_rows(np.arange(degrees.size, dtype=np.int64), weights)
    return table._prob, table._alias


@pool_task("ivf_assign_rows")
def ivf_assign_rows(payload, cache=None):
    """Assign a chunk of changed embedding rows to their nearest centroid."""
    embeddings = np.asarray(payload["embeddings"])
    centroids = np.asarray(payload["centroids"])
    # Same expression (and dtype) as the inline path in IVFIndex.rebuilt,
    # so executor-driven and inline reassignment agree bitwise.
    distances = ((embeddings[:, None, :]
                  - centroids[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


# ---------------------------------------------------------------------- #
# Lifecycle testing hooks
# ---------------------------------------------------------------------- #
@pool_task("echo")
def _echo(payload, cache=None):
    return payload


@pool_task("crash")
def _crash(payload, cache=None):   # pragma: no cover - dies by design
    os._exit(int(payload.get("code", 3)))
