"""Sampler interface and the sampled-neighborhood tree structure.

A sampler turns (graph, ego node, per-hop fanouts) into a small tree of
sampled neighbors — the ego at the root, its sampled 1-hop neighbors as
children, their sampled neighbors as grandchildren, and so on.  GNN models
aggregate these trees bottom-up, so the tree preserves exactly the
parent/child relations a K-layer convolution needs, while its size is the
sampling cost that Figs. 4(a), 10, 11 and 12 study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec


@dataclass
class SampledNode:
    """A node in a sampled-neighborhood tree."""

    node_type: str
    node_id: int
    children: List[Tuple[RelationSpec, "SampledNode", float]] = field(default_factory=list)

    def add_child(self, spec: RelationSpec, child: "SampledNode",
                  weight: float = 1.0) -> None:
        """Attach ``child`` reached via relation ``spec`` with edge weight."""
        self.children.append((spec, child, float(weight)))

    def num_nodes(self) -> int:
        """Total number of nodes in the tree (the sampling cost)."""
        return 1 + sum(child.num_nodes() for _, child, _ in self.children)

    def num_edges(self) -> int:
        """Total number of sampled edges in the tree."""
        return len(self.children) + sum(child.num_edges()
                                        for _, child, _ in self.children)

    def depth(self) -> int:
        """Depth of the tree (0 for a lone ego node)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for _, child, _ in self.children)

    def children_by_type(self) -> Dict[str, List[Tuple["SampledNode", float]]]:
        """Group children by neighbor node type: ``{type: [(child, w), ...]}``."""
        grouped: Dict[str, List[Tuple[SampledNode, float]]] = {}
        for _, child, weight in self.children:
            grouped.setdefault(child.node_type, []).append((child, weight))
        return grouped

    def iter_nodes(self) -> Iterator["SampledNode"]:
        """Yield every node in the tree (pre-order)."""
        yield self
        for _, child, _ in self.children:
            yield from child.iter_nodes()

    def node_ids_by_type(self) -> Dict[str, List[int]]:
        """All node ids in the tree grouped by type (including the ego)."""
        grouped: Dict[str, List[int]] = {}
        for node in self.iter_nodes():
            grouped.setdefault(node.node_type, []).append(node.node_id)
        return grouped


class NeighborSampler:
    """Base class for neighborhood samplers.

    Subclasses implement :meth:`select_neighbors`, which picks up to ``k``
    neighbors of a node from the union of its typed neighbor lists; the base
    class handles the recursive expansion over hops.
    """

    name = "base"

    #: Whether engine-backed presampling on this sampler's behalf should
    #: draw edge-weight-biased neighborhoods (True) or uniform ones
    #: (False).  The training dataloader reads this so pre-sampled
    #: sub-graphs match the distribution the sampler itself would draw.
    engine_weighted = True

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def sample(self, graph: HeteroGraph, ego_type: str, ego_id: int,
               fanouts: Sequence[int],
               focal_vector: Optional[np.ndarray] = None) -> SampledNode:
        """Sample a neighborhood tree rooted at ``(ego_type, ego_id)``.

        ``fanouts[h]`` is the number of neighbors sampled at hop ``h``.
        ``focal_vector`` is ignored by focal-agnostic samplers.
        """
        if any(k <= 0 for k in fanouts):
            raise ValueError("fanouts must be positive")
        root = SampledNode(ego_type, int(ego_id))
        self._expand(graph, root, list(fanouts), focal_vector)
        return root

    def sample_batch(self, graph: HeteroGraph, ego_type: str,
                     ego_ids: Sequence[int], fanouts: Sequence[int],
                     focal_vectors: Optional[np.ndarray] = None
                     ) -> List[SampledNode]:
        """Sample a tree for each ego id.

        The base implementation loops; engine-backed samplers (uniform,
        importance, focal) override this with vectorized expansion through
        :meth:`~repro.graph.hetero_graph.HeteroGraph.sample_subgraph_batch`.
        """
        trees = []
        for index, ego_id in enumerate(ego_ids):
            focal = None if focal_vectors is None else focal_vectors[index]
            trees.append(self.sample(graph, ego_type, ego_id, fanouts, focal))
        return trees

    # ------------------------------------------------------------------ #
    # Extension point
    # ------------------------------------------------------------------ #
    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        """Return up to ``k`` ``(relation, neighbor_id, weight)`` selections."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _expand(self, graph: HeteroGraph, node: SampledNode,
                fanouts: List[int], focal_vector: Optional[np.ndarray]) -> None:
        if not fanouts:
            return
        k, remaining = fanouts[0], fanouts[1:]
        for spec, neighbor_id, weight in self.select_neighbors(
                graph, node, k, focal_vector):
            child = SampledNode(spec.dst_type, int(neighbor_id))
            node.add_child(spec, child, weight)
            self._expand(graph, child, remaining, focal_vector)

    def _typed_neighbors(self, graph: HeteroGraph, node: SampledNode
                         ) -> List[Tuple[RelationSpec, np.ndarray, np.ndarray]]:
        """All typed neighbor lists of the node (may be empty)."""
        return graph.neighbors(node.node_type, node.node_id)
