"""Graph-sampling strategies.

The paper compares its focal-biased sampler against the self-developed
downscaling strategies of GraphSAGE (uniform layer sampling), PinSage
(importance-based sampling), PinnerSage (cluster / multi-modal sampling) and
Pixie (biased random walks).  All of them are implemented here behind a common
:class:`~repro.sampling.base.NeighborSampler` interface so the efficiency /
effectiveness experiments (Fig. 11, Fig. 12) can swap samplers freely.

The Zoomer focal-biased sampler (paper Eq. 5) lives in
:mod:`repro.sampling.focal` and is re-exported by :mod:`repro.core`.
"""

from repro.sampling.base import NeighborSampler, SampledNode
from repro.sampling.uniform import UniformNeighborSampler
from repro.sampling.importance import ImportanceNeighborSampler
from repro.sampling.random_walk import RandomWalkSampler
from repro.sampling.cluster import ClusterNeighborSampler
from repro.sampling.focal import FocalBiasedSampler, focal_relevance_scores

__all__ = [
    "NeighborSampler",
    "SampledNode",
    "UniformNeighborSampler",
    "ImportanceNeighborSampler",
    "RandomWalkSampler",
    "ClusterNeighborSampler",
    "FocalBiasedSampler",
    "focal_relevance_scores",
]
