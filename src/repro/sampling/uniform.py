"""Uniform layer sampling (the GraphSAGE strategy).

GraphSAGE aggregates features from a fixed-size set of uniformly sampled
neighbors (paper Section III-A, Eq. 4); PinSage's predecessor strategy of
"uniform node sampling on the previous layer neighbors" is the same idea.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_sampler
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


@register_sampler("uniform", engine_backed=True)
class UniformNeighborSampler(NeighborSampler):
    """Samples ``k`` neighbors uniformly from the union of all relations.

    Tree expansion routes through the graph engine's vectorized
    ``sample_subgraph_batch`` (one union-CSR pass per hop and node type);
    :meth:`select_neighbors` remains for callers that pick neighbors of a
    single node directly.
    """

    name = "uniform"
    engine_weighted = False

    def sample(self, graph: HeteroGraph, ego_type: str, ego_id: int,
               fanouts: Sequence[int],
               focal_vector: Optional[np.ndarray] = None) -> SampledNode:
        return self.sample_batch(graph, ego_type, [int(ego_id)], fanouts)[0]

    def sample_batch(self, graph: HeteroGraph, ego_type: str,
                     ego_ids: Sequence[int], fanouts: Sequence[int],
                     focal_vectors: Optional[np.ndarray] = None
                     ) -> List[SampledNode]:
        return graph.sample_subgraph_batch(
            ego_type, ego_ids, fanouts, rng=self.rng,
            weighted=False).to_trees()

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        candidates: List[Tuple[RelationSpec, int, float]] = []
        for spec, ids, weights in self._typed_neighbors(graph, node):
            candidates.extend(
                (spec, int(nid), float(w)) for nid, w in zip(ids, weights)
            )
        if not candidates:
            return []
        if len(candidates) <= k:
            return candidates
        picks = self.rng.choice(len(candidates), size=k, replace=False)
        return [candidates[p] for p in picks]
