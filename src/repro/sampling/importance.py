"""Importance-based neighbor sampling (the PinSage strategy).

PinSage samples neighbors with probability proportional to their importance
to the ego node; in production that importance is estimated with short random
walks, which converges to a value dominated by edge weights (visit counts).
Here the interaction edge weights already *are* visit counts (the graph
builder accumulates repeated interactions), so importance sampling draws
neighbors proportionally to edge weight via the graph engine's alias tables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_sampler
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


@register_sampler("importance", engine_backed=True)
class ImportanceNeighborSampler(NeighborSampler):
    """Samples neighbors with probability proportional to edge weight.

    Tree expansion routes through the graph engine's vectorized
    ``sample_subgraph_batch``: each hop draws from the union-CSR alias
    tables (``k`` draws with replacement, deduplicated — the paper's
    constant-time alias regime), so a node can occasionally contribute
    fewer than ``k`` distinct children.  :meth:`select_neighbors` keeps the
    exact without-replacement semantics for single-node callers.
    """

    name = "importance"

    def sample(self, graph: HeteroGraph, ego_type: str, ego_id: int,
               fanouts: Sequence[int],
               focal_vector: Optional[np.ndarray] = None) -> SampledNode:
        return self.sample_batch(graph, ego_type, [int(ego_id)], fanouts)[0]

    def sample_batch(self, graph: HeteroGraph, ego_type: str,
                     ego_ids: Sequence[int], fanouts: Sequence[int],
                     focal_vectors: Optional[np.ndarray] = None
                     ) -> List[SampledNode]:
        return graph.sample_subgraph_batch(
            ego_type, ego_ids, fanouts, rng=self.rng,
            weighted=True).to_trees()

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        specs: List[RelationSpec] = []
        neighbor_ids: List[int] = []
        weights: List[float] = []
        for spec, ids, wts in self._typed_neighbors(graph, node):
            specs.extend([spec] * ids.size)
            neighbor_ids.extend(int(i) for i in ids)
            weights.extend(float(w) for w in wts)
        if not neighbor_ids:
            return []
        weights_arr = np.asarray(weights, dtype=np.float64)
        if len(neighbor_ids) <= k:
            return list(zip(specs, neighbor_ids, weights))
        total = weights_arr.sum()
        probabilities = weights_arr / total if total > 0 else None
        picks = self.rng.choice(len(neighbor_ids), size=k, replace=False,
                                p=probabilities)
        return [(specs[p], neighbor_ids[p], weights[p]) for p in picks]
