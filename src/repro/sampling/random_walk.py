"""Random-walk-based sampling (the Pixie / DeepWalk strategy).

Pixie runs many short random walks from the ego node and keeps the most
frequently visited nodes as its neighborhood; DeepWalk similarly treats nodes
co-occurring on walks as context.  The sampler below performs weighted random
walks over the heterogeneous graph, counts visits, and keeps the top-``k``
visited nodes (per hop level) as the sampled neighborhood.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.registry import register_sampler
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


@register_sampler("random-walk", aliases=("random_walk",), engine_backed=False,
                  depth_param="walk_length", default_depth=3)
class RandomWalkSampler(NeighborSampler):
    """Keeps the top-k most visited nodes over short weighted random walks."""

    name = "random_walk"

    def __init__(self, seed: int = 0, num_walks: int = 20, walk_length: int = 3,
                 restart_prob: float = 0.15):
        super().__init__(seed)
        if num_walks <= 0 or walk_length <= 0:
            raise ValueError("num_walks and walk_length must be positive")
        if not 0.0 <= restart_prob < 1.0:
            raise ValueError("restart_prob must be in [0, 1)")
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.restart_prob = restart_prob

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        visits: Counter = Counter()
        reached_via: Dict[Tuple[str, int], RelationSpec] = {}
        start = (node.node_type, node.node_id)
        for _ in range(self.num_walks):
            current_type, current_id = start
            first_hop_spec: Optional[RelationSpec] = None
            for step in range(self.walk_length):
                if step > 0 and self.rng.random() < self.restart_prob:
                    current_type, current_id = start
                    first_hop_spec = None
                neighbor_lists = graph.neighbors(current_type, current_id)
                if not neighbor_lists:
                    break
                # Choose a relation proportionally to its total weight, then a
                # neighbor within it proportionally to edge weight.
                totals = np.array([weights.sum() for _, _, weights in neighbor_lists])
                if totals.sum() <= 0:
                    rel_index = int(self.rng.integers(len(neighbor_lists)))
                else:
                    rel_index = int(self.rng.choice(len(neighbor_lists),
                                                    p=totals / totals.sum()))
                spec, ids, weights = neighbor_lists[rel_index]
                probabilities = weights / weights.sum() if weights.sum() > 0 else None
                position = int(self.rng.choice(ids.size, p=probabilities))
                next_id = int(ids[position])
                if (current_type, current_id) == start:
                    first_hop_spec = spec
                current_type, current_id = spec.dst_type, next_id
                if (current_type, current_id) != start:
                    key = (current_type, current_id)
                    visits[key] += 1
                    if key not in reached_via and first_hop_spec is not None:
                        reached_via[key] = RelationSpec(
                            node.node_type, first_hop_spec.edge_type, current_type)
        if not visits:
            return []
        selections: List[Tuple[RelationSpec, int, float]] = []
        for (node_type, node_id), count in visits.most_common(k):
            spec = reached_via.get(
                (node_type, node_id),
                RelationSpec(node.node_type, "walk", node_type))
            selections.append((spec, node_id, float(count)))
        return selections
