"""Focal-biased graph sampling — the Zoomer ROI construction (paper Eq. 5).

Given focal points ``c`` (the requesting user and the posed query), a
neighbor ``V_j`` of the ego node is scored with the generalized Jaccard
(Tanimoto) relevance

    e_ij = (F_c . F_j) / (||F_c||^2 + ||F_j||^2 - F_c . F_j)

where ``F_c`` is the sum of the focal points' feature vectors.  Neighbors are
kept top-``k`` by this score, so the sampled region is exactly the paper's
Region of Interest: the part of the ego's neighborhood most relevant to the
current intention.  The paper notes cosine similarity is an acceptable
substitute; both are implemented and selectable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_sampler
from repro.graph.batch import row_chunks, segment_offsets, sequence_from
from repro.graph.hetero_graph import (
    HeteroGraph,
    TypedAdjacency,
    expand_subgraph_batch,
)
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


def focal_relevance_scores(focal_vector: np.ndarray, neighbor_features: np.ndarray,
                           metric: str = "generalized_jaccard") -> np.ndarray:
    """Relevance of each neighbor feature row to the focal vector.

    Parameters
    ----------
    focal_vector:
        ``F_c`` — the summed focal-point features, shape ``(d,)``, or one
        focal row per neighbor, shape ``(n, d)`` (the batched engine scores
        a whole frontier whose rows belong to different requests at once).
    neighbor_features:
        ``F_j`` rows, shape ``(n, d)``.
    metric:
        ``"generalized_jaccard"`` (paper Eq. 5) or ``"cosine"``.
    """
    focal_vector = np.asarray(focal_vector, dtype=np.float64)
    neighbor_features = np.atleast_2d(np.asarray(neighbor_features, dtype=np.float64))
    if focal_vector.ndim == 1:
        focal_vector = np.broadcast_to(focal_vector,
                                       neighbor_features.shape)
    dots = (neighbor_features * focal_vector).sum(axis=1)
    if metric == "generalized_jaccard":
        denom = ((focal_vector * focal_vector).sum(axis=1)
                 + (neighbor_features * neighbor_features).sum(axis=1)
                 - dots)
        denom = np.where(np.abs(denom) < 1e-12, 1e-12, denom)
        return dots / denom
    if metric == "cosine":
        norms = (np.linalg.norm(focal_vector, axis=1) *
                 np.linalg.norm(neighbor_features, axis=1))
        norms = np.where(norms < 1e-12, 1e-12, norms)
        return dots / norms
    raise ValueError(f"unknown relevance metric {metric!r}")


@register_sampler("focal", engine_backed=True)
class FocalBiasedSampler(NeighborSampler):
    """Top-k neighbor selection by focal relevance (the ROI sampler).

    Parameters
    ----------
    metric:
        Relevance score; ``"generalized_jaccard"`` is the paper's Eq. 5.
    min_relevance:
        Optional hard floor — neighbors scoring below it are dropped even if
        the budget is not exhausted (the "leave-out area" in Fig. 5).
    fallback_uniform:
        When no focal vector is supplied (e.g. during item-side training,
        where the paper uses a base model), fall back to uniform sampling so
        the sampler still produces a neighborhood.
    """

    name = "focal"

    def __init__(self, seed: int = 0, metric: str = "generalized_jaccard",
                 min_relevance: Optional[float] = None,
                 fallback_uniform: bool = True):
        super().__init__(seed)
        if metric not in ("generalized_jaccard", "cosine"):
            raise ValueError(f"unknown relevance metric {metric!r}")
        self.metric = metric
        self.min_relevance = min_relevance
        self.fallback_uniform = fallback_uniform

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        specs: List[RelationSpec] = []
        neighbor_ids: List[int] = []
        weights: List[float] = []
        features: List[np.ndarray] = []
        for spec, ids, wts in self._typed_neighbors(graph, node):
            for nid, w in zip(ids, wts):
                specs.append(spec)
                neighbor_ids.append(int(nid))
                weights.append(float(w))
                features.append(graph.node_feature(spec.dst_type, int(nid)))
        if not neighbor_ids:
            return []

        if focal_vector is None:
            if not self.fallback_uniform:
                raise ValueError("focal vector required for focal-biased sampling")
            if len(neighbor_ids) <= k:
                return list(zip(specs, neighbor_ids, weights))
            picks = self.rng.choice(len(neighbor_ids), size=k, replace=False)
            return [(specs[p], neighbor_ids[p], weights[p]) for p in picks]

        scores = focal_relevance_scores(focal_vector, np.vstack(features), self.metric)
        order = np.argsort(-scores, kind="stable")
        selections: List[Tuple[RelationSpec, int, float]] = []
        for position in order:
            if len(selections) >= k:
                break
            if self.min_relevance is not None and scores[position] < self.min_relevance:
                break
            # The relevance score becomes the edge weight of the ROI edge, so
            # downstream attention starts from the focal-relevance prior.
            selections.append((specs[position], neighbor_ids[position],
                               float(scores[position])))
        return selections

    # ------------------------------------------------------------------ #
    # Batched forest expansion (no per-node Python loop)
    # ------------------------------------------------------------------ #
    def sample_batch(self, graph: HeteroGraph, ego_type: str,
                     ego_ids: Sequence[int], fanouts: Sequence[int],
                     focal_vectors: Optional[np.ndarray] = None
                     ) -> List[SampledNode]:
        """Build the ROIs of a whole request batch in vectorized passes.

        Per hop, the frontier is grouped by node type and every group's
        full union neighborhood is scored against the focal vector of the
        request each frontier node belongs to — one gather + one segmented
        top-k per group.  With a focal vector this is deterministic and
        returns exactly the trees the single-ego path produces.
        """
        if any(k <= 0 for k in fanouts):
            raise ValueError("fanouts must be positive")
        egos = sequence_from(ego_ids)
        if focal_vectors is None:
            if not self.fallback_uniform:
                raise ValueError("focal vectors required for focal-biased "
                                 "sampling")
            return graph.sample_subgraph_batch(
                ego_type, egos, fanouts, rng=self.rng,
                weighted=False).to_trees()
        focal_vectors = np.atleast_2d(np.asarray(focal_vectors,
                                                 dtype=np.float64))
        if focal_vectors.shape[0] != egos.size:
            raise ValueError("one focal vector per ego node is required")

        def focal_pick(node_type: str, adjacency: TypedAdjacency,
                       nodes: np.ndarray, tree_indices: np.ndarray, k: int):
            return self._topk_edges(graph, adjacency, nodes,
                                    focal_vectors[tree_indices], k)

        return expand_subgraph_batch(graph, ego_type, egos, fanouts,
                                     focal_pick).to_trees()

    def _topk_edges(self, graph: HeteroGraph, adjacency: TypedAdjacency,
                    nodes: np.ndarray, focals: np.ndarray, k: int):
        """Top-``k`` union edges of each node by focal relevance.

        Returns ``(positions, scores, counts)`` where ``positions`` is an
        ``(M, k)`` block of flat edge indices (mask beyond ``counts``), or
        ``None`` when no node in the group has neighbors.
        """
        starts = adjacency.indptr[nodes]
        degrees = adjacency.indptr[nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            return None
        rows, cols = segment_offsets(degrees)
        flat = np.repeat(starts, degrees) + cols
        neighbor_ids = adjacency.indices[flat]
        dst_codes = np.array(
            [graph.schema.node_types.index(spec.dst_type)
             for spec in adjacency.specs],
            dtype=np.int64)[adjacency.rel_local[flat]]
        dim = focals.shape[1]
        features = np.empty((total, dim))
        for code in np.unique(dst_codes):
            member = dst_codes == code
            node_type = graph.schema.node_types[code]
            features[member] = graph.features[node_type][neighbor_ids[member]]
        scores = focal_relevance_scores(focals[rows], features, self.metric)

        positions = np.zeros((nodes.size, k), dtype=np.int64)
        top_scores = np.full((nodes.size, k), -np.inf)
        # Chunked segmented top-k: a dense (rows, max_degree) score block is
        # built per row-chunk so a single hub node cannot inflate memory to
        # frontier_size * max_degree.
        offsets = np.cumsum(degrees) - degrees
        for chunk_start, chunk_stop in row_chunks(degrees):
            chunk_degrees = degrees[chunk_start:chunk_stop]
            width = int(chunk_degrees.max(initial=0))
            if width == 0:
                continue
            chunk_rows, chunk_cols = segment_offsets(chunk_degrees)
            padded = np.full((chunk_stop - chunk_start, width), -np.inf)
            flat_lo = offsets[chunk_start]
            flat_hi = flat_lo + int(chunk_degrees.sum())
            padded[chunk_rows, chunk_cols] = scores[flat_lo:flat_hi]
            take = min(k, width)
            order = np.argsort(-padded, axis=1, kind="stable")[:, :take]
            positions[chunk_start:chunk_stop, :take] = \
                starts[chunk_start:chunk_stop, None] + order
            top_scores[chunk_start:chunk_stop, :take] = \
                np.take_along_axis(padded, order, axis=1)
        valid = np.isfinite(top_scores)
        if self.min_relevance is not None:
            valid &= top_scores >= self.min_relevance
        counts = valid.sum(axis=1)
        return positions, np.where(valid, top_scores, 0.0), counts

    def score_neighbors(self, graph: HeteroGraph, node_type: str, node_id: int,
                        focal_vector: np.ndarray
                        ) -> List[Tuple[RelationSpec, int, float]]:
        """Score *all* neighbors of a node against the focal vector.

        Used by the interpretability experiment (Fig. 13) and by tests that
        check the top-k property of the sampler.
        """
        results: List[Tuple[RelationSpec, int, float]] = []
        for spec, ids, _ in graph.neighbors(node_type, node_id):
            if ids.size == 0:
                continue
            feats = graph.node_features(spec.dst_type, ids)
            scores = focal_relevance_scores(focal_vector, feats, self.metric)
            results.extend(
                (spec, int(nid), float(score)) for nid, score in zip(ids, scores)
            )
        return results
