"""Focal-biased graph sampling — the Zoomer ROI construction (paper Eq. 5).

Given focal points ``c`` (the requesting user and the posed query), a
neighbor ``V_j`` of the ego node is scored with the generalized Jaccard
(Tanimoto) relevance

    e_ij = (F_c . F_j) / (||F_c||^2 + ||F_j||^2 - F_c . F_j)

where ``F_c`` is the sum of the focal points' feature vectors.  Neighbors are
kept top-``k`` by this score, so the sampled region is exactly the paper's
Region of Interest: the part of the ego's neighborhood most relevant to the
current intention.  The paper notes cosine similarity is an acceptable
substitute; both are implemented and selectable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


def focal_relevance_scores(focal_vector: np.ndarray, neighbor_features: np.ndarray,
                           metric: str = "generalized_jaccard") -> np.ndarray:
    """Relevance of each neighbor feature row to the focal vector.

    Parameters
    ----------
    focal_vector:
        ``F_c`` — the summed focal-point features, shape ``(d,)``.
    neighbor_features:
        ``F_j`` rows, shape ``(n, d)``.
    metric:
        ``"generalized_jaccard"`` (paper Eq. 5) or ``"cosine"``.
    """
    focal_vector = np.asarray(focal_vector, dtype=np.float64)
    neighbor_features = np.atleast_2d(np.asarray(neighbor_features, dtype=np.float64))
    dots = neighbor_features @ focal_vector
    if metric == "generalized_jaccard":
        denom = (focal_vector @ focal_vector
                 + (neighbor_features * neighbor_features).sum(axis=1)
                 - dots)
        denom = np.where(np.abs(denom) < 1e-12, 1e-12, denom)
        return dots / denom
    if metric == "cosine":
        norms = (np.linalg.norm(focal_vector) *
                 np.linalg.norm(neighbor_features, axis=1))
        norms = np.where(norms < 1e-12, 1e-12, norms)
        return dots / norms
    raise ValueError(f"unknown relevance metric {metric!r}")


class FocalBiasedSampler(NeighborSampler):
    """Top-k neighbor selection by focal relevance (the ROI sampler).

    Parameters
    ----------
    metric:
        Relevance score; ``"generalized_jaccard"`` is the paper's Eq. 5.
    min_relevance:
        Optional hard floor — neighbors scoring below it are dropped even if
        the budget is not exhausted (the "leave-out area" in Fig. 5).
    fallback_uniform:
        When no focal vector is supplied (e.g. during item-side training,
        where the paper uses a base model), fall back to uniform sampling so
        the sampler still produces a neighborhood.
    """

    name = "focal"

    def __init__(self, seed: int = 0, metric: str = "generalized_jaccard",
                 min_relevance: Optional[float] = None,
                 fallback_uniform: bool = True):
        super().__init__(seed)
        if metric not in ("generalized_jaccard", "cosine"):
            raise ValueError(f"unknown relevance metric {metric!r}")
        self.metric = metric
        self.min_relevance = min_relevance
        self.fallback_uniform = fallback_uniform

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        specs: List[RelationSpec] = []
        neighbor_ids: List[int] = []
        weights: List[float] = []
        features: List[np.ndarray] = []
        for spec, ids, wts in self._typed_neighbors(graph, node):
            for nid, w in zip(ids, wts):
                specs.append(spec)
                neighbor_ids.append(int(nid))
                weights.append(float(w))
                features.append(graph.node_feature(spec.dst_type, int(nid)))
        if not neighbor_ids:
            return []

        if focal_vector is None:
            if not self.fallback_uniform:
                raise ValueError("focal vector required for focal-biased sampling")
            if len(neighbor_ids) <= k:
                return list(zip(specs, neighbor_ids, weights))
            picks = self.rng.choice(len(neighbor_ids), size=k, replace=False)
            return [(specs[p], neighbor_ids[p], weights[p]) for p in picks]

        scores = focal_relevance_scores(focal_vector, np.vstack(features), self.metric)
        order = np.argsort(-scores)
        selections: List[Tuple[RelationSpec, int, float]] = []
        for position in order:
            if len(selections) >= k:
                break
            if self.min_relevance is not None and scores[position] < self.min_relevance:
                break
            # The relevance score becomes the edge weight of the ROI edge, so
            # downstream attention starts from the focal-relevance prior.
            selections.append((specs[position], neighbor_ids[position],
                               float(scores[position])))
        return selections

    def score_neighbors(self, graph: HeteroGraph, node_type: str, node_id: int,
                        focal_vector: np.ndarray
                        ) -> List[Tuple[RelationSpec, int, float]]:
        """Score *all* neighbors of a node against the focal vector.

        Used by the interpretability experiment (Fig. 13) and by tests that
        check the top-k property of the sampler.
        """
        results: List[Tuple[RelationSpec, int, float]] = []
        for spec, ids, _ in graph.neighbors(node_type, node_id):
            if ids.size == 0:
                continue
            feats = graph.node_features(spec.dst_type, ids)
            scores = focal_relevance_scores(focal_vector, feats, self.metric)
            results.extend(
                (spec, int(nid), float(score)) for nid, score in zip(ids, scores)
            )
        return results
