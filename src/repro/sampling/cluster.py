"""Cluster-based multi-interest sampling (the PinnerSage strategy).

PinnerSage represents each user with multiple embeddings obtained by
clustering the items they interacted with, so that each interest mode keeps
its own representative neighborhood.  The sampler below clusters the ego
node's neighbors by feature similarity (a light k-means on the dense node
features) and samples a proportional number of representatives from every
cluster, guaranteeing that minority interest modes are not crowded out.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.api.registry import register_sampler
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec
from repro.sampling.base import NeighborSampler, SampledNode


@register_sampler("cluster", engine_backed=False)
class ClusterNeighborSampler(NeighborSampler):
    """Clusters neighbors by feature similarity and samples per cluster."""

    name = "cluster"

    def __init__(self, seed: int = 0, num_clusters: int = 3,
                 kmeans_iterations: int = 5):
        super().__init__(seed)
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = num_clusters
        self.kmeans_iterations = kmeans_iterations

    def select_neighbors(self, graph: HeteroGraph, node: SampledNode, k: int,
                         focal_vector: Optional[np.ndarray]
                         ) -> List[Tuple[RelationSpec, int, float]]:
        specs: List[RelationSpec] = []
        neighbor_ids: List[int] = []
        weights: List[float] = []
        features: List[np.ndarray] = []
        for spec, ids, wts in self._typed_neighbors(graph, node):
            for nid, w in zip(ids, wts):
                specs.append(spec)
                neighbor_ids.append(int(nid))
                weights.append(float(w))
                features.append(graph.node_feature(spec.dst_type, int(nid)))
        if not neighbor_ids:
            return []
        if len(neighbor_ids) <= k:
            return list(zip(specs, neighbor_ids, weights))

        matrix = np.vstack(features)
        assignments = self._kmeans(matrix)
        clusters = [np.where(assignments == c)[0] for c in range(self.num_clusters)]
        clusters = [c for c in clusters if c.size > 0]

        # Allocate the budget k across clusters proportionally to their size,
        # giving every non-empty cluster at least one slot.
        sizes = np.array([c.size for c in clusters], dtype=np.float64)
        allocation = np.maximum(1, np.round(k * sizes / sizes.sum())).astype(int)
        while allocation.sum() > k:
            allocation[np.argmax(allocation)] -= 1
        selections: List[Tuple[RelationSpec, int, float]] = []
        for cluster, budget in zip(clusters, allocation):
            cluster_weights = np.array([weights[i] for i in cluster])
            if cluster.size <= budget:
                chosen = cluster
            else:
                probabilities = cluster_weights / cluster_weights.sum() \
                    if cluster_weights.sum() > 0 else None
                chosen = self.rng.choice(cluster, size=budget, replace=False,
                                         p=probabilities)
            selections.extend(
                (specs[i], neighbor_ids[i], weights[i]) for i in chosen
            )
        return selections[:k]

    def _kmeans(self, matrix: np.ndarray) -> np.ndarray:
        """Tiny k-means returning cluster assignments."""
        count = matrix.shape[0]
        clusters = min(self.num_clusters, count)
        centers = matrix[self.rng.choice(count, size=clusters, replace=False)]
        assignments = np.zeros(count, dtype=np.int64)
        for _ in range(self.kmeans_iterations):
            distances = ((matrix[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            assignments = distances.argmin(axis=1)
            for c in range(clusters):
                members = matrix[assignments == c]
                if members.shape[0]:
                    centers[c] = members.mean(axis=0)
        return assignments
