"""Neural-network building blocks over the :mod:`repro.ndarray` autodiff engine.

Provides the module system (:class:`Module`), common layers (:class:`Linear`,
:class:`Embedding`, :class:`MLP`), optimizers (:class:`SGD`, :class:`Adam`),
and weight initialisation helpers.  Every model in the reproduction (the
Zoomer towers, and all GNN / session baselines) is built from these parts so
that training-cost comparisons between methods are apples-to-apples.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, Embedding, MLP, LayerNorm, Dropout
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "MLP",
    "LayerNorm",
    "Dropout",
    "SGD",
    "Adam",
    "Optimizer",
    "init",
]
