"""Module system: parameter registration, traversal and (de)serialisation.

Mirrors the familiar ``torch.nn.Module`` contract in miniature: assigning a
:class:`Parameter` or another :class:`Module` as an attribute registers it, and
:meth:`Module.parameters` walks the tree.  State dictionaries are plain
``dict[str, numpy.ndarray]`` so they can be shipped to the simulated parameter
servers in :mod:`repro.distributed` or persisted with ``numpy.savez``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.ndarray.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration via attribute assignment
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (useful for cost models)."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ #
    # Train / eval switches
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch the module (recursively) to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of qualified parameter names to arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = True) -> None:
        """Load parameter values from ``state`` in place."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{value.shape} vs {param.data.shape}"
                    )
                param.data[...] = value

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
