"""Common neural-network layers used by Zoomer and the baselines."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ndarray.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Fully-connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng),
                                name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Embedding table mapping integer ids to dense vectors.

    This is the sparse part of the model that the paper stores on parameter
    servers; :mod:`repro.distributed` partitions these tables by hashing.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, std: float = 0.05,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std, rng),
                                name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.gather_rows(indices)

    def grow_to(self, num_embeddings: int, std: float = 0.05,
                rng: Optional[np.random.Generator] = None) -> int:
        """Extend the table with freshly initialised rows (streaming path).

        New graph nodes arriving through streaming updates need id
        embeddings before they can be served; the appended rows use the
        same initialisation as construction, drawn from ``rng`` so cold
        starts are deterministic under a seeded refresh.  Existing rows
        (and their registration with the module tree) are untouched.
        Returns the number of rows added.
        """
        if num_embeddings <= self.num_embeddings:
            return 0
        extra = num_embeddings - self.num_embeddings
        self.weight.data = np.vstack([
            self.weight.data,
            init.normal((extra, self.embedding_dim), std, rng)])
        self.weight.grad = None
        self.num_embeddings = num_embeddings
        return extra


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers.

    Used as the per-tower head of the twin-tower (DSSM) model and inside
    several baselines (STAMP, MCCF readout).
    """

    def __init__(self, dims: Sequence[int], activation: str = "relu",
                 final_activation: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = list(dims)
        self.activation = activation
        self.final_activation = final_activation
        self._layers: List[Linear] = []
        for index, (dim_in, dim_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(dim_in, dim_out, rng=rng)
            self.add_module(f"layer_{index}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        last = len(self._layers) - 1
        for index, layer in enumerate(self._layers):
            out = layer(out)
            name = self.final_activation if index == last else self.activation
            out = _apply_activation(out, name)
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((var + self.eps) ** 0.5)
        return normalised * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else init.default_init_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


def _apply_activation(x: Tensor, name: Optional[str]) -> Tensor:
    if name is None or name == "none":
        return x
    if name == "relu":
        return x.relu()
    if name == "leaky_relu":
        return x.leaky_relu()
    if name == "sigmoid":
        return x.sigmoid()
    if name == "tanh":
        return x.tanh()
    raise ValueError(f"unknown activation: {name!r}")
