"""Weight initialisation helpers.

All initialisers accept an explicit ``numpy.random.Generator`` so model
construction is fully reproducible; the experiment harness seeds every model
with the experiment's seed.  Construction without an ``rng`` falls back to
:func:`default_init_rng` — a process-wide *seeded* stream — so an unseeded
build is impossible (the RNG002 contract).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Seed of the process-wide fallback stream.  Arbitrary but fixed: rng-less
#: construction must be a function of construction order only, never of OS
#: entropy.
DEFAULT_INIT_SEED = 0x2022_1CDE

_fallback: Optional[np.random.Generator] = None


def default_init_rng() -> np.random.Generator:
    """The seeded process-wide Generator backing rng-less construction.

    Deliberately stateful: successive draws differ, so sibling layers
    built without an explicit ``rng`` do not collapse onto identical
    weights — but the stream is Philox-keyed with a fixed seed, so two
    processes performing the same construction sequence are bit-identical.
    Tests rewind it with :func:`reset_default_init_rng`.
    """
    global _fallback
    if _fallback is None:
        _fallback = np.random.Generator(np.random.Philox(DEFAULT_INIT_SEED))
    return _fallback


def reset_default_init_rng(seed: int = DEFAULT_INIT_SEED) -> None:
    """Rewind the fallback stream (tests pinning rng-less bit-identity)."""
    global _fallback
    _fallback = np.random.Generator(np.random.Philox(seed))


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else default_init_rng()


def xavier_uniform(shape: Tuple[int, ...],
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weight matrices."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng(rng).uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...],
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _rng(rng).normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...],
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (good before ReLU layers)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _rng(rng).uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Small-scale normal initialisation, used for embedding tables."""
    return _rng(rng).normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation, used for biases."""
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
