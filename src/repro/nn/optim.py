"""Optimizers: plain SGD and Adam.

The paper trains Zoomer "with SGD, using the Adam optimizer" (Section VII-A,
learning rate 0.1 for Zoomer, 0.05 for GraphSAGE); both are provided here.
Optimizers operate on lists of :class:`~repro.nn.module.Parameter` so the same
instance can drive either a local model or the worker side of the simulated
parameter-server training in :mod:`repro.distributed`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and step counter."""

    def __init__(self, params: Sequence[Parameter], lr: float,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.params: List[Parameter] = list(params)
        self.lr = lr
        self.weight_decay = weight_decay
        self.steps = 0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grad(self, param: Parameter) -> Optional[np.ndarray]:
        grad = param.grad
        if grad is None:
            return None
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad

    @staticmethod
    def _aligned(state: Optional[np.ndarray],
                 param: Parameter) -> Optional[np.ndarray]:
        """Align a per-parameter state buffer with a row-grown parameter.

        Embedding tables grow in place when streaming updates add nodes
        (:meth:`repro.nn.layers.Embedding.grow_to`), so momentum buffers
        recorded before an ingest can be shorter than the parameter; the
        appended rows start with zero state, exactly as a fresh parameter
        would.  Any other shape change is a real error and raises.
        """
        if state is None or state.shape == param.data.shape:
            return state
        if state.ndim == param.data.ndim and state.ndim >= 1 \
                and state.shape[1:] == param.data.shape[1:] \
                and state.shape[0] < param.data.shape[0]:
            grown = np.zeros_like(param.data)
            grown[:state.shape[0]] = state
            return grown
        raise ValueError(
            f"optimizer state shape {state.shape} cannot be aligned with "
            f"parameter shape {param.data.shape}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.05,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.steps += 1
        for param in self.params:
            grad = self._grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity = self._aligned(self._velocity.get(id(param)), param)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.steps += 1
        bias1 = 1.0 - self.beta1 ** self.steps
        bias2 = 1.0 - self.beta2 ** self.steps
        for param in self.params:
            grad = self._grad(param)
            if grad is None:
                continue
            m = self._aligned(self._m.get(id(param)), param)
            v = self._aligned(self._v.get(id(param)), param)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
