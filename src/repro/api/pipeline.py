"""The staged pipeline facade: ``build_graph() -> fit() -> evaluate() -> deploy()``.

One object drives the paper's whole production flow — log ingestion /
dataset generation, heterogeneous-graph construction, ROI-sampled training,
and online serving — from a single declarative
:class:`~repro.api.spec.ExperimentSpec`.  Train-then-serve is three lines::

    from repro.api import ExperimentSpec, Pipeline

    server = Pipeline(ExperimentSpec()).fit().deploy()
    results = server.serve_batch([(0, 0), (1, 3)], k=10)

Each stage is explicit but lazy: ``fit`` builds the graph if needed,
``deploy`` fits if needed, so both the staged and the one-liner styles work.
The stages produce the same objects the hand-wired path produces
(``Trainer``, ``TrainingResult``, ``OnlineServer``), so results are
bit-identical to wiring the layers manually under the same seed.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.api.registry import build_model, dataset_examples, load_dataset
from repro.api.spec import ExperimentSpec
from repro.data.splits import train_test_split_examples
from repro.serving.server import OnlineServer
from repro.training.trainer import Trainer, TrainingResult


class PipelineError(RuntimeError):
    """A pipeline stage was used before its inputs exist."""


class Pipeline:
    """Runs an :class:`ExperimentSpec` end to end, stage by stage."""

    def __init__(self, spec: Union[ExperimentSpec, Mapping[str, Any]]):
        if isinstance(spec, Mapping):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec.validate()
        self.dataset: Any = None
        self.graph: Any = None
        self.train_examples: Optional[Sequence] = None
        self.test_examples: Optional[Sequence] = None
        self.model: Any = None
        self.trainer: Optional[Trainer] = None
        self.result: Optional[TrainingResult] = None
        self.server: Optional[OnlineServer] = None

    # ------------------------------------------------------------------ #
    # Stage 1 — data: load the dataset, build the graph, split the logs
    # ------------------------------------------------------------------ #
    def build_graph(self) -> "Pipeline":
        """Load the dataset and split its labelled examples; idempotent."""
        if self.graph is not None:
            return self
        data = self.spec.dataset
        self.dataset = load_dataset(data.name, **data.params)
        self.graph = self.dataset.graph
        examples = dataset_examples(data.name, self.dataset)
        train, test = train_test_split_examples(
            examples, data.train_fraction, seed=self.spec.seed)
        if data.max_train_examples is not None:
            train = train[:data.max_train_examples]
        if data.max_test_examples is not None:
            test = test[:data.max_test_examples]
        self.train_examples = train
        self.test_examples = test if test else None
        return self

    # ------------------------------------------------------------------ #
    # Stage 2 — training
    # ------------------------------------------------------------------ #
    def fit(self) -> "Pipeline":
        """Build the registered model and train it on the train split."""
        self.build_graph()
        self.model = build_model(self.spec.model.name, self.graph,
                                 **self.spec.model_kwargs())
        self.trainer = Trainer(self.model, self.spec.training_config())
        self.result = self.trainer.train(self.train_examples,
                                         self.test_examples)
        return self

    # ------------------------------------------------------------------ #
    # Stage 3 — evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, ks: Sequence[int] = (10, 50),
                 candidate_pool: Optional[int] = None,
                 max_requests: int = 50) -> Dict[str, Any]:
        """AUC / MAE / RMSE plus HitRate@K on the test split."""
        if self.trainer is None or self.result is None:
            raise PipelineError("evaluate() requires fit() first")
        if self.test_examples is None:
            raise PipelineError(
                "no test split (dataset.max_test_examples=0?); "
                "evaluate() has nothing to score")
        report = self.result.final_metrics
        if report is None:
            report = self.trainer.evaluate(self.test_examples)
        hit_rates = self.trainer.evaluate_hit_rate(
            self.test_examples, ks=tuple(ks), candidate_pool=candidate_pool,
            max_requests=max_requests)
        return {
            "model": self.model.name,
            "auc": report.auc,
            "mae": report.mae,
            "rmse": report.rmse,
            "hit_rates": dict(hit_rates),
            "training_seconds": self.result.training_seconds,
            "iterations": self.result.iterations,
        }

    # ------------------------------------------------------------------ #
    # Stage 4 — serving
    # ------------------------------------------------------------------ #
    def deploy(self) -> OnlineServer:
        """Stand up a fully wired (optionally sharded) online server.

        Warms the neighbor caches and builds the two-layer inverted index
        for the first ``serving.warm_users`` / ``serving.warm_queries``
        nodes, exactly like the hand-wired serving examples.
        """
        if self.result is None:
            self.fit()
        serving = self.spec.serving
        self.server = OnlineServer(
            self.model,
            cache_capacity=serving.cache_capacity,
            ann_cells=serving.ann_cells,
            ann_nprobe=serving.ann_nprobe,
            posting_length=serving.posting_length,
            num_servers=serving.num_servers,
            use_inverted_index=serving.use_inverted_index,
            num_shards=serving.num_shards,
            seed=self.spec.seed)
        user_type = self.model.user_type
        query_type = self.model.query_node_type()
        num_users = self.graph.num_nodes.get(user_type, 0)
        num_queries = self.graph.num_nodes.get(query_type, 0)
        self.server.prepare(range(min(serving.warm_users, num_users)),
                            range(min(serving.warm_queries, num_queries)))
        return self.server
