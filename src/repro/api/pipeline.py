"""The staged pipeline facade: ``build_graph() -> fit() -> evaluate() -> deploy()``.

One object drives the paper's whole production flow — log ingestion /
dataset generation, heterogeneous-graph construction, ROI-sampled training,
and online serving — from a single declarative
:class:`~repro.api.spec.ExperimentSpec`.  Train-then-serve is three lines::

    from repro.api import ExperimentSpec, Pipeline

    server = Pipeline(ExperimentSpec()).fit().deploy()
    results = server.serve_batch([(0, 0), (1, 3)], k=10)

Each stage is explicit but lazy: ``fit`` builds the graph if needed,
``deploy`` fits if needed, so both the staged and the one-liner styles work.
The stages produce the same objects the hand-wired path produces
(``Trainer``, ``TrainingResult``, ``OnlineServer``), so results are
bit-identical to wiring the layers manually under the same seed.
``deploy()`` wraps its server in a :class:`Deployment` handle — usable
exactly like the server (attribute access delegates), plus ``.daemon(spec)``
to start the asyncio TCP tier and a draining ``close()``.

After ``deploy()`` the pipeline keeps going: :meth:`Pipeline.ingest`
streams new interaction events into the live graph in micro-batches and
refreshes the server on the cadence the spec's
:class:`~repro.api.spec.StreamingSpec` declares — the dynamic-graph
workload the paper's continuously-fed behavior graph implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.registry import build_model, dataset_examples, load_dataset
from repro.api.spec import DaemonSpec, ExperimentSpec, ExperimentTierSpec
from repro.data.splits import train_test_split_examples
from repro.data.wal import IngestJournal
from repro.faults import InjectedFault, fault_point
from repro.graph.update import GraphMutator
from repro.serving.daemon import ServingDaemon
from repro.serving.experiment import ExperimentTier
from repro.serving.server import OnlineServer, RefreshError
from repro.training.trainer import Trainer, TrainingResult


class PipelineError(RuntimeError):
    """A pipeline stage was used before its inputs exist."""


class Deployment:
    """What :meth:`Pipeline.deploy` returns: a handle over the live server.

    The handle *is* the server for every practical purpose — attribute
    access delegates to the wrapped
    :class:`~repro.serving.server.OnlineServer` (``deployment.serve_batch``,
    ``deployment.cache``, ``deployment.graph_version``, … all work), so
    existing ``server = pipeline.deploy()`` code keeps working unchanged.
    On top of that it owns the network tier: :meth:`daemon` starts an
    asyncio :class:`~repro.serving.daemon.ServingDaemon` for this server on
    a background thread, and :meth:`close` (or leaving a ``with`` block)
    gracefully drains every daemon it started.
    """

    def __init__(self, pipeline: "Pipeline", server: OnlineServer):
        """Wrap ``server``; ``pipeline`` supplies the spec's daemon section."""
        self._pipeline = pipeline
        #: The wrapped, fully warmed :class:`OnlineServer`.
        self.server = server
        self._daemons: List[ServingDaemon] = []

    def serve(self, request, query_id=None, k: int = 10):
        """Serve one request — see :meth:`OnlineServer.serve`."""
        return self.server.serve(request, query_id, k=k)

    def serve_batch(self, requests, k: int = 10):
        """Serve a batch — see :meth:`OnlineServer.serve_batch`."""
        return self.server.serve_batch(requests, k=k)

    def experiment(self, challengers: Mapping[str, Any],
                   spec: Optional[ExperimentTierSpec] = None
                   ) -> ExperimentTier:
        """Build the serving-time experiment tier for this deployment.

        ``challengers`` maps challenger variant names to their deployed
        servers (anything with ``serve_batch``, e.g. another pipeline's
        ``deployment.server``); this deployment's own server is the
        control.  ``spec`` defaults to the pipeline spec's ``experiment``
        section and must name the control first followed by exactly the
        challenger names.  Pass the returned
        :class:`~repro.serving.experiment.ExperimentTier` to
        :meth:`daemon` to serve all variants behind one endpoint.
        """
        if spec is None:
            spec = self._pipeline.spec.experiment
        spec.validate()
        if not spec.variants:
            raise PipelineError(
                "the experiment spec names no variants; set "
                "ExperimentTierSpec.variants (control first) or pass spec=")
        expected = set(spec.variants[1:])
        provided = set(challengers)
        if expected != provided:
            raise PipelineError(
                f"challenger servers {sorted(provided)} do not match the "
                f"spec's challenger variants {sorted(expected)} "
                f"(control {spec.variants[0]!r} is this deployment)")
        variants: Dict[str, Any] = {spec.variants[0]: self.server}
        for name in spec.variants[1:]:
            variants[name] = challengers[name]
        return ExperimentTier(variants, spec)

    def daemon(self, spec: Optional[DaemonSpec] = None, default_k: int = 10,
               start: bool = True,
               experiment: Optional[ExperimentTier] = None) -> ServingDaemon:
        """Start the TCP serving daemon for this deployment.

        ``spec`` defaults to the pipeline spec's ``daemon`` section.  With
        ``start=True`` (the default) the daemon's event loop is already
        running on a background thread when this returns — connect with
        :class:`~repro.serving.daemon.DaemonClient` at ``(daemon.host,
        daemon.port)``.  Pass ``experiment`` (from :meth:`experiment`) to
        host every variant of the tier behind this one endpoint; this
        deployment's server must be the tier's control.  The deployment
        tracks every daemon it started and drains them on :meth:`close`.
        """
        if spec is None:
            spec = self._pipeline.spec.daemon
        daemon = ServingDaemon(self.server, spec=spec, default_k=default_k,
                               experiment=experiment)
        if start:
            daemon.start_in_thread()
        self._daemons.append(daemon)
        return daemon

    def close(self) -> None:
        """Gracefully drain and stop every daemon this handle started."""
        while self._daemons:
            self._daemons.pop().close()

    def __enter__(self) -> "Deployment":
        """Context-manager entry; pairs with :meth:`close` on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Drain the deployment's daemons when the ``with`` block ends."""
        self.close()

    def __getattr__(self, name: str):
        """Delegate everything else to the wrapped :class:`OnlineServer`."""
        return getattr(self.server, name)


@dataclass
class IngestReport:
    """Summary of one :meth:`Pipeline.ingest` call."""

    #: Interaction events (sessions) consumed from the stream.
    events: int = 0
    #: Micro-batches applied to the graph.
    micro_batches: int = 0
    #: Server refreshes performed (0 when no server is deployed).
    refreshes: int = 0
    #: Edges appended across all micro-batches.
    new_edges: int = 0
    #: node_type -> nodes appended across all micro-batches.
    new_nodes: Dict[str, int] = field(default_factory=dict)
    #: Neighbor-cache keys invalidated by the refreshes.
    invalidated_cache_keys: int = 0
    #: Inverted-index postings rebuilt by the refreshes.
    refreshed_postings: int = 0
    #: Lifecycle compaction passes that changed the graph.
    compactions: int = 0
    #: Nodes tombstoned by compaction across the ingest.
    evicted_nodes: int = 0
    #: Edges removed by compaction (pruning + eviction fallout).
    removed_edges: int = 0
    #: Refreshes that failed before their commit (delta parked for retry).
    failed_refreshes: int = 0
    #: Micro-batches journaled to the write-ahead log before applying.
    journaled_batches: int = 0
    #: Journal records skipped by :meth:`Pipeline.recover_from_wal`
    #: because the graph already contained them.
    replay_skipped: int = 0
    #: The graph's version stamp after the ingest.
    graph_version: int = 0


class Pipeline:
    """Runs an :class:`ExperimentSpec` end to end, stage by stage."""

    def __init__(self, spec: Union[ExperimentSpec, Mapping[str, Any]]):
        """Validate ``spec`` (a spec object or its dict form) and bind stages."""
        if isinstance(spec, Mapping):
            spec = ExperimentSpec.from_dict(spec)
        self.spec = spec.validate()
        self.dataset: Any = None
        self.graph: Any = None
        self.train_examples: Optional[Sequence] = None
        self.test_examples: Optional[Sequence] = None
        self.model: Any = None
        self.trainer: Optional[Trainer] = None
        self.result: Optional[TrainingResult] = None
        self.server: Optional[OnlineServer] = None
        #: The :class:`Deployment` handle the last ``deploy()`` returned.
        self.deployment: Optional[Deployment] = None
        self._mutator: Optional[GraphMutator] = None
        #: Lazily created when ``spec.lifecycle.enabled``.
        self._compactor: Any = None
        self._parallel: Any = None
        #: Merged delta of updates a deployed server has not absorbed yet
        #: (accumulated by ``ingest(refresh=False)`` or parked by a failed
        #: refresh, consumed by the next refreshing ingest).
        self._pending_delta: Any = None
        #: Lazily opened :class:`~repro.data.wal.IngestJournal` when
        #: ``spec.streaming.wal_path`` is set.
        self._journal: Optional[IngestJournal] = None
        #: True while :meth:`recover_from_wal` replays (suppresses
        #: re-journaling the records being replayed).
        self._replaying = False

    # ------------------------------------------------------------------ #
    # Multi-core engine (spec.parallel)
    # ------------------------------------------------------------------ #
    def parallel_engine(self):
        """The spec's :class:`~repro.parallel.engine.ParallelEngine`.

        Built lazily on first use (``None`` when
        ``spec.parallel.num_workers == 0``) and shared by every stage:
        training-side presampling overlaps the optimisation step, the
        deployed server fans its ANN searches across the workers, and
        streaming ingest fans its scoped rebuilds through the engine's
        executor.  Call :meth:`close` (or use the pipeline as a context
        manager) to release the pool and its shared-memory blocks.
        """
        if self.spec.parallel.num_workers <= 0:
            return None
        if self._parallel is None:
            self.build_graph()
            from repro.parallel import ParallelEngine
            self._parallel = ParallelEngine(
                self.graph, num_workers=self.spec.parallel.num_workers,
                backend=self.spec.parallel.backend)
            self.graph.parallel_executor = self._parallel.executor
        return self._parallel

    def close(self) -> None:
        """Release deployment daemons and the parallel engine; idempotent."""
        if self.deployment is not None:
            self.deployment.close()
        if self._parallel is not None:
            if self.graph is not None:
                self.graph.parallel_executor = None
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "Pipeline":
        """Context-manager entry; pairs with :meth:`close` on exit."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release parallel resources when the ``with`` block ends."""
        self.close()

    # ------------------------------------------------------------------ #
    # Stage 1 — data: load the dataset, build the graph, split the logs
    # ------------------------------------------------------------------ #
    def build_graph(self) -> "Pipeline":
        """Load the dataset and split its labelled examples; idempotent."""
        if self.graph is not None:
            return self
        data = self.spec.dataset
        self.dataset = load_dataset(data.name, **data.params)
        self.graph = self.dataset.graph
        examples = dataset_examples(data.name, self.dataset)
        train, test = train_test_split_examples(
            examples, data.train_fraction, seed=self.spec.seed)
        if data.max_train_examples is not None:
            train = train[:data.max_train_examples]
        if data.max_test_examples is not None:
            test = test[:data.max_test_examples]
        self.train_examples = train
        self.test_examples = test if test else None
        return self

    # ------------------------------------------------------------------ #
    # Stage 2 — training
    # ------------------------------------------------------------------ #
    def fit(self) -> "Pipeline":
        """Build the registered model and train it on the train split."""
        self.build_graph()
        assert self.train_examples is not None  # set by build_graph()
        self.model = build_model(self.spec.model.name, self.graph,
                                 **self.spec.model_kwargs())
        self.trainer = Trainer(self.model, self.spec.training_config(),
                               parallel_engine=self.parallel_engine())
        self.result = self.trainer.train(self.train_examples,
                                         self.test_examples)
        return self

    # ------------------------------------------------------------------ #
    # Stage 3 — evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, ks: Sequence[int] = (10, 50),
                 candidate_pool: Optional[int] = None,
                 max_requests: int = 50) -> Dict[str, Any]:
        """AUC / MAE / RMSE plus HitRate@K on the test split."""
        if self.trainer is None or self.result is None:
            raise PipelineError("evaluate() requires fit() first")
        if self.test_examples is None:
            raise PipelineError(
                "no test split (dataset.max_test_examples=0?); "
                "evaluate() has nothing to score")
        report = self.result.final_metrics
        if report is None:
            report = self.trainer.evaluate(self.test_examples)
        hit_rates = self.trainer.evaluate_hit_rate(
            self.test_examples, ks=tuple(ks), candidate_pool=candidate_pool,
            max_requests=max_requests)
        return {
            "model": self.model.name,
            "auc": report.auc,
            "mae": report.mae,
            "rmse": report.rmse,
            "hit_rates": dict(hit_rates),
            "training_seconds": self.result.training_seconds,
            "iterations": self.result.iterations,
        }

    # ------------------------------------------------------------------ #
    # Stage 4 — serving
    # ------------------------------------------------------------------ #
    def deploy(self) -> Deployment:
        """Stand up a fully wired (optionally sharded) online server.

        Warms the neighbor caches and builds the two-layer inverted index
        for the first ``serving.warm_users`` / ``serving.warm_queries``
        nodes, exactly like the hand-wired serving examples.  Returns a
        :class:`Deployment` handle: use it exactly like the
        ``OnlineServer`` it wraps (attribute access delegates;
        ``pipeline.server`` stays the raw server), or call
        ``.daemon(spec)`` to put the server behind the TCP tier.
        """
        if self.result is None:
            self.fit()
        serving = self.spec.serving
        self.server = OnlineServer(
            self.model,
            cache_capacity=serving.cache_capacity,
            ann_cells=serving.ann_cells,
            ann_nprobe=serving.ann_nprobe,
            posting_length=serving.posting_length,
            num_servers=serving.num_servers,
            use_inverted_index=serving.use_inverted_index,
            num_shards=serving.num_shards,
            seed=self.spec.seed,
            dtype=serving.dtype)
        engine = self.parallel_engine()
        if engine is not None:
            self.server.attach_parallel(engine)
        user_type = self.model.user_type
        query_type = self.model.query_node_type()
        num_users = self.graph.num_nodes.get(user_type, 0)
        num_queries = self.graph.num_nodes.get(query_type, 0)
        self.server.prepare(range(min(serving.warm_users, num_users)),
                            range(min(serving.warm_queries, num_queries)))
        # A freshly prepared server reflects the current graph, so any
        # update debt accumulated before deployment is already absorbed.
        self._pending_delta = None
        self.deployment = Deployment(self, self.server)
        return self.deployment

    # ------------------------------------------------------------------ #
    # Stage 5 — streaming ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, events: Iterable, refresh: bool = True) -> IngestReport:
        """Stream interaction events into the live graph, micro-batch-wise.

        ``events`` is any iterable of search sessions —
        :class:`~repro.data.logs.SearchSession` objects or
        ``(user_id, query_id, clicked_items)`` tuples.  They are grouped
        into micro-batches of ``spec.streaming.micro_batch_size`` and each
        batch is applied to the graph through a
        :class:`~repro.graph.update.GraphMutator` (ids beyond the current
        node counts become new cold-start nodes).  When the pipeline has a
        deployed server and ``refresh`` is True, the server absorbs the
        accumulated deltas every ``spec.streaming.refresh_every``
        micro-batches — and once more at the end of the stream — so
        serving never lags a finished ingest.  With ``refresh=False`` the
        deltas are parked instead and the next refreshing ingest hands the
        merged backlog to the server, so no update is ever silently
        dropped.  The graph itself is always current; between refreshes
        only the serving caches are (boundedly) stale, mirroring the
        paper's asynchronous cache updates.

        Returns an :class:`IngestReport`; ingesting zero events is a
        no-op that leaves sampling and serving bit-identical.
        """
        self.build_graph()
        self.parallel_engine()   # activates graph.parallel_executor, if any
        if self._mutator is None:
            self._mutator = GraphMutator(self.graph, seed=self.spec.seed)
        mutator = self._mutator
        lifecycle = self.spec.lifecycle
        if lifecycle.enabled and self._compactor is None:
            from repro.graph.lifecycle import GraphCompactor
            self._compactor = GraphCompactor(self.graph, lifecycle)
        streaming = self.spec.streaming
        report = IngestReport(graph_version=self.graph.version)
        chunk = None          # merged delta since the last flush point
        batch: list = []

        journal = self._ingest_journal()

        def _apply_batch(batch: Sequence) -> None:
            nonlocal chunk
            if journal is not None and not self._replaying:
                # Journal-before-apply: a crash between here and the
                # version bump leaves a WAL tail recover_from_wal replays.
                journal.append(self.graph.version, batch)
                report.journaled_batches += 1
            if fault_point("ingest.crash"):
                raise InjectedFault(
                    f"injected fault at ingest.crash (graph version "
                    f"{self.graph.version}, batch of {len(batch)})")
            delta = mutator.apply_sessions(batch)
            report.events += len(batch)
            report.micro_batches += 1
            report.new_edges += delta.num_new_edges
            for node_type, ids in delta.added_nodes.items():
                report.new_nodes[node_type] = \
                    report.new_nodes.get(node_type, 0) + int(ids.size)
            chunk = delta if chunk is None else chunk.merge(delta)
            if self._compactor is not None:
                self._compactor.observe(batch, delta)
                if report.micro_batches % lifecycle.compact_every == 0:
                    compaction = self._compactor.compact()
                    if compaction is not None:
                        report.compactions += 1
                        report.evicted_nodes += compaction.num_evicted()
                        report.removed_edges += compaction.removed_edges
                        chunk = chunk.merge(compaction)

        def _flush() -> None:
            """Propagate the accumulated chunk at a cadence point.

            With a refreshing server the chunk (plus any debt left by
            earlier ``refresh=False`` calls) goes through
            ``OnlineServer.refresh``, which also updates the model.
            Otherwise the model absorbs the chunk directly — same merged
            delta, same ``(seed, version)`` cold-start stream, so the two
            paths grow identical embeddings — and, when a server exists
            but ``refresh`` is off, the chunk is parked on
            ``self._pending_delta`` for the next refreshing ingest.
            """
            nonlocal chunk
            if chunk is None:
                return
            if self.server is not None and refresh:
                delta = chunk if self._pending_delta is None \
                    else self._pending_delta.merge(chunk)
                try:
                    refresh_report = self.server.refresh(delta)
                except RefreshError:
                    # Failure-atomic refresh: the server still serves the
                    # prior version (flagged degraded).  Park the merged
                    # delta — the next refresh retries it, and success
                    # clears the degradation.
                    self._pending_delta = delta
                    report.failed_refreshes += 1
                    chunk = None
                    return
                self._pending_delta = None
                report.refreshes += 1
                report.invalidated_cache_keys += \
                    refresh_report.invalidated_cache_keys
                report.refreshed_postings += refresh_report.refreshed_postings
            else:
                if self.model is not None:
                    self.model.on_graph_update(
                        chunk, rng=np.random.default_rng((self.spec.seed,
                                                          chunk.version)))
                if self.server is not None:
                    self._pending_delta = chunk if self._pending_delta is None \
                        else self._pending_delta.merge(chunk)
            chunk = None

        for event in events:
            batch.append(event)
            if len(batch) >= streaming.micro_batch_size:
                _apply_batch(batch)
                batch = []
                if report.micro_batches % streaming.refresh_every == 0:
                    _flush()
        if batch:
            _apply_batch(batch)
        _flush()
        report.graph_version = self.graph.version
        return report

    def _ingest_journal(self) -> Optional[IngestJournal]:
        """The spec's write-ahead log, opened lazily (``None`` when unset)."""
        if self.spec.streaming.wal_path is None:
            return None
        if self._journal is None:
            self._journal = IngestJournal(self.spec.streaming.wal_path)
        return self._journal

    def recover_from_wal(self, refresh: bool = True) -> IngestReport:
        """Replay the ingest journal after a crash; idempotent.

        Reads ``spec.streaming.wal_path`` in order and re-applies exactly
        the micro-batches the graph is missing: a record journaled at a
        version the graph has already passed is **skipped without touching
        anything** (re-applying an applied version is a strict no-op), the
        record matching the graph's current version is applied through the
        normal ingest path (model/server refresh semantics included), and
        a record *ahead* of the graph raises :class:`PipelineError` — the
        journal belongs to a different graph history.

        Run it from a fresh pipeline (same spec, same seed): the graph
        rebuilds from the dataset at version 0 and the replay walks the
        journal back to the pre-crash state, cold-start draws included,
        after which ``ingest`` may simply continue.  Replayed batches are
        not re-journaled.
        """
        journal = self._ingest_journal()
        if journal is None:
            raise PipelineError(
                "recover_from_wal needs spec.streaming.wal_path")
        self.build_graph()
        total = IngestReport(graph_version=self.graph.version)
        for version, sessions in journal.records():
            if version < self.graph.version:
                total.replay_skipped += 1
                continue
            if version > self.graph.version:
                raise PipelineError(
                    f"journal gap: record journaled at graph version "
                    f"{version} but the graph is at {self.graph.version}; "
                    f"the WAL does not describe this graph's history")
            self._replaying = True
            try:
                # One journal record is exactly one pre-crash micro-batch;
                # replaying it as one ingest call applies it as a single
                # batch (records never exceed the micro-batch size).
                part = self.ingest(sessions, refresh=refresh)
            finally:
                self._replaying = False
            total.events += part.events
            total.micro_batches += part.micro_batches
            total.refreshes += part.refreshes
            total.failed_refreshes += part.failed_refreshes
            total.new_edges += part.new_edges
            for node_type, count in part.new_nodes.items():
                total.new_nodes[node_type] = \
                    total.new_nodes.get(node_type, 0) + count
            total.invalidated_cache_keys += part.invalidated_cache_keys
            total.refreshed_postings += part.refreshed_postings
            total.compactions += part.compactions
            total.evicted_nodes += part.evicted_nodes
            total.removed_edges += part.removed_edges
        total.graph_version = self.graph.version
        return total
