"""Unified programmatic surface of the Zoomer reproduction.

Three pieces compose into one pipeline from data to serving:

* **Registries** — ``@register_model`` / ``@register_sampler`` /
  ``@register_dataset`` make every model, sampler, and dataset a named
  plugin; :func:`build_model`, :func:`build_sampler` and
  :func:`load_dataset` are the only factories the CLI, examples, and
  benchmarks use.
* **ExperimentSpec** — one declarative, JSON-round-trippable document that
  subsumes ``ZoomerConfig`` + ``TrainingConfig`` + the serving knobs and
  validates cross-layer consistency.
* **Pipeline** — the staged facade
  (``build_graph() -> fit() -> evaluate() -> deploy()``) whose ``deploy()``
  returns a :class:`~repro.api.pipeline.Deployment` handle over the fully
  wired sharded/batched ``OnlineServer`` (attribute access delegates, so it
  is usable exactly like the server itself; ``.daemon(spec)`` additionally
  starts the asyncio network tier)::

      from repro.api import ExperimentSpec, Pipeline

      server = Pipeline(ExperimentSpec()).fit().deploy()
      results = server.serve_batch([(0, 0), (1, 3)], k=10)

  Deployment is not the end of the pipeline: ``Pipeline.ingest(events)``
  streams new interaction sessions into the live graph (micro-batched,
  cadence-controlled by the spec's ``StreamingSpec``) and refreshes the
  deployed server's caches and indexes scoped to exactly what changed.

The legacy constructors (``ZoomerModel(graph, config)``, ``Trainer(model,
TrainingConfig(...))``, ``OnlineServer(model, ...)``) keep working unchanged;
the pipeline builds exactly those objects.
"""

# Only the dependency-free registry module is imported eagerly: the domain
# modules register themselves by importing ``repro.api.registry`` at their
# own import time, which first executes this package ``__init__`` — pulling
# in the spec/pipeline layers (and through them trainer/serving/data) at
# that point would re-enter the partially-initialized domain package.  The
# heavier layers load on first attribute access instead (PEP 562).
from repro.api.registry import (
    DATASETS,
    MODELS,
    SAMPLERS,
    Registry,
    RegistryEntry,
    RegistryError,
    build_model,
    build_sampler,
    dataset_examples,
    load_dataset,
    register_dataset,
    register_model,
    register_sampler,
)

_SPEC_EXPORTS = ("DaemonSpec", "DataSpec", "ExperimentSpec",
                 "ExperimentTierSpec", "FaultSpec", "LifecycleSpec",
                 "ModelSpec", "ParallelSpec", "ServingSpec", "StreamingSpec",
                 "TrainSpec")
_PIPELINE_EXPORTS = ("Deployment", "IngestReport", "Pipeline", "PipelineError")

__all__ = [
    "DATASETS",
    "MODELS",
    "SAMPLERS",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "build_model",
    "build_sampler",
    "dataset_examples",
    "load_dataset",
    "register_dataset",
    "register_model",
    "register_sampler",
    *_SPEC_EXPORTS,
    *_PIPELINE_EXPORTS,
]


def __getattr__(name: str):
    """Lazily load the spec/pipeline layers on first attribute access (PEP 562)."""
    if name in _SPEC_EXPORTS:
        from repro.api import spec
        return getattr(spec, name)
    if name in _PIPELINE_EXPORTS:
        from repro.api import pipeline
        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    """Advertise the lazily loaded exports alongside the eager ones."""
    return sorted(__all__)
