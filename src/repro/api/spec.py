"""Declarative experiment specification: one document from data to serving.

:class:`ExperimentSpec` subsumes the knobs that were previously threaded by
hand through ``ZoomerConfig`` + ``TrainingConfig`` + ad-hoc ``OnlineServer``
keyword arguments.  A spec is a plain dataclass tree that round-trips through
``to_dict`` / ``from_dict`` / JSON, validates cross-layer consistency (e.g.
presampling requires an engine-backed sampler, a random-walk sampler must
walk at least as deep as the fanout tree), and is the single input of
:class:`~repro.api.pipeline.Pipeline`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.registry import DATASETS, MODELS, SAMPLERS
from repro.training.trainer import TrainingConfig


def _from_mapping(cls, data: Mapping[str, Any], section: str):
    """Build dataclass ``cls`` from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise ValueError(f"spec section {section!r} must be a mapping, "
                         f"got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown key(s) {unknown} in spec section "
                         f"{section!r}; known keys: {sorted(known)}")
    return cls(**dict(data))


@dataclass
class DataSpec:
    """Which dataset to load and how to split it."""

    #: Registry name of the dataset (see ``repro.api.DATASETS``).
    name: str = "synthetic-taobao"
    #: Keyword arguments forwarded to the dataset factory (JSON-able).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Fraction of examples used for training (time-ordered split).
    train_fraction: float = 0.9
    #: Optional caps on the split sizes (``0`` disables the test set).
    max_train_examples: Optional[int] = None
    max_test_examples: Optional[int] = None


@dataclass
class ModelSpec:
    """Which model to build and its common hyper-parameters."""

    #: Registry name of the model (see ``repro.api.MODELS``).
    name: str = "zoomer"
    embedding_dim: int = 32
    fanouts: Tuple[int, ...] = (10, 5)
    #: Optional sampler override by registry name (tree-aggregation models).
    sampler: Optional[str] = None
    #: Keyword arguments for the sampler factory.
    sampler_params: Dict[str, Any] = field(default_factory=dict)
    #: Extra model keyword arguments (for Zoomer these land on the config:
    #: ablation switches, ``relevance_metric``, ``roi_downscale``, ...).
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Normalise ``fanouts`` to a tuple of ints (JSON lists round-trip)."""
        self.fanouts = tuple(int(k) for k in self.fanouts)


@dataclass
class TrainSpec:
    """Training knobs; mirrors :class:`repro.training.trainer.TrainingConfig`."""

    epochs: int = 3
    batch_size: int = 128
    learning_rate: float = 0.05
    optimizer: str = "adam"
    loss: str = "focal"
    focal_gamma: float = 2.0
    regularization_weight: float = 1e-6
    max_batches_per_epoch: Optional[int] = None
    eval_batch_size: int = 256
    presample_subgraphs: bool = False
    verbose: bool = False
    #: ``None`` inherits the experiment-level seed.
    seed: Optional[int] = None

    def validate(self) -> "TrainSpec":
        """Range checks; mirrors ``TrainingConfig.validate`` messages."""
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.loss not in ("focal", "bce"):
            raise ValueError("loss must be 'focal' or 'bce'")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.focal_gamma <= 0:
            raise ValueError("focal_gamma must be positive")
        if self.regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")
        if self.max_batches_per_epoch is not None \
                and self.max_batches_per_epoch <= 0:
            raise ValueError("max_batches_per_epoch must be positive when set")
        if not isinstance(self.presample_subgraphs, bool) \
                or not isinstance(self.verbose, bool):
            raise ValueError(
                "training.presample_subgraphs and training.verbose "
                "must be booleans")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError("training.seed must be an int (or None to "
                             "inherit the experiment seed)")
        return self


@dataclass
class StreamingSpec:
    """Streaming-ingestion knobs for :meth:`~repro.api.pipeline.Pipeline.ingest`.

    Incoming interaction events are grouped into micro-batches of
    ``micro_batch_size`` sessions; each micro-batch is applied to the live
    graph in one :meth:`~repro.graph.hetero_graph.HeteroGraph.apply_updates`
    call, and a deployed server is refreshed every ``refresh_every``
    micro-batches (plus once at the end of the stream, so it never lags a
    finished ingest).
    """

    #: Sessions per applied graph update.
    micro_batch_size: int = 64
    #: Server refresh cadence, counted in micro-batches.
    refresh_every: int = 1
    #: Optional write-ahead-log path: every micro-batch is journaled
    #: (JSON lines, keyed by the pre-apply graph version) before it is
    #: applied, and :meth:`~repro.api.pipeline.Pipeline.recover_from_wal`
    #: replays the journal idempotently after a crash.  ``None`` disables
    #: journaling.
    wal_path: Optional[str] = None


@dataclass
class FaultSpec:
    """Deterministic fault-injection knobs (see :mod:`repro.faults`).

    ``points`` maps injection-site names (from
    :data:`repro.faults.KNOWN_SITES`) to rule mappings with keys
    ``probability`` / ``at`` / ``max_fires``; an empty mapping (the
    default) means no plan is armed and every injection point stays a
    single ``None`` check.  ``seed=None`` inherits the experiment seed,
    so one spec document pins the whole fault sequence.
    """

    #: Site name -> fault-rule mapping (``probability``/``at``/``max_fires``).
    points: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Seed of the per-site Philox decision streams (``None`` inherits
    #: the experiment seed).
    seed: Optional[int] = None
    #: Injected delay for ``net.stall`` fires, milliseconds.
    stall_ms: float = 20.0

    def validate(self) -> "FaultSpec":
        """Check sites, rule keys and ranges by building the plan."""
        if not isinstance(self.points, Mapping):
            raise ValueError("faults.points must be a mapping of site name "
                             "to fault-rule mapping")
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or isinstance(self.seed, bool)):
            raise ValueError("faults.seed must be an int (or None to "
                             "inherit the experiment seed)")
        if self.stall_ms < 0:
            raise ValueError("faults.stall_ms must be non-negative")
        if self.points:
            # FaultPlan's constructor is the authority on site names and
            # rule shapes; building one surfaces its ValueError verbatim.
            self.to_plan(default_seed=0)
        return self

    def to_plan(self, default_seed: int = 0):
        """The armed :class:`~repro.faults.FaultPlan`, or ``None`` if empty."""
        if not self.points:
            return None
        from repro.faults import FaultPlan
        seed = default_seed if self.seed is None else self.seed
        return FaultPlan(self.points, seed=seed, stall_ms=self.stall_ms)


@dataclass
class LifecycleSpec:
    """Graph-lifecycle knobs: time decay, TTL eviction, windowed compaction.

    With ``enabled=True`` the pipeline attaches a
    :class:`~repro.graph.lifecycle.GraphCompactor` to its ingest loop and
    runs a compaction pass every ``compact_every`` micro-batches.  Each
    pass applies exponential edge-weight decay (``half_life``), prunes
    edges whose decayed weight fell under the effective floor (see
    :meth:`weight_floor`), tombstones nodes idle longer than ``node_ttl``
    and — when ``max_memory_bytes`` is set and exceeded — evicts the
    longest-idle nodes until the graph fits again.  All times are in the
    same unit as the session ``timestamp`` fields (seconds in the shipped
    datasets).  Disabled (the default) the streaming path is byte-for-byte
    the old append-only behaviour.
    """

    #: Master switch; ``False`` keeps the append-only streaming path.
    enabled: bool = False
    #: Edge-weight half-life in timestamp units (``0`` disables decay).
    half_life: float = 0.0
    #: Explicit weight floor: decayed edges below it are pruned
    #: (``0`` defers to the ``edge_ttl``-derived floor).
    min_weight: float = 0.0
    #: Edge time-to-live: an edge not reinforced for this long decays past
    #: the derived floor and is pruned (``0`` disables; needs ``half_life``).
    edge_ttl: float = 0.0
    #: Node time-to-live: nodes with no activity for this long are
    #: tombstoned (``0`` disables node eviction).
    node_ttl: float = 0.0
    #: Compaction cadence, counted in ingest micro-batches.
    compact_every: int = 4
    #: Soft memory budget for the graph (CSR + alias tables, bytes);
    #: ``0`` disables budget-pressure eviction.
    max_memory_bytes: int = 0

    def weight_floor(self) -> float:
        """The effective pruning threshold a compaction pass uses.

        An explicit ``min_weight`` wins; otherwise ``edge_ttl`` is
        translated into the weight a unit edge decays to after sitting
        idle for one TTL (``0.5 ** (edge_ttl / half_life)``), so "prune
        edges older than X" needs no per-edge timestamps.
        """
        if self.min_weight > 0.0:
            return self.min_weight
        if self.edge_ttl > 0.0 and self.half_life > 0.0:
            return float(0.5 ** (self.edge_ttl / self.half_life))
        return 0.0


@dataclass
class DaemonSpec:
    """Network serving-tier knobs (the :mod:`repro.serving.daemon` asyncio tier).

    The daemon puts the in-process micro-batching policy behind a TCP
    socket (newline-delimited JSON) and adds the production traffic
    behaviours an in-process call never needs: a bounded admission queue
    with load shedding once ``max_queue_depth`` admitted-but-unserved
    requests pile up, per-tenant token-bucket quotas, and graceful drain on
    shutdown (every admitted request is served before the socket closes).
    ``port=0`` binds an ephemeral port (the started daemon reports the real
    one), which is what tests and benchmarks use.
    """

    #: Interface to bind; loopback by default.
    host: str = "127.0.0.1"
    #: TCP port; ``0`` picks an ephemeral free port.
    port: int = 0
    #: Micro-batch size the daemon-side ``RequestBatcher`` dispatches at.
    max_batch_size: int = 32
    #: Partial-batch wait budget (the batcher's ``max_wait_ms``); the
    #: daemon's timer ``poll()`` enforces it even under idle traffic.
    max_wait_ms: float = 5.0
    #: Admitted-but-unserved requests allowed before arrivals are shed.
    max_queue_depth: int = 128
    #: What to do with an arrival that overflows the queue: ``"reject"``
    #: sheds the new arrival (429-style), ``"drop-oldest"`` shelves the
    #: oldest still-queued request in its favour (falling back to
    #: rejection when everything queued is already inside a forming batch).
    shed_policy: str = "reject"
    #: tenant name -> sustained requests/second (token-bucket rate).
    #: Tenants not listed are unmetered.
    tenant_quotas: Dict[str, float] = field(default_factory=dict)
    #: Token-bucket burst capacity; ``0`` defaults to one second of rate.
    quota_burst: float = 0.0

    def validate(self) -> "DaemonSpec":
        """Range checks plus the queue-vs-batch cross-check."""
        if not self.host:
            raise ValueError("daemon.host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("daemon.port must be in [0, 65535]")
        if self.max_batch_size < 1:
            raise ValueError("daemon.max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("daemon.max_wait_ms must be non-negative")
        if self.max_queue_depth < self.max_batch_size:
            raise ValueError(
                "daemon.max_queue_depth must be >= daemon.max_batch_size "
                f"({self.max_queue_depth} < {self.max_batch_size}): a full "
                "batch could never assemble before shedding kicks in")
        if self.shed_policy not in ("reject", "drop-oldest"):
            raise ValueError(
                "daemon.shed_policy must be 'reject' or 'drop-oldest', "
                f"got {self.shed_policy!r}")
        for tenant, rate in self.tenant_quotas.items():
            if not isinstance(tenant, str) or not tenant:
                raise ValueError(
                    "daemon.tenant_quotas keys must be non-empty strings")
            if rate <= 0:
                raise ValueError(
                    f"daemon.tenant_quotas[{tenant!r}] must be positive "
                    "(omit the tenant to leave it unmetered)")
        if self.quota_burst < 0:
            raise ValueError("daemon.quota_burst must be non-negative")
        return self


@dataclass
class ServingSpec:
    """Online-serving knobs; mirrors the ``OnlineServer`` constructor."""

    cache_capacity: int = 30
    ann_cells: int = 16
    ann_nprobe: int = 3
    posting_length: int = 100
    num_servers: int = 64
    use_inverted_index: bool = True
    num_shards: int = 1
    #: Serving read-path precision ("float32" halves ANN memory traffic;
    #: training stays float64 regardless).
    dtype: str = "float32"
    serve_batch_size: int = 32
    #: How many user/query nodes to warm the caches and inverted index with.
    warm_users: int = 20
    warm_queries: int = 20


@dataclass
class ExperimentTierSpec:
    """Serving-time experimentation knobs (the :mod:`repro.serving.experiment` tier).

    Describes how one :class:`~repro.serving.daemon.ServingDaemon` hosts
    several deployed server versions: the variant names (first is control),
    the deterministic traffic split (splitmix64 over ``(salt, user_id)``),
    and one of three modes —

    * **plain split**: ``fractions`` gives each variant's share of the
      reply path (the paper's Table IV rollout is
      ``fractions=(0.96, 0.04)``),
    * **shadow** (``shadow=True``): control serves every reply; the other
      variants score off-reply-path copies whose outcomes only feed
      metrics, so primary replies stay bit-identical to single-version
      serving,
    * **canary** (``canary_steps`` non-empty, exactly two variants): a
      :class:`~repro.serving.experiment.CanaryController` ramps the
      challenger through the steps and rolls back to control when the
      guardrail metric regresses beyond ``guardrail_drop`` with at least
      ``min_impressions`` impressions on both variants.

    The default (``variants=()``) means no experiment tier.
    """

    #: Variant names, control first; empty disables the tier.
    variants: Tuple[str, ...] = ()
    #: Experiment salt hashed with each user id; changing it re-shuffles
    #: the user -> variant assignment.
    salt: str = "exp"
    #: Per-variant reply-path traffic fractions (plain-split mode only;
    #: must sum to 1).  Empty in shadow and canary modes, where the split
    #: is implied (control-serves-all) or controller-owned.
    fractions: Tuple[float, ...] = ()
    #: Shadow mode: non-control variants score copies off the reply path.
    shadow: bool = False
    #: Challenger ramp schedule (strictly increasing fractions in (0, 1]).
    canary_steps: Tuple[float, ...] = ()
    #: Which ChannelMetrics property the canary guards ("ctr"/"ppc"/"rpm").
    guardrail_metric: str = "ctr"
    #: Relative regression that triggers rollback: the canary rolls back
    #: when challenger metric < (1 - guardrail_drop) * control metric.
    guardrail_drop: float = 0.2
    #: Impressions both variants need before the guardrail is evaluated.
    min_impressions: int = 200
    #: Healthy challenger impressions per ramp step before advancing.
    step_impressions: int = 200

    def __post_init__(self) -> None:
        """Normalise the tuple fields (JSON lists round-trip)."""
        self.variants = tuple(str(name) for name in self.variants)
        self.fractions = tuple(float(f) for f in self.fractions)
        self.canary_steps = tuple(float(s) for s in self.canary_steps)

    def validate(self) -> "ExperimentTierSpec":
        """Range checks plus the per-mode cross-checks."""
        if not self.salt or not isinstance(self.salt, str):
            raise ValueError("experiment.salt must be a non-empty string")
        if not isinstance(self.shadow, bool):
            raise ValueError("experiment.shadow must be a boolean")
        # Kept in sync with repro.serving.experiment.GUARDRAIL_METRICS
        # (pinned by tests/test_experiment_tier.py) without importing the
        # serving tier here.
        if self.guardrail_metric not in ("ctr", "ppc", "rpm"):
            raise ValueError(
                "experiment.guardrail_metric must be 'ctr', 'ppc', or "
                f"'rpm', got {self.guardrail_metric!r}")
        if not 0.0 < self.guardrail_drop < 1.0:
            raise ValueError("experiment.guardrail_drop must be in (0, 1)")
        for attr in ("min_impressions", "step_impressions"):
            value = getattr(self, attr)
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                raise ValueError(f"experiment.{attr} must be an int >= 1")
        if any(not name for name in self.variants):
            raise ValueError("experiment.variants must be non-empty strings")
        if len(set(self.variants)) != len(self.variants):
            raise ValueError(
                f"experiment.variants must be unique, got {self.variants}")
        if not self.variants:
            if self.fractions or self.canary_steps or self.shadow:
                raise ValueError(
                    "experiment.fractions / canary_steps / shadow need "
                    "experiment.variants (control first)")
            return self
        if len(self.variants) < 2:
            raise ValueError("an experiment needs at least two variants "
                             "(control first); to disable the tier leave "
                             "experiment.variants empty")
        if self.canary_steps:
            if self.shadow:
                raise ValueError(
                    "experiment.canary_steps and experiment.shadow are "
                    "mutually exclusive (a canary serves real traffic)")
            if len(self.variants) != 2:
                raise ValueError(
                    "a canary ramps exactly one challenger against the "
                    f"control (2 variants), got {len(self.variants)}")
            if self.fractions:
                raise ValueError(
                    "experiment.fractions is controller-owned in canary "
                    "mode; leave it empty")
            if any(not 0.0 < s <= 1.0 for s in self.canary_steps) \
                    or any(a >= b for a, b in zip(self.canary_steps,
                                                  self.canary_steps[1:])):
                raise ValueError(
                    "experiment.canary_steps must be strictly increasing "
                    f"fractions in (0, 1], got {self.canary_steps}")
        elif self.shadow:
            if self.fractions:
                raise ValueError(
                    "experiment.fractions is implied in shadow mode "
                    "(control serves every reply); leave it empty")
        else:
            if len(self.fractions) != len(self.variants):
                raise ValueError(
                    "experiment.fractions needs one entry per variant "
                    f"({len(self.variants)}), got {len(self.fractions)}")
            if any(f < 0.0 or f > 1.0 for f in self.fractions):
                raise ValueError(
                    f"experiment.fractions must be in [0, 1], "
                    f"got {self.fractions}")
            if abs(sum(self.fractions) - 1.0) > 1e-6:
                raise ValueError(
                    "experiment.fractions must sum to 1, "
                    f"got {sum(self.fractions)!r}")
        return self


@dataclass
class ParallelSpec:
    """Multi-core execution knobs (the :mod:`repro.parallel` engine).

    ``num_workers=0`` (the default) keeps the legacy single-core path.
    With ``num_workers >= 1`` the pipeline builds a
    :class:`~repro.parallel.engine.ParallelEngine` and wires it into
    training-side sampling (overlapped presampling), batched serving
    (request partitions fanned across workers) and streaming ingest
    (scoped alias / ANN rebuilds fanned across workers).

    ``backend="serial"`` runs the identical shard-keyed tasks in-process —
    the reference the shared backend is equivalence-tested against —
    while ``backend="shared"`` places the graph's CSR and alias buffers in
    shared memory and executes on a persistent spawn-based worker pool.
    Outputs are bit-identical across backends and worker counts under a
    fixed seed.
    """

    #: Worker processes (shared backend) / task slots (serial backend).
    num_workers: int = 0
    #: "serial" (in-process reference) or "shared" (worker pool).
    backend: str = "serial"


@dataclass
class ExperimentSpec:
    """A complete experiment: data -> model -> training -> serving -> streaming."""

    dataset: DataSpec = field(default_factory=DataSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    training: TrainSpec = field(default_factory=TrainSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    daemon: DaemonSpec = field(default_factory=DaemonSpec)
    streaming: StreamingSpec = field(default_factory=StreamingSpec)
    lifecycle: LifecycleSpec = field(default_factory=LifecycleSpec)
    parallel: ParallelSpec = field(default_factory=ParallelSpec)
    experiment: ExperimentTierSpec = field(default_factory=ExperimentTierSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 0

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (nested dataclasses become nested dicts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError("spec must be a mapping")
        sections = {"dataset": DataSpec, "model": ModelSpec,
                    "training": TrainSpec, "serving": ServingSpec,
                    "daemon": DaemonSpec, "streaming": StreamingSpec,
                    "lifecycle": LifecycleSpec, "parallel": ParallelSpec,
                    "experiment": ExperimentTierSpec, "faults": FaultSpec}
        unknown = sorted(set(data) - set(sections) - {"seed"})
        if unknown:
            raise ValueError(f"unknown spec section(s) {unknown}; known "
                             f"sections: {sorted(sections)} plus 'seed'")
        kwargs: Dict[str, Any] = {}
        for key, section_cls in sections.items():
            if key in data:
                kwargs[key] = _from_mapping(section_cls, data[key], key)
        if "seed" in data:
            kwargs["seed"] = int(data["seed"])
        return cls(**kwargs)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict` (kwargs forwarded to ``json.dumps``)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Inverse of :meth:`to_json`; rejects unknown keys."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Cross-layer validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ExperimentSpec":
        """Check intra-section ranges and cross-layer consistency.

        Registry lookups raise :class:`~repro.api.registry.RegistryError`
        listing the known names; everything else raises :class:`ValueError`.
        """
        # Registry names resolve (unknown names list the known ones).
        DATASETS.get(self.dataset.name)
        model_entry = MODELS.get(self.model.name)

        if not isinstance(self.dataset.params, Mapping):
            raise ValueError("dataset.params must be a mapping of factory "
                             "keyword arguments")
        for attr in ("params", "sampler_params"):
            if not isinstance(getattr(self.model, attr), Mapping):
                raise ValueError(f"model.{attr} must be a mapping of factory "
                                 f"keyword arguments")

        if not 0.0 < self.dataset.train_fraction < 1.0:
            raise ValueError("dataset.train_fraction must be in (0, 1)")
        for attr in ("max_train_examples", "max_test_examples"):
            value = getattr(self.dataset, attr)
            if value is not None and value < 0:
                raise ValueError(f"dataset.{attr} must be non-negative")

        if self.model.embedding_dim <= 0:
            raise ValueError("model.embedding_dim must be positive")
        if not self.model.fanouts or any(k <= 0 for k in self.model.fanouts):
            raise ValueError(
                "model.fanouts must be a non-empty tuple of positive ints")

        sampler_entry = None
        if self.model.sampler is not None:
            sampler_entry = SAMPLERS.get(self.model.sampler)
            if model_entry.metadata.get("config_class") is not None or \
                    not model_entry.metadata.get("accepts_sampler", False):
                raise ValueError(
                    f"model {model_entry.name!r} does not accept a sampler "
                    f"override (model.sampler={self.model.sampler!r})")
            # Fanout depth vs sampler depth: a walk-based sampler must walk
            # at least as many hops as the fanout tree is deep.
            depth_param = sampler_entry.metadata.get("depth_param")
            if depth_param is not None:
                depth = self.model.sampler_params.get(
                    depth_param, sampler_entry.metadata.get("default_depth"))
                if depth is not None and depth < len(self.model.fanouts):
                    raise ValueError(
                        f"sampler {sampler_entry.name!r} walks {depth} hop(s) "
                        f"({depth_param}={depth}) but model.fanouts="
                        f"{self.model.fanouts} needs depth "
                        f"{len(self.model.fanouts)}")

        if self.training.presample_subgraphs and sampler_entry is not None \
                and not sampler_entry.metadata.get("engine_backed", False):
            raise ValueError(
                f"training.presample_subgraphs requires an engine-backed "
                f"sampler, but {sampler_entry.name!r} samples per node")

        self.training.validate()

        serving = self.serving
        if serving.num_shards < 1:
            raise ValueError("serving.num_shards must be at least 1")
        if serving.num_servers < 1:
            raise ValueError("serving.num_servers must be at least 1")
        if not isinstance(serving.use_inverted_index, bool):
            raise ValueError("serving.use_inverted_index must be a boolean")
        if serving.serve_batch_size < 1:
            raise ValueError("serving.serve_batch_size must be at least 1")
        if serving.cache_capacity <= 0:
            raise ValueError("serving.cache_capacity must be positive")
        if serving.ann_cells <= 0 or serving.posting_length <= 0:
            raise ValueError(
                "serving.ann_cells and serving.posting_length must be positive")
        if not 1 <= serving.ann_nprobe <= serving.ann_cells:
            raise ValueError(
                "serving.ann_nprobe must be in [1, serving.ann_cells]")
        if serving.warm_users < 0 or serving.warm_queries < 0:
            raise ValueError("serving warm counts must be non-negative")

        self.daemon.validate()
        self.experiment.validate()

        if self.streaming.micro_batch_size < 1:
            raise ValueError("streaming.micro_batch_size must be at least 1")
        if self.streaming.refresh_every < 1:
            raise ValueError("streaming.refresh_every must be at least 1")
        if self.streaming.wal_path is not None \
                and not isinstance(self.streaming.wal_path, str):
            raise ValueError("streaming.wal_path must be a path string "
                             "(or None to disable journaling)")

        self.faults.validate()

        lifecycle = self.lifecycle
        for attr in ("half_life", "min_weight", "edge_ttl", "node_ttl"):
            if getattr(lifecycle, attr) < 0:
                raise ValueError(f"lifecycle.{attr} must be non-negative")
        if lifecycle.max_memory_bytes < 0:
            raise ValueError("lifecycle.max_memory_bytes must be non-negative")
        if lifecycle.enabled:
            if lifecycle.compact_every < 1:
                raise ValueError(
                    "lifecycle.compact_every must be at least 1 when enabled")
            if lifecycle.edge_ttl > 0.0 and lifecycle.half_life <= 0.0 \
                    and lifecycle.min_weight <= 0.0:
                raise ValueError(
                    "lifecycle.edge_ttl needs lifecycle.half_life (the TTL is "
                    "translated into a decayed-weight floor) or an explicit "
                    "lifecycle.min_weight")

        if serving.dtype not in ("float32", "float64"):
            raise ValueError(
                "serving.dtype must be 'float32' or 'float64', "
                f"got {serving.dtype!r}")
        if self.parallel.num_workers < 0:
            raise ValueError("parallel.num_workers must be non-negative")
        # Kept in sync with repro.parallel.engine.BACKENDS (pinned by
        # tests/test_parallel.py) without importing the engine here.
        if self.parallel.backend not in ("serial", "shared"):
            raise ValueError(
                "parallel.backend must be 'serial' or 'shared', "
                f"got {self.parallel.backend!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an int")
        return self

    # ------------------------------------------------------------------ #
    # Conversions to the legacy config objects (backward-compat shims)
    # ------------------------------------------------------------------ #
    def training_config(self) -> TrainingConfig:
        """The :class:`TrainingConfig` this spec describes."""
        t = self.training
        return TrainingConfig(
            epochs=t.epochs, batch_size=t.batch_size,
            learning_rate=t.learning_rate, optimizer=t.optimizer,
            loss=t.loss, focal_gamma=t.focal_gamma,
            regularization_weight=t.regularization_weight,
            max_batches_per_epoch=t.max_batches_per_epoch,
            eval_batch_size=t.eval_batch_size,
            presample_subgraphs=t.presample_subgraphs,
            verbose=t.verbose,
            seed=self.seed if t.seed is None else t.seed)

    def model_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.api.registry.build_model`."""
        m = self.model
        kwargs: Dict[str, Any] = dict(
            embedding_dim=m.embedding_dim, fanouts=m.fanouts, seed=self.seed,
            **m.params)
        if m.sampler is not None:
            kwargs["sampler"] = m.sampler
            kwargs["sampler_params"] = dict(m.sampler_params)
        return kwargs
