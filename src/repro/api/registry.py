"""Decorator-based plugin registries: models, samplers, datasets.

The registries are the repo's single factory surface.  Zoomer, every
baseline, every sampler, and the dataset generators register themselves with
``@register_model`` / ``@register_sampler`` / ``@register_dataset`` at import
time; the CLI, the :class:`~repro.api.pipeline.Pipeline` facade and the
benchmark harness all resolve names through :func:`build_model`,
:func:`build_sampler` and :func:`load_dataset` instead of keeping their own
name->class tables.  Adding a new scenario means registering it once — no
script edits.

This module deliberately imports nothing from the rest of :mod:`repro` so the
domain modules can import it without cycles; the built-in registrations live
next to the classes they register and are pulled in lazily on first lookup
(:func:`_ensure_builtins`).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple


class RegistryError(KeyError):
    """Unknown or duplicate registry name (message lists the known names)."""

    def __str__(self) -> str:
        """Plain message (KeyError would quote its argument unreadably)."""
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered plugin: its canonical name, factory, and metadata."""

    name: str
    factory: Callable[..., Any]
    metadata: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """A case-insensitive name -> factory registry with metadata."""

    def __init__(self, kind: str):
        """Create an empty registry for plugins of ``kind`` (e.g. "model")."""
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}   # canonical name -> entry
        self._index: Dict[str, str] = {}               # lowercase name/alias -> canonical

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, factory: Optional[Callable[..., Any]] = None,
                 aliases: Sequence[str] = (), **metadata: Any):
        """Register ``factory`` under ``name``; usable as a decorator.

        ``metadata`` is free-form and interpreted by the builder helpers
        (e.g. ``config_class`` for Zoomer-style models, ``engine_backed``
        for samplers, ``examples_attr`` for datasets).
        """

        def _add(obj: Callable[..., Any]) -> Callable[..., Any]:
            for key in (name, *aliases):
                existing = self._index.get(key.lower())
                if existing is not None and existing != name:
                    raise RegistryError(
                        f"{self.kind} name {key!r} is already registered "
                        f"(as {existing!r})")
            if name in self._entries:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered")
            self._entries[name] = RegistryEntry(name=name, factory=obj,
                                                metadata=dict(metadata))
            for key in (name, *aliases):
                self._index[key.lower()] = name
            return obj

        if factory is not None:
            return _add(factory)
        return _add

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> RegistryEntry:
        """Resolve ``name`` (case-insensitive); unknown names list known ones."""
        _ensure_builtins()
        canonical = self._index.get(str(name).lower())
        if canonical is None:
            known = ", ".join(sorted(self._entries))
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known {self.kind}s: {known}")
        return self._entries[canonical]

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the plugin registered under ``name``."""
        return self.get(name).factory(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """Canonical names of every registered plugin, sorted."""
        _ensure_builtins()
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        """Case-insensitive membership test over names and aliases."""
        _ensure_builtins()
        return str(name).lower() in self._index

    def __iter__(self) -> Iterator[str]:
        """Iterate the sorted canonical names."""
        return iter(self.names())

    def __len__(self) -> int:
        """Number of registered plugins."""
        _ensure_builtins()
        return len(self._entries)


#: The three global registries.
MODELS = Registry("model")
SAMPLERS = Registry("sampler")
DATASETS = Registry("dataset")


def register_model(name: str, aliases: Sequence[str] = (), **metadata: Any):
    """Class/function decorator adding a retrieval-model factory to ``MODELS``.

    Metadata keys understood by :func:`build_model`:

    * ``config_class`` — Zoomer-style models constructed as
      ``factory(graph, config_class(embedding_dim=..., fanouts=..., ...))``
      instead of flat keyword arguments.
    * ``accepts_sampler`` — the factory takes a ``sampler=`` keyword
      (the :class:`~repro.baselines.common.TreeAggregationModel` family).
    """
    return MODELS.register(name, aliases=aliases, **metadata)


def register_sampler(name: str, aliases: Sequence[str] = (), **metadata: Any):
    """Decorator adding a :class:`NeighborSampler` factory to ``SAMPLERS``.

    ``engine_backed=True`` marks samplers whose ``sample_batch`` runs on the
    vectorized graph engine (required for dataloader presampling).
    """
    return SAMPLERS.register(name, aliases=aliases, **metadata)


def register_dataset(name: str, aliases: Sequence[str] = (), **metadata: Any):
    """Decorator adding a dataset factory to ``DATASETS``.

    ``examples_attr`` names the attribute holding the labelled training
    examples on the returned dataset object (``"impressions"`` for the
    Taobao-style logs, ``"examples"`` for MovieLens-style triples).
    """
    return DATASETS.register(name, aliases=aliases, **metadata)


# ---------------------------------------------------------------------- #
# Builder helpers (the one true factory surface)
# ---------------------------------------------------------------------- #
def build_sampler(name: str, seed: int = 0, **params: Any):
    """Instantiate a registered neighbor sampler."""
    entry = SAMPLERS.get(name)
    return entry.factory(seed=seed, **params)


def build_model(name: str, graph: Any, *, embedding_dim: int = 32,
                fanouts: Sequence[int] = (10, 5), seed: int = 0,
                sampler: Optional[str] = None,
                sampler_params: Optional[Dict[str, Any]] = None,
                **params: Any):
    """Instantiate a registered retrieval model on ``graph``.

    The common knobs (``embedding_dim``, ``fanouts``, ``seed``) are spelled
    once here; everything in ``params`` is forwarded to the model (for
    Zoomer-style entries it lands on the config class, e.g. ablation flags or
    ``relevance_metric``).  ``sampler`` optionally overrides the model's
    neighbor sampler by registry name.
    """
    entry = MODELS.get(name)
    config_class = entry.metadata.get("config_class")
    if config_class is not None:
        if sampler is not None:
            raise RegistryError(
                f"model {entry.name!r} builds its own focal-biased sampler "
                f"and does not accept a sampler override")
        config = config_class(embedding_dim=embedding_dim,
                              fanouts=tuple(fanouts), seed=seed, **params)
        return entry.factory(graph, config)
    kwargs: Dict[str, Any] = dict(embedding_dim=embedding_dim,
                                  fanouts=tuple(fanouts), seed=seed, **params)
    if sampler is not None:
        if not entry.metadata.get("accepts_sampler", False):
            raise RegistryError(
                f"model {entry.name!r} does not accept a sampler override")
        kwargs["sampler"] = build_sampler(sampler, seed=seed,
                                          **(sampler_params or {}))
    return entry.factory(graph, **kwargs)


def load_dataset(name: str, **params: Any):
    """Generate/load a registered dataset."""
    entry = DATASETS.get(name)
    return entry.factory(**params)


def dataset_examples(name: str, dataset: Any):
    """The labelled examples of a dataset built by :func:`load_dataset`."""
    entry = DATASETS.get(name)
    return getattr(dataset, entry.metadata.get("examples_attr", "impressions"))


# ---------------------------------------------------------------------- #
# Built-in registrations
# ---------------------------------------------------------------------- #
#: Modules whose import registers the built-in plugins (decorators run at
#: import time).  Kept as names, not imports, to avoid cycles.
_BUILTIN_MODULES = (
    "repro.core.model",
    "repro.baselines",
    "repro.sampling",
    "repro.data",
)

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the domain modules so their registrations have run."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True   # set first: the imports re-enter this module
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
