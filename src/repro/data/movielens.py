"""Synthetic MovieLens-like dataset for the Table II comparison.

The paper constructs a heterogeneous graph from MovieLens 25M with three node
types — movies, users and tags — where user-movie edges come from ratings and
movie-tag edges from machine-learned relevance scores, keeping the top-5 tags
per movie (Section VII-A).  The prediction task is a triple ``(user, tag,
movie)`` with a binary label indicating whether the user interacted with the
movie under the given tag.

Since the real dataset cannot be downloaded offline, this module generates a
synthetic stand-in with the same schema and the same task: genres play the
role of the latent structure, users have genre preferences, movies belong to
genres, and tags are genre-flavoured descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.registry import register_dataset
from repro.data.logs import ImpressionRecord
from repro.graph.builder import GraphBuilder
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import EdgeType, NodeType, movielens_schema


@dataclass
class MovieLensConfig:
    """Configuration of the synthetic MovieLens-like generator."""

    num_users: int = 250
    num_movies: int = 400
    num_tags: int = 60
    num_genres: int = 8
    feature_dim: int = 16
    ratings_per_user: float = 15.0
    tags_per_movie: int = 5          # the paper keeps top-5 tags per movie
    user_genre_interests: int = 2
    feature_noise: float = 0.35
    negatives_per_positive: int = 2
    rating_noise: float = 0.15        # off-preference rating probability
    seed: int = 21

    def validate(self) -> None:
        if min(self.num_users, self.num_movies, self.num_tags) <= 0:
            raise ValueError("node counts must be positive")
        if self.num_genres <= 1:
            raise ValueError("need at least two genres")
        if self.tags_per_movie <= 0:
            raise ValueError("tags_per_movie must be positive")


@dataclass
class MovieLensDataset:
    """Generated MovieLens-like graph plus labelled (user, tag, movie) triples."""

    config: MovieLensConfig
    graph: HeteroGraph
    examples: List[ImpressionRecord]   # query_id field holds the tag id
    user_features: np.ndarray
    tag_features: np.ndarray
    movie_features: np.ndarray
    movie_genres: np.ndarray
    tag_genres: np.ndarray
    user_genre_preferences: np.ndarray
    ratings: np.ndarray  # (num_ratings, 3): user, movie, rating value in [1, 5]


def generate_movielens_dataset(
        config: Optional[MovieLensConfig] = None) -> MovieLensDataset:
    """Generate the synthetic MovieLens-like dataset used by Table II."""
    config = config if config is not None else MovieLensConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    genre_vectors = rng.normal(size=(config.num_genres, config.feature_dim))
    genre_vectors /= np.linalg.norm(genre_vectors, axis=1, keepdims=True)

    def noisy(center: np.ndarray, noise: float) -> np.ndarray:
        vector = center + noise * rng.normal(size=center.shape)
        return vector / np.linalg.norm(vector)

    movie_genres = rng.integers(0, config.num_genres, size=config.num_movies)
    movie_features = np.vstack([noisy(genre_vectors[g], config.feature_noise)
                                for g in movie_genres])

    tag_genres = rng.integers(0, config.num_genres, size=config.num_tags)
    tag_features = np.vstack([noisy(genre_vectors[g], config.feature_noise * 0.7)
                              for g in tag_genres])

    user_genre_preferences = np.vstack([
        rng.choice(config.num_genres, size=config.user_genre_interests, replace=False)
        for _ in range(config.num_users)
    ])
    user_features = np.vstack([
        noisy(genre_vectors[prefs].mean(axis=0), config.feature_noise)
        for prefs in user_genre_preferences
    ])

    movies_by_genre = [np.where(movie_genres == g)[0] for g in range(config.num_genres)]
    tags_by_genre = [np.where(tag_genres == g)[0] for g in range(config.num_genres)]

    # --- Ratings (user-movie edges) and labelled triples.
    ratings: List[Tuple[int, int, float]] = []
    examples: List[ImpressionRecord] = []
    interacted: Dict[int, set] = {u: set() for u in range(config.num_users)}
    for user_id in range(config.num_users):
        prefs = user_genre_preferences[user_id]
        num_ratings = max(1, rng.poisson(config.ratings_per_user))
        for _ in range(num_ratings):
            if rng.random() < config.rating_noise:
                genre = int(rng.integers(0, config.num_genres))
            else:
                genre = int(rng.choice(prefs))
            pool = movies_by_genre[genre]
            if pool.size == 0:
                movie_id = int(rng.integers(0, config.num_movies))
            else:
                movie_id = int(rng.choice(pool))
            in_preference = movie_genres[movie_id] in prefs
            rating = float(np.clip(rng.normal(4.2 if in_preference else 2.5, 0.7), 1, 5))
            ratings.append((user_id, movie_id, rating))
            interacted[user_id].add(movie_id)
            # Positive triple: user interacted with movie under a matching tag.
            tag_pool = tags_by_genre[movie_genres[movie_id]]
            tag_id = int(rng.choice(tag_pool)) if tag_pool.size else \
                int(rng.integers(0, config.num_tags))
            examples.append(ImpressionRecord(
                user_id=user_id, query_id=tag_id, item_id=movie_id, label=1))
            for _ in range(config.negatives_per_positive):
                negative_movie = int(rng.integers(0, config.num_movies))
                negative_tag = int(rng.integers(0, config.num_tags))
                examples.append(ImpressionRecord(
                    user_id=user_id, query_id=negative_tag,
                    item_id=negative_movie,
                    label=int(negative_movie in interacted[user_id]
                              and tag_genres[negative_tag] == movie_genres[negative_movie])))

    # --- Movie-tag relevance edges: top-k most relevant tags per movie.
    relevance = movie_features @ tag_features.T   # (movies, tags) cosine-ish
    builder = GraphBuilder(feature_dim=config.feature_dim,
                           schema=movielens_schema(config.feature_dim))
    builder.set_node_features(NodeType.USER, user_features)
    builder.set_node_features(NodeType.TAG, tag_features)
    builder.set_node_features(NodeType.MOVIE, movie_features)

    rating_edges = [(u, m, r) for u, m, r in ratings]
    builder.add_weighted_edges(NodeType.USER, EdgeType.RATING, NodeType.MOVIE,
                               rating_edges, symmetric=True)
    movie_tag_edges = []
    for movie_id in range(config.num_movies):
        top_tags = np.argsort(-relevance[movie_id])[:config.tags_per_movie]
        for tag_id in top_tags:
            score = float(max(relevance[movie_id, tag_id], 0.05))
            movie_tag_edges.append((movie_id, int(tag_id), score))
    builder.add_weighted_edges(NodeType.MOVIE, EdgeType.RELEVANCE, NodeType.TAG,
                               movie_tag_edges, symmetric=True)
    graph = builder.build()

    return MovieLensDataset(
        config=config,
        graph=graph,
        examples=examples,
        user_features=user_features,
        tag_features=tag_features,
        movie_features=movie_features,
        movie_genres=movie_genres,
        tag_genres=tag_genres,
        user_genre_preferences=user_genre_preferences,
        ratings=np.array(ratings, dtype=np.float64) if ratings else np.zeros((0, 3)),
    )


@register_dataset("movielens", examples_attr="examples")
def build_movielens(**config_fields) -> MovieLensDataset:
    """Registry factory: explicit :class:`MovieLensConfig` fields (or defaults)."""
    config = MovieLensConfig(**config_fields) if config_fields else None
    return generate_movielens_dataset(config)
