"""Behavior-log schema: search sessions and impression records.

User behavior under search is summarised in the paper as the tuple
``{u_k, q_k, i_k}`` — user ``u_k`` searched query ``q_k`` and clicked item
``i_k`` (Section V-B).  A :class:`SearchSession` groups all clicks under one
posed query; an :class:`ImpressionRecord` is a single labelled (shown,
clicked-or-not) event used for CTR training and the A/B test simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.api.registry import register_dataset


def sessions_in_time_order(sessions: Iterable) -> List:
    """Sort sessions by their ``timestamp`` attribute (stable).

    Events without a timestamp sort as ``0.0`` and keep their recorded
    order — the replay contract of :class:`repro.streaming.ReplayDriver`.
    """
    return sorted(sessions, key=lambda s: float(getattr(s, "timestamp", 0.0)))


def split_sessions_at(sessions: Sequence, fraction: float) -> Tuple[List, List]:
    """Time-ordered split of a session log into a warm prefix and a tail.

    The prefix (first ``fraction`` of events by timestamp) typically builds
    the initial ``behavior-logs`` graph; the tail is replayed as the live
    stream.  ``fraction`` must lie in ``(0, 1)``.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    ordered = sessions_in_time_order(sessions)
    cut = max(1, int(len(ordered) * fraction))
    return ordered[:cut], ordered[cut:]


@dataclass(frozen=True)
class SearchSession:
    """One search session: a user poses a query and clicks a list of items."""

    user_id: int
    query_id: int
    clicked_items: Tuple[int, ...]
    timestamp: float = 0.0
    intent_category: int = -1  # ground-truth intent (synthetic data only)

    def __post_init__(self):
        if self.user_id < 0 or self.query_id < 0:
            raise ValueError("user_id and query_id must be non-negative")
        object.__setattr__(self, "clicked_items", tuple(self.clicked_items))

    @property
    def num_clicks(self) -> int:
        return len(self.clicked_items)

    def as_tuples(self) -> List[Tuple[int, int, int]]:
        """Expand the session into ``(user, query, item)`` focal tuples."""
        return [(self.user_id, self.query_id, item) for item in self.clicked_items]


@dataclass(frozen=True)
class ImpressionRecord:
    """A single labelled impression: item shown under (user, query), clicked?"""

    user_id: int
    query_id: int
    item_id: int
    label: int           # 1 = clicked, 0 = not clicked
    timestamp: float = 0.0
    price: float = 0.0   # per-click price for sponsored items (RPM/PPC metrics)

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValueError("label must be 0 or 1")
        if self.price < 0:
            raise ValueError("price must be non-negative")


@dataclass
class BehaviorLogDataset:
    """A retrieval graph built from user-supplied behavior logs."""

    graph: "HeteroGraph"  # noqa: F821 - imported lazily below
    sessions: List[SearchSession]
    impressions: List[ImpressionRecord]


@register_dataset("behavior-logs", examples_attr="impressions")
def build_behavior_log_dataset(sessions: Sequence,
                               feature_dim: int = 16,
                               negatives_per_positive: int = 2,
                               seed: int = 0) -> BehaviorLogDataset:
    """Registry factory: ingest raw search sessions into a retrieval graph.

    ``sessions`` is a sequence of :class:`SearchSession` objects or JSON-able
    ``(user_id, query_id, [clicked_item, ...])`` triples — the paper's log
    ingestion stage.  Node counts are inferred from the largest ids seen;
    node features are random unit vectors (real deployments would attach
    content features), and labelled impressions pair each click with
    ``negatives_per_positive`` sampled negatives.
    """
    # Imported here: the log schema is this module's only import-time
    # dependency, so the trainer can import it without the graph stack.
    from repro.graph.builder import GraphBuilder
    from repro.graph.schema import NodeType

    import numpy as np

    parsed: List[SearchSession] = []
    for session in sessions:
        if isinstance(session, SearchSession):
            parsed.append(session)
        else:
            user_id, query_id, clicked = session
            parsed.append(SearchSession(user_id=int(user_id),
                                        query_id=int(query_id),
                                        clicked_items=tuple(int(i) for i in clicked)))
    if not parsed:
        raise ValueError("behavior-logs dataset needs at least one session")

    num_users = 1 + max(s.user_id for s in parsed)
    num_queries = 1 + max(s.query_id for s in parsed)
    num_items = 1 + max((max(s.clicked_items) for s in parsed if s.clicked_items),
                        default=0)

    rng = np.random.default_rng(seed)

    def _unit_features(count: int) -> np.ndarray:
        features = rng.normal(size=(count, feature_dim))
        return features / np.linalg.norm(features, axis=1, keepdims=True)

    builder = GraphBuilder(feature_dim=feature_dim)
    builder.set_node_features(NodeType.USER, _unit_features(num_users))
    builder.set_node_features(NodeType.QUERY, _unit_features(num_queries))
    builder.set_node_features(NodeType.ITEM, _unit_features(num_items))
    for session in parsed:
        builder.add_session(session.user_id, session.query_id,
                            session.clicked_items)

    impressions: List[ImpressionRecord] = []
    for session in parsed:
        for item_id in session.clicked_items:
            impressions.append(ImpressionRecord(
                user_id=session.user_id, query_id=session.query_id,
                item_id=item_id, label=1, timestamp=session.timestamp))
            for _ in range(negatives_per_positive):
                impressions.append(ImpressionRecord(
                    user_id=session.user_id, query_id=session.query_id,
                    item_id=int(rng.integers(0, num_items)), label=0,
                    timestamp=session.timestamp))

    return BehaviorLogDataset(graph=builder.build(), sessions=parsed,
                              impressions=impressions)
