"""Behavior-log schema: search sessions and impression records.

User behavior under search is summarised in the paper as the tuple
``{u_k, q_k, i_k}`` — user ``u_k`` searched query ``q_k`` and clicked item
``i_k`` (Section V-B).  A :class:`SearchSession` groups all clicks under one
posed query; an :class:`ImpressionRecord` is a single labelled (shown,
clicked-or-not) event used for CTR training and the A/B test simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class SearchSession:
    """One search session: a user poses a query and clicks a list of items."""

    user_id: int
    query_id: int
    clicked_items: Tuple[int, ...]
    timestamp: float = 0.0
    intent_category: int = -1  # ground-truth intent (synthetic data only)

    def __post_init__(self):
        if self.user_id < 0 or self.query_id < 0:
            raise ValueError("user_id and query_id must be non-negative")
        object.__setattr__(self, "clicked_items", tuple(self.clicked_items))

    @property
    def num_clicks(self) -> int:
        return len(self.clicked_items)

    def as_tuples(self) -> List[Tuple[int, int, int]]:
        """Expand the session into ``(user, query, item)`` focal tuples."""
        return [(self.user_id, self.query_id, item) for item in self.clicked_items]


@dataclass(frozen=True)
class ImpressionRecord:
    """A single labelled impression: item shown under (user, query), clicked?"""

    user_id: int
    query_id: int
    item_id: int
    label: int           # 1 = clicked, 0 = not clicked
    timestamp: float = 0.0
    price: float = 0.0   # per-click price for sponsored items (RPM/PPC metrics)

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValueError("label must be 0 or 1")
        if self.price < 0:
            raise ValueError("price must be non-negative")
