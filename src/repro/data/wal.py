"""Write-ahead log for streaming ingest: journal first, apply second.

:class:`IngestJournal` makes :meth:`~repro.api.pipeline.Pipeline.ingest`
crash-safe.  Before a micro-batch of sessions is applied to the live graph
it is appended here as one JSON line keyed by the **pre-apply** graph
version — so a process that dies between journal and apply (or mid-apply)
leaves a journal whose tail names exactly the batches the graph is
missing.  Recovery replays the journal through the same apply path:
records whose version is *behind* the graph are already applied and skip
(re-applying an applied version is a strict no-op — the replay compares
versions, it never re-mutates), the record *matching* the graph's version
applies, and a version *ahead* of the graph is a gap — a corrupt or
foreign journal — and errors.

One record per line keeps appends atomic at the filesystem level (a torn
final line is detected and ignored as the crash victim) and the journal
human-readable::

    {"version": 3, "sessions": [[user, query, [items...], ts, intent], ...]}
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.data.logs import SearchSession


def _session_row(session: Any) -> List[Any]:
    """One session's journal row (accepts sessions or bare tuples)."""
    if isinstance(session, SearchSession):
        return [int(session.user_id), int(session.query_id),
                [int(item) for item in session.clicked_items],
                float(session.timestamp), int(session.intent_category)]
    user_id, query_id, items = session
    return [int(user_id), int(query_id), [int(item) for item in items],
            0.0, -1]


def _session_from_row(row: Sequence[Any]) -> SearchSession:
    """Inverse of :func:`_session_row`."""
    user_id, query_id, items, timestamp, intent = row
    return SearchSession(user_id=int(user_id), query_id=int(query_id),
                         clicked_items=tuple(int(item) for item in items),
                         timestamp=float(timestamp),
                         intent_category=int(intent))


class IngestJournal:
    """Append-only JSON-lines journal of pre-apply ingest micro-batches."""

    def __init__(self, path: str):
        self.path = str(path)

    def append(self, pre_version: int, sessions: Sequence[Any]) -> None:
        """Journal one micro-batch *before* it is applied.

        ``pre_version`` is the graph version the batch will be applied on
        top of.  The line is flushed and fsynced before returning, so a
        crash after ``append`` never loses the batch.
        """
        record = {"version": int(pre_version),
                  "sessions": [_session_row(session) for session in sessions]}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> Iterator[Tuple[int, List[SearchSession]]]:
        """Yield ``(pre_version, sessions)`` in journal order.

        A torn final line (the batch a crash interrupted mid-append) is
        ignored; a torn line *followed by* intact records is corruption
        and raises.
        """
        if not os.path.exists(self.path):
            return
        torn_at: int = -1
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                if torn_at >= 0:
                    raise ValueError(
                        f"{self.path}: undecodable journal line {torn_at + 1} "
                        f"followed by more records — the journal is corrupt, "
                        f"not merely torn by a crash")
                try:
                    record: Dict[str, Any] = json.loads(line)
                    version = int(record["version"])
                    sessions = [_session_from_row(row)
                                for row in record["sessions"]]
                except (ValueError, KeyError, TypeError, IndexError):
                    torn_at = number
                    continue
                yield version, sessions

    def __len__(self) -> int:
        """Number of intact journal records."""
        return sum(1 for _ in self.records())

    def clear(self) -> None:
        """Drop the journal file (after a checkpoint makes it redundant)."""
        if os.path.exists(self.path):
            os.remove(self.path)
