"""Temporal session logs: a drifting, timestamped stream for lifecycle tests.

The graph-lifecycle subsystem (decay, TTL eviction, windowed compaction) only
matters on a stream whose *interest distribution moves*: items go out of
fashion, users churn, new cohorts arrive.  The MGTCOM-style temporal session
logs surveyed in SNIPPETS.md (Enron / Weibo / Digg) have exactly this shape;
this module generates a synthetic stand-in with the same structural
properties:

* every session carries a real ``timestamp``, spread uniformly over a
  configurable ``horizon``;
* the *active cohort* of users and items slides forward over time — a node
  is hot for a contiguous time window and then (almost) never interacted
  with again, so node-TTL eviction has genuine dead weight to reclaim;
* queries follow the item cohort (a query's popular items move with it), so
  posting lists and ANN cells drift too.

The registry dataset ``temporal-logs`` builds the usual retrieval graph from
the *warm prefix* of the stream (first ``warm_fraction`` of events, the part
a deployment would have batch-ingested before going live) and exposes the
tail as :attr:`TemporalLogDataset.replay_sessions` — the live stream
``benchmarks/bench_graph_lifecycle.py`` replays against a deployed pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.api.registry import register_dataset
from repro.data.logs import (
    BehaviorLogDataset,
    SearchSession,
    build_behavior_log_dataset,
    split_sessions_at,
)


@dataclass
class TemporalLogDataset:
    """A behavior-log graph plus the timestamped tail left to replay."""

    #: Retrieval graph built from the warm prefix of the stream.
    graph: "HeteroGraph"  # noqa: F821 - built by the logs factory
    #: The warm-prefix sessions the graph was built from.
    sessions: List[SearchSession]
    #: Labelled impressions of the warm prefix (training examples).
    impressions: List
    #: The stream tail: timestamped sessions to replay against the live
    #: pipeline (time-ordered; later ids may be cold-start nodes).
    replay_sessions: List[SearchSession]
    #: Total time span of the generated stream.
    horizon: float


def generate_temporal_sessions(num_users: int = 60, num_items: int = 120,
                               num_queries: int = 24,
                               num_sessions: int = 600,
                               horizon: float = 1000.0,
                               cohort_fraction: float = 0.3,
                               clicks_per_session: int = 3,
                               seed: int = 0) -> List[SearchSession]:
    """Generate a drifting, timestamped session stream.

    At stream progress ``p`` (0 at the start, 1 at the horizon) the active
    cohort is the contiguous ``cohort_fraction`` slice of the user / item /
    query id spaces starting at ``p * (1 - cohort_fraction)`` — ids below
    it have gone cold, ids above it have not arrived yet.  Sessions draw
    their user, query and clicked items from the current cohort, so every
    node's activity is confined to one time window of the stream.
    """
    if not 0.0 < cohort_fraction <= 1.0:
        raise ValueError("cohort_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    timestamps = np.sort(rng.uniform(0.0, horizon, size=num_sessions))

    def _cohort(count: int, progress: float) -> tuple:
        width = max(1, int(count * cohort_fraction))
        start = int(progress * (count - width))
        return start, start + width

    sessions: List[SearchSession] = []
    for ts in timestamps:
        progress = ts / horizon
        u_lo, u_hi = _cohort(num_users, progress)
        q_lo, q_hi = _cohort(num_queries, progress)
        i_lo, i_hi = _cohort(num_items, progress)
        clicks = rng.integers(i_lo, i_hi,
                              size=rng.integers(1, clicks_per_session + 1))
        sessions.append(SearchSession(
            user_id=int(rng.integers(u_lo, u_hi)),
            query_id=int(rng.integers(q_lo, q_hi)),
            clicked_items=tuple(int(i) for i in np.unique(clicks)),
            timestamp=float(ts)))
    return sessions


@register_dataset("temporal-logs", examples_attr="impressions")
def build_temporal_log_dataset(num_users: int = 60, num_items: int = 120,
                               num_queries: int = 24,
                               num_sessions: int = 600,
                               horizon: float = 1000.0,
                               cohort_fraction: float = 0.3,
                               clicks_per_session: int = 3,
                               warm_fraction: float = 0.3,
                               feature_dim: int = 16,
                               negatives_per_positive: int = 2,
                               seed: int = 0) -> TemporalLogDataset:
    """Registry factory: drifting session stream split into warm + replay.

    The warm prefix (first ``warm_fraction`` of events by timestamp) is fed
    through the ``behavior-logs`` builder — same graph rules, same labelled
    impressions — and the tail is kept as ``replay_sessions`` for the
    streaming benchmarks.  Ids that only appear in the tail are *not* in
    the built graph; replaying creates them as cold-start nodes, which is
    exactly the arrival side of the churn the lifecycle must absorb.
    """
    sessions = generate_temporal_sessions(
        num_users=num_users, num_items=num_items, num_queries=num_queries,
        num_sessions=num_sessions, horizon=horizon,
        cohort_fraction=cohort_fraction,
        clicks_per_session=clicks_per_session, seed=seed)
    warm, tail = split_sessions_at(sessions, warm_fraction)
    base: BehaviorLogDataset = build_behavior_log_dataset(
        warm, feature_dim=feature_dim,
        negatives_per_positive=negatives_per_positive, seed=seed)
    return TemporalLogDataset(graph=base.graph, sessions=base.sessions,
                              impressions=base.impressions,
                              replay_sessions=list(tail), horizon=horizon)
