"""Train/test split utilities for labelled impression records.

The paper splits MovieLens 80/20 and the Taobao graphs 90/10
(Section VII-A); the split fraction is a parameter here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.logs import ImpressionRecord


def train_test_split_examples(
        examples: Sequence[ImpressionRecord],
        train_fraction: float = 0.9,
        shuffle: bool = True,
        seed: int = 0) -> Tuple[List[ImpressionRecord], List[ImpressionRecord]]:
    """Split impressions into train and test lists.

    Parameters
    ----------
    examples:
        The labelled impressions to split.
    train_fraction:
        Fraction of examples assigned to the training split (paper: 0.9 for
        Taobao graphs, 0.8 for MovieLens).
    shuffle:
        Shuffle before splitting (deterministic given ``seed``).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be strictly between 0 and 1")
    examples = list(examples)
    if not examples:
        return [], []
    order = np.arange(len(examples))
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)
    cut = int(round(train_fraction * len(examples)))
    cut = min(max(cut, 1), len(examples) - 1)
    train = [examples[i] for i in order[:cut]]
    test = [examples[i] for i in order[cut:]]
    return train, test


def examples_to_arrays(examples: Sequence[ImpressionRecord]
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert impressions to ``(users, queries, items, labels)`` arrays."""
    if not examples:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, np.zeros(0, dtype=np.float64)
    users = np.array([e.user_id for e in examples], dtype=np.int64)
    queries = np.array([e.query_id for e in examples], dtype=np.int64)
    items = np.array([e.item_id for e in examples], dtype=np.int64)
    labels = np.array([e.label for e in examples], dtype=np.float64)
    return users, queries, items, labels
