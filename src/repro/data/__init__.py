"""Dataset substrates: behavior-log schema and synthetic dataset generators.

The paper evaluates on proprietary Taobao behavior logs (three graph scales)
and on MovieLens 25M.  Neither is available offline, so this package provides
synthetic generators that reproduce the *structural* properties those models
exploit (heterogeneous node types, session click chains, category-coherent
intents, interest drift, noisy long histories); see DESIGN.md §2 for the
substitution rationale.
"""

from repro.data.logs import (
    ImpressionRecord,
    SearchSession,
    sessions_in_time_order,
    split_sessions_at,
)
from repro.data.synthetic import (
    SyntheticTaobaoConfig,
    SyntheticTaobaoDataset,
    generate_taobao_dataset,
    SCALE_PRESETS,
)
from repro.data.movielens import (
    MovieLensConfig,
    MovieLensDataset,
    generate_movielens_dataset,
)
from repro.data.splits import train_test_split_examples
from repro.data.wal import IngestJournal
from repro.data.temporal import (
    TemporalLogDataset,
    build_temporal_log_dataset,
    generate_temporal_sessions,
)

__all__ = [
    "SearchSession",
    "ImpressionRecord",
    "sessions_in_time_order",
    "split_sessions_at",
    "SyntheticTaobaoConfig",
    "SyntheticTaobaoDataset",
    "generate_taobao_dataset",
    "SCALE_PRESETS",
    "MovieLensConfig",
    "MovieLensDataset",
    "generate_movielens_dataset",
    "train_test_split_examples",
    "IngestJournal",
    "TemporalLogDataset",
    "build_temporal_log_dataset",
    "generate_temporal_sessions",
]
