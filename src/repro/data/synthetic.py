"""Synthetic Taobao-like behavior logs and retrieval graphs.

The paper's industrial datasets are proprietary Taobao logs at three scales
(million / hundred-million / billion nodes; Section VII-A).  This module
generates synthetic equivalents at laptop scale that preserve the structural
properties the Zoomer mechanisms exploit:

* **Category-coherent intents** — items, queries and users live in a latent
  category space; a query targets one category and the items clicked under it
  mostly belong to that category.
* **Interest drift** — successive sessions of the same user draw their intent
  from the user's (multi-category) interest profile, so consecutive queries
  have low similarity (motivating Fig. 4b).
* **Information overload** — a configurable fraction of clicks are noise from
  unrelated categories, and long user histories accumulate many categories,
  so only a small region of a user's neighborhood is relevant to a given
  focal interest (motivating Fig. 4c and the ROI idea).
* **Skewed popularity** — item popularity follows a Zipf law, as in real
  e-commerce traffic.

The generator also emits labelled impressions for CTR training (clicked
positives plus sampled negatives) and keeps the ground-truth category of
every node so retrieval quality and interpretability experiments have an
oracle to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.api.registry import register_dataset
from repro.data.logs import ImpressionRecord, SearchSession
from repro.graph.builder import GraphBuilder
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import NodeType


@dataclass
class SyntheticTaobaoConfig:
    """Configuration of the synthetic Taobao-like dataset generator."""

    num_users: int = 200
    num_queries: int = 150
    num_items: int = 400
    num_categories: int = 12
    feature_dim: int = 16
    sessions_per_user: float = 8.0
    clicks_per_session: int = 4
    user_interests: int = 3        # categories per user interest profile
    noise_click_prob: float = 0.25  # probability a click is off-category noise
    intent_drift_prob: float = 0.35  # probability a session leaves the profile
    negatives_per_positive: int = 2
    zipf_exponent: float = 1.1
    feature_noise: float = 0.35
    similarity_edges: bool = True
    seed: int = 0

    def validate(self) -> None:
        if min(self.num_users, self.num_queries, self.num_items) <= 0:
            raise ValueError("node counts must be positive")
        if self.num_categories <= 1:
            raise ValueError("need at least two categories")
        if not 0.0 <= self.noise_click_prob <= 1.0:
            raise ValueError("noise_click_prob must be in [0, 1]")
        if not 0.0 <= self.intent_drift_prob <= 1.0:
            raise ValueError("intent_drift_prob must be in [0, 1]")
        if self.clicks_per_session <= 0:
            raise ValueError("clicks_per_session must be positive")


#: Laptop-scale stand-ins for the paper's three industrial graph scales.
SCALE_PRESETS: Dict[str, SyntheticTaobaoConfig] = {
    "million": SyntheticTaobaoConfig(
        num_users=150, num_queries=120, num_items=320, sessions_per_user=7.0,
        num_categories=10, seed=11),
    "hundred-million": SyntheticTaobaoConfig(
        num_users=380, num_queries=280, num_items=800, sessions_per_user=8.0,
        num_categories=14, seed=12),
    "billion": SyntheticTaobaoConfig(
        num_users=900, num_queries=650, num_items=1900, sessions_per_user=9.0,
        num_categories=18, seed=13),
}


@dataclass
class SyntheticTaobaoDataset:
    """A generated dataset: graph, logs, labelled impressions and oracles."""

    config: SyntheticTaobaoConfig
    graph: HeteroGraph
    sessions: List[SearchSession]
    impressions: List[ImpressionRecord]
    user_features: np.ndarray
    query_features: np.ndarray
    item_features: np.ndarray
    user_interest_categories: np.ndarray   # (num_users, user_interests)
    query_categories: np.ndarray           # (num_queries,)
    item_categories: np.ndarray            # (num_items,)
    category_vectors: np.ndarray           # (num_categories, feature_dim)
    item_prices: np.ndarray                # per-click price (sponsored items)

    @property
    def num_nodes(self) -> int:
        return self.graph.total_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.total_edges

    def positives(self) -> List[ImpressionRecord]:
        """All clicked impressions."""
        return [rec for rec in self.impressions if rec.label == 1]

    def items_in_category(self, category: int) -> np.ndarray:
        """Item ids whose ground-truth category is ``category``."""
        return np.where(self.item_categories == category)[0]


def _category_vectors(num_categories: int, feature_dim: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Well-separated unit vectors, one per latent category."""
    vectors = rng.normal(size=(num_categories, feature_dim))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors


def _noisy_member(center: np.ndarray, noise: float,
                  rng: np.random.Generator) -> np.ndarray:
    vector = center + noise * rng.normal(size=center.shape)
    return vector / np.linalg.norm(vector)


def generate_taobao_dataset(
        config: Optional[SyntheticTaobaoConfig] = None,
        scale: Optional[str] = None) -> SyntheticTaobaoDataset:
    """Generate a synthetic Taobao-like dataset.

    Either pass an explicit ``config`` or a ``scale`` preset name
    (``"million"``, ``"hundred-million"``, ``"billion"``).
    """
    if config is None:
        if scale is not None:
            if scale not in SCALE_PRESETS:
                raise KeyError(f"unknown scale preset {scale!r}; "
                               f"choose from {sorted(SCALE_PRESETS)}")
            config = SCALE_PRESETS[scale]
        else:
            config = SyntheticTaobaoConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    category_vectors = _category_vectors(config.num_categories, config.feature_dim, rng)

    # --- Item side: category assignment (roughly balanced), Zipf popularity.
    item_categories = rng.integers(0, config.num_categories, size=config.num_items)
    item_features = np.vstack([
        _noisy_member(category_vectors[c], config.feature_noise, rng)
        for c in item_categories
    ])
    popularity = 1.0 / np.arange(1, config.num_items + 1) ** config.zipf_exponent
    popularity = popularity[rng.permutation(config.num_items)]
    item_prices = np.round(rng.lognormal(mean=0.0, sigma=0.6, size=config.num_items), 2)

    # --- Query side: each query targets one category.
    query_categories = rng.integers(0, config.num_categories, size=config.num_queries)
    query_features = np.vstack([
        _noisy_member(category_vectors[c], config.feature_noise * 0.8, rng)
        for c in query_categories
    ])

    # --- User side: interest profiles over a few categories.
    user_interest_categories = np.vstack([
        rng.choice(config.num_categories, size=config.user_interests, replace=False)
        for _ in range(config.num_users)
    ])
    user_features = np.vstack([
        _noisy_member(category_vectors[cats].mean(axis=0), config.feature_noise, rng)
        for cats in user_interest_categories
    ])

    # Pre-index queries and items per category for fast sampling.
    queries_by_category = [np.where(query_categories == c)[0]
                           for c in range(config.num_categories)]
    items_by_category = [np.where(item_categories == c)[0]
                         for c in range(config.num_categories)]

    def _sample_query(category: int) -> int:
        pool = queries_by_category[category]
        if pool.size == 0:
            return int(rng.integers(0, config.num_queries))
        return int(rng.choice(pool))

    def _sample_item(category: int) -> int:
        pool = items_by_category[category]
        if pool.size == 0:
            return int(rng.integers(0, config.num_items))
        weights = popularity[pool]
        weights = weights / weights.sum()
        return int(rng.choice(pool, p=weights))

    # --- Sessions and labelled impressions.
    sessions: List[SearchSession] = []
    impressions: List[ImpressionRecord] = []
    timestamp = 0.0
    for user_id in range(config.num_users):
        num_sessions = max(1, rng.poisson(config.sessions_per_user))
        profile = user_interest_categories[user_id]
        for _ in range(num_sessions):
            timestamp += float(rng.exponential(1.0))
            if rng.random() < config.intent_drift_prob:
                intent = int(rng.integers(0, config.num_categories))
            else:
                intent = int(rng.choice(profile))
            query_id = _sample_query(intent)
            num_clicks = max(1, rng.poisson(config.clicks_per_session))
            clicked: List[int] = []
            for _ in range(num_clicks):
                if rng.random() < config.noise_click_prob:
                    noise_category = int(rng.integers(0, config.num_categories))
                    item_id = _sample_item(noise_category)
                else:
                    item_id = _sample_item(intent)
                clicked.append(item_id)
                impressions.append(ImpressionRecord(
                    user_id=user_id, query_id=query_id, item_id=item_id,
                    label=1, timestamp=timestamp, price=float(item_prices[item_id])))
                for _ in range(config.negatives_per_positive):
                    negative = int(rng.integers(0, config.num_items))
                    impressions.append(ImpressionRecord(
                        user_id=user_id, query_id=query_id, item_id=negative,
                        label=0, timestamp=timestamp,
                        price=float(item_prices[negative])))
            sessions.append(SearchSession(
                user_id=user_id, query_id=query_id,
                clicked_items=tuple(clicked), timestamp=timestamp,
                intent_category=intent))

    # --- Build the heterogeneous retrieval graph from the logs.
    builder = GraphBuilder(feature_dim=config.feature_dim)
    builder.set_node_features(NodeType.USER, user_features)
    builder.set_node_features(NodeType.QUERY, query_features)
    builder.set_node_features(NodeType.ITEM, item_features)
    for session in sessions:
        builder.add_session(session.user_id, session.query_id, session.clicked_items)
    if config.similarity_edges:
        # Title terms: shared per category plus per-node specifics, so MinHash
        # similarity recovers category structure (the cold-start signal).
        query_terms = {q: _title_terms(query_categories[q], q, rng_seed=config.seed)
                       for q in range(config.num_queries)}
        item_terms = {i: _title_terms(item_categories[i], 10_000 + i,
                                      rng_seed=config.seed)
                      for i in range(config.num_items)}
        builder.add_similarity_edges(query_terms, item_terms, threshold=0.25)
    graph = builder.build()

    return SyntheticTaobaoDataset(
        config=config,
        graph=graph,
        sessions=sessions,
        impressions=impressions,
        user_features=user_features,
        query_features=query_features,
        item_features=item_features,
        user_interest_categories=user_interest_categories,
        query_categories=query_categories,
        item_categories=item_categories,
        category_vectors=category_vectors,
        item_prices=item_prices,
    )


def _title_terms(category: int, node_key: int, rng_seed: int,
                 shared_terms: int = 4, specific_terms: int = 3) -> List[int]:
    """Title terms: a few category-shared tokens plus node-specific tokens."""
    rng = np.random.default_rng((rng_seed * 7_919 + node_key) & 0xFFFFFFFF)
    shared = [int(category) * 100 + t for t in range(shared_terms)]
    specific = rng.integers(100_000, 200_000, size=specific_terms).tolist()
    return shared + [int(s) for s in specific]


@register_dataset("synthetic-taobao", aliases=("taobao",),
                  examples_attr="impressions")
def build_synthetic_taobao(scale: Optional[str] = None,
                           **config_fields) -> SyntheticTaobaoDataset:
    """Registry factory: a scale preset name or explicit config fields."""
    if scale is not None and config_fields:
        raise ValueError("pass either scale= or explicit config fields, not both")
    if config_fields:
        return generate_taobao_dataset(SyntheticTaobaoConfig(**config_fields))
    return generate_taobao_dataset(scale=scale)
