"""Trainer for retrieval models (Zoomer and baselines).

Implements the training recipe of Section VII-A: focal cross-entropy (focal
weight 2) or plain BCE, L2 regularisation, Adam or SGD, mini-batches of focal
tuples, and evaluation with AUC / MAE / RMSE / HitRate@K.  The trainer also
records wall-clock cost and iteration counts so the efficiency experiments
(Figs. 10 and 12) can compare methods on time-to-quality.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.logs import ImpressionRecord
from repro.models.base import RetrievalModel
from repro.ndarray import functional as F
from repro.ndarray.tensor import no_grad
from repro.nn.optim import Adam, Optimizer, SGD
from repro.sampling.base import NeighborSampler
from repro.training.dataloader import Batch, ImpressionDataLoader, PresampleConfig
from repro.training.metrics import (
    MetricReport,
    auc_score,
    hit_rate_at_k,
    mean_absolute_error,
    root_mean_squared_error,
)


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run."""

    epochs: int = 3
    batch_size: int = 128
    learning_rate: float = 0.05
    optimizer: str = "adam"
    loss: str = "focal"              # "focal" (paper) or "bce"
    focal_gamma: float = 2.0
    regularization_weight: float = 1e-6
    max_batches_per_epoch: Optional[int] = None
    eval_batch_size: int = 256
    seed: int = 0
    verbose: bool = False
    #: Pre-sample each mini-batch's ego sub-graphs in the dataloader with
    #: the vectorized engine and hand them to the model (models without a
    #: ``prime_sampled_trees`` hook silently ignore the setting).
    presample_subgraphs: bool = False

    def validate(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.loss not in ("focal", "bce"):
            raise ValueError("loss must be 'focal' or 'bce'")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.focal_gamma <= 0:
            raise ValueError("focal_gamma must be positive")
        if self.regularization_weight < 0:
            raise ValueError("regularization_weight must be non-negative")
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")
        if self.max_batches_per_epoch is not None \
                and self.max_batches_per_epoch <= 0:
            raise ValueError("max_batches_per_epoch must be positive when set")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-able); inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingConfig":
        """Rebuild a config from :meth:`to_dict` output; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown TrainingConfig key(s): {unknown}")
        return cls(**data)


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    model_name: str
    epoch_losses: List[float]
    training_seconds: float
    iterations: int
    examples_seen: int
    final_metrics: Optional[MetricReport] = None
    epoch_aucs: List[float] = field(default_factory=list)
    reached_target_auc: Optional[bool] = None
    time_to_target: Optional[float] = None


class Trainer:
    """Trains and evaluates a :class:`RetrievalModel`."""

    def __init__(self, model: RetrievalModel,
                 config: Optional[TrainingConfig] = None,
                 parallel_engine=None):
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self.config.validate()
        self.optimizer = self._build_optimizer()
        #: Optional :class:`~repro.parallel.engine.ParallelEngine` handed to
        #: the presampling dataloader so subgraph materialization overlaps
        #: the optimisation step (``presample_subgraphs`` only).
        self.parallel_engine = parallel_engine

    def _build_optimizer(self) -> Optimizer:
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(params, lr=self.config.learning_rate)
        return SGD(params, lr=self.config.learning_rate)

    def _presample_config(self) -> Optional[PresampleConfig]:
        """Dataloader presampling spec, when enabled and model-supported.

        Only engine-backed samplers (those overriding ``sample_batch``)
        participate: per-node policies like random-walk visit counting or
        cluster sampling have semantics the engine's draws would silently
        replace, so those models keep sampling for themselves.
        """
        if not self.config.presample_subgraphs:
            return None
        if not hasattr(self.model, "prime_sampled_trees"):
            return None
        sampler = getattr(self.model, "sampler", None)
        if sampler is not None and \
                type(sampler).sample_batch is NeighborSampler.sample_batch:
            return None
        return PresampleConfig(
            graph=self.model.graph,
            fanouts=tuple(getattr(self.model, "fanouts", (10, 5))),
            user_type=self.model.user_type,
            query_type=self.model.query_type,
            weighted=getattr(sampler, "engine_weighted", True),
            seed=self.config.seed,
            engine=self.parallel_engine)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_batch(self, batch: Batch) -> float:
        """One optimisation step; returns the batch loss."""
        self.model.train()
        if (batch.has_presampled_subgraphs
                and hasattr(self.model, "prime_sampled_trees")):
            self.model.prime_sampled_trees(batch.user_trees or {},
                                           batch.query_trees or {})
        self.optimizer.zero_grad()
        probabilities = self.model.forward_batch(batch.user_ids, batch.query_ids,
                                                 batch.item_ids)
        if self.config.loss == "focal":
            loss = F.focal_cross_entropy(probabilities, batch.labels,
                                         gamma=self.config.focal_gamma)
        else:
            loss = F.binary_cross_entropy(probabilities, batch.labels)
        if self.config.regularization_weight:
            loss = loss + F.l2_regularization(self.model.parameters(),
                                              self.config.regularization_weight)
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def train(self, train_examples: Sequence[ImpressionRecord],
              test_examples: Optional[Sequence[ImpressionRecord]] = None,
              target_auc: Optional[float] = None) -> TrainingResult:
        """Full training loop.

        When ``target_auc`` is given, evaluation runs after every epoch and
        training stops early once the target is reached (the paper's Fig. 10
        measures time-to-AUC-0.6).
        """
        loader = ImpressionDataLoader(train_examples,
                                      batch_size=self.config.batch_size,
                                      seed=self.config.seed,
                                      presample=self._presample_config())
        epoch_losses: List[float] = []
        epoch_aucs: List[float] = []
        iterations = 0
        examples_seen = 0
        reached = None
        time_to_target = None
        start = time.perf_counter()
        for epoch in range(self.config.epochs):
            batch_losses = []
            for batch_index, batch in enumerate(loader.epoch()):
                if (self.config.max_batches_per_epoch is not None
                        and batch_index >= self.config.max_batches_per_epoch):
                    break
                batch_losses.append(self.train_batch(batch))
                iterations += 1
                examples_seen += len(batch)
            epoch_loss = float(np.mean(batch_losses)) if batch_losses else 0.0
            epoch_losses.append(epoch_loss)
            if self.config.verbose:
                print(f"[{self.model.name}] epoch {epoch + 1}: loss={epoch_loss:.4f}")
            if target_auc is not None and test_examples:
                report = self.evaluate(test_examples)
                epoch_aucs.append(report.auc)
                if report.auc >= target_auc:
                    reached = True
                    time_to_target = time.perf_counter() - start
                    break
        elapsed = time.perf_counter() - start
        if target_auc is not None and reached is None:
            reached = False
        final_metrics = self.evaluate(test_examples) if test_examples else None
        return TrainingResult(
            model_name=self.model.name,
            epoch_losses=epoch_losses,
            training_seconds=elapsed,
            iterations=iterations,
            examples_seen=examples_seen,
            final_metrics=final_metrics,
            epoch_aucs=epoch_aucs,
            reached_target_auc=reached,
            time_to_target=time_to_target,
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def predict(self, examples: Sequence[ImpressionRecord]) -> np.ndarray:
        """Predicted click probabilities for labelled impressions."""
        self.model.eval()
        scores: List[np.ndarray] = []
        loader = ImpressionDataLoader(examples,
                                      batch_size=self.config.eval_batch_size,
                                      shuffle=False)
        with no_grad():
            for batch in loader.epoch():
                probabilities = self.model.forward_batch(
                    batch.user_ids, batch.query_ids, batch.item_ids)
                scores.append(probabilities.numpy().reshape(-1).copy())
        self.model.train()
        if not scores:
            return np.zeros(0)
        return np.concatenate(scores)

    def evaluate(self, examples: Sequence[ImpressionRecord]) -> MetricReport:
        """AUC / MAE / RMSE on labelled impressions."""
        labels = np.array([e.label for e in examples], dtype=np.float64)
        scores = self.predict(examples)
        return MetricReport(
            model_name=self.model.name,
            auc=auc_score(labels, scores),
            mae=mean_absolute_error(labels, scores),
            rmse=root_mean_squared_error(labels, scores),
        )

    def evaluate_hit_rate(self, positive_examples: Sequence[ImpressionRecord],
                          ks: Sequence[int] = (100, 200, 300),
                          candidate_pool: Optional[int] = None,
                          max_requests: int = 50,
                          seed: int = 0) -> Dict[int, float]:
        """HitRate@K over positive impressions.

        For each request the model retrieves from a candidate pool (all items
        by default, or a random subset of ``candidate_pool`` items that always
        contains the clicked item) and we check whether the clicked item lands
        in the top-K.
        """
        rng = np.random.default_rng(seed)
        positives = [e for e in positive_examples if e.label == 1]
        if not positives:
            return {k: 0.0 for k in ks}
        if len(positives) > max_requests:
            picks = rng.choice(len(positives), size=max_requests, replace=False)
            positives = [positives[i] for i in picks]
        num_items = self.model.graph.num_nodes[self.model.item_node_type()]
        ranked_lists: List[np.ndarray] = []
        clicked: List[int] = []
        for example in positives:
            if candidate_pool is not None and candidate_pool < num_items:
                pool = rng.choice(num_items, size=candidate_pool, replace=False)
                if example.item_id not in pool:
                    pool[0] = example.item_id
            else:
                pool = np.arange(num_items)
            scores = self.model.score_items(example.user_id, example.query_id, pool)
            order = np.argsort(-scores)
            ranked_lists.append(pool[order])
            clicked.append(example.item_id)
        return {k: hit_rate_at_k(ranked_lists, clicked, k) for k in ks}
