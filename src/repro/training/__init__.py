"""Training infrastructure: dataloaders, metrics and the trainer.

The trainer consumes any :class:`~repro.models.base.RetrievalModel`
(Zoomer or a baseline) and a list of labelled impressions, optimises the
focal / binary cross-entropy with L2 regularisation, and reports the metrics
used in the paper's evaluation: AUC, HitRate@K, MAE and RMSE.
"""

from repro.training.dataloader import Batch, ImpressionDataLoader, PresampleConfig
from repro.training.metrics import (
    auc_score,
    hit_rate_at_k,
    mean_absolute_error,
    root_mean_squared_error,
    MetricReport,
)
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "ImpressionDataLoader",
    "Batch",
    "PresampleConfig",
    "auc_score",
    "hit_rate_at_k",
    "mean_absolute_error",
    "root_mean_squared_error",
    "MetricReport",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
