"""Mini-batch dataloader over labelled impressions (focal tuples).

Each training example is a focal tuple ``{u_k, q_k, i_k}`` with a binary
click label.  The loader shuffles per epoch, yields fixed-size batches as
numpy arrays, and can optionally generate additional random negatives on the
fly (the "mixed negative sampling" commonly used with twin-tower models).

With a :class:`PresampleConfig` the loader also emits pre-sampled mini-batch
sub-graphs: the unique user and query egos of every batch are expanded with
the graph engine's vectorized ``sample_subgraph_batch`` (one batched pass
per ego type instead of a per-node sampling loop inside the model), and the
trainer hands the resulting trees to any model exposing
``prime_sampled_trees``.

When the presample config carries a
:class:`~repro.parallel.engine.ParallelEngine`, subgraph materialization
additionally *overlaps the training step*: the loader keeps a one-batch
lookahead, submitting the next batch's shard draws to the worker pool
before yielding the current batch, and collects them when the trainer asks
for the next batch.  Draws are keyed per ``(seed, shard, graph version,
batch counter)``, so the emitted trees are bit-identical for the serial and
shared backends and for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.data.logs import ImpressionRecord
from repro.graph.hetero_graph import HeteroGraph
from repro.sampling.base import SampledNode


@dataclass
class PresampleConfig:
    """How the loader pre-samples ego sub-graphs for each mini-batch."""

    graph: HeteroGraph
    fanouts: Tuple[int, ...] = (10, 5)
    user_type: str = "user"
    query_type: str = "query"
    weighted: bool = True
    seed: int = 0
    #: Optional :class:`~repro.parallel.engine.ParallelEngine`.  When set,
    #: each batch's subgraphs are drawn shard-parallel with keyed Philox
    #: streams and the next batch's draws overlap the current training
    #: step (one-batch lookahead).
    engine: Optional[object] = None

    def validate(self) -> None:
        if not self.fanouts or any(k <= 0 for k in self.fanouts):
            raise ValueError("fanouts must be a non-empty positive tuple")


@dataclass
class Batch:
    """One mini-batch of focal tuples.

    ``user_trees`` / ``query_trees`` (present when the loader pre-samples)
    map each distinct ego id in the batch to its sampled neighborhood tree.
    """

    user_ids: np.ndarray
    query_ids: np.ndarray
    item_ids: np.ndarray
    labels: np.ndarray
    user_trees: Optional[Dict[int, SampledNode]] = field(default=None,
                                                         repr=False)
    query_trees: Optional[Dict[int, SampledNode]] = field(default=None,
                                                          repr=False)

    def __len__(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def has_presampled_subgraphs(self) -> bool:
        return self.user_trees is not None or self.query_trees is not None


class ImpressionDataLoader:
    """Shuffling mini-batch iterator over impression records."""

    def __init__(self, examples: Sequence[ImpressionRecord], batch_size: int = 128,
                 shuffle: bool = True, seed: int = 0,
                 extra_negatives: int = 0, num_items: Optional[int] = None,
                 presample: Optional[PresampleConfig] = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if extra_negatives < 0:
            raise ValueError("extra_negatives must be non-negative")
        if extra_negatives > 0 and not num_items:
            raise ValueError("num_items is required when extra_negatives > 0")
        if presample is not None:
            presample.validate()
        self.examples = list(examples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.extra_negatives = extra_negatives
        self.num_items = num_items
        self.presample = presample
        self._sample_rng = np.random.default_rng(
            presample.seed if presample is not None else 0)
        #: Monotonic engine batch counter (two keyed draws per batch: user
        #: egos, then query egos); advances deterministically with the
        #: loader's iteration order, never with worker scheduling.
        self._engine_batch_id = 0
        self._rng = np.random.default_rng(seed)
        self._users = np.array([e.user_id for e in self.examples], dtype=np.int64)
        self._queries = np.array([e.query_id for e in self.examples], dtype=np.int64)
        self._items = np.array([e.item_id for e in self.examples], dtype=np.int64)
        self._labels = np.array([e.label for e in self.examples], dtype=np.float64)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        if not self.examples:
            return 0
        return int(np.ceil(len(self.examples) / self.batch_size))

    @property
    def num_examples(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[Batch]:
        return self.epoch()

    def epoch(self) -> Iterator[Batch]:
        """Yield one epoch of batches (reshuffled if ``shuffle``)."""
        if not self.examples:
            return
        order = np.arange(len(self.examples))
        if self.shuffle:
            self._rng.shuffle(order)
        chunks = [order[start:start + self.batch_size]
                  for start in range(0, len(order), self.batch_size)]
        if self.presample is not None and self.presample.engine is not None:
            yield from self._epoch_prefetched(chunks)
            return
        for index in chunks:
            batch = self._materialize(index)
            if self.presample is not None:
                batch.user_trees = self._presample_trees(
                    self.presample.user_type, batch.user_ids)
                batch.query_trees = self._presample_trees(
                    self.presample.query_type, batch.query_ids)
            yield batch

    def _materialize(self, index: np.ndarray) -> Batch:
        """Slice (and optionally negative-augment) one batch of tuples."""
        users = self._users[index]
        queries = self._queries[index]
        items = self._items[index]
        labels = self._labels[index]
        if self.extra_negatives:
            users, queries, items, labels = self._augment_negatives(
                users, queries, items, labels)
        return Batch(users, queries, items, labels)

    def _epoch_prefetched(self, chunks) -> Iterator[Batch]:
        """Engine-backed epoch with a one-batch sampling lookahead.

        Batch ``i+1``'s shard draws are submitted to the engine *before*
        batch ``i`` is yielded, so with the shared backend the workers
        materialize the next subgraphs while the trainer runs the current
        optimisation step.  Stream keys advance with the (deterministic)
        submission order, so results never depend on timing.
        """
        engine = self.presample.engine
        pending = []
        try:
            for index in chunks:
                batch = self._materialize(index)
                submitted = []
                for node_type, node_ids in (
                        (self.presample.user_type, batch.user_ids),
                        (self.presample.query_type, batch.query_ids)):
                    unique_ids = np.unique(node_ids)
                    token = engine.sample_subgraph_batch_async(
                        node_type, unique_ids, self.presample.fanouts,
                        seed=self.presample.seed,
                        batch_id=self._engine_batch_id,
                        weighted=self.presample.weighted)
                    self._engine_batch_id += 1
                    submitted.append((unique_ids, token))
                pending.append((batch, submitted))
                if len(pending) > 1:
                    yield self._finish_prefetched(engine, *pending.pop(0))
            while pending:
                yield self._finish_prefetched(engine, *pending.pop(0))
        finally:
            # An abandoned epoch (max_batches_per_epoch break, error) still
            # consumes its in-flight lookahead so no result is stranded.
            for _, submitted in pending:
                for _, token in submitted:
                    try:
                        engine.collect(token)
                    # repro: allow[EXC001] -- drain must not mask the original error
                    except Exception:   # pragma: no cover - teardown path
                        pass

    def _finish_prefetched(self, engine, batch: Batch, submitted) -> Batch:
        """Collect a prefetched batch's subgraphs and attach the trees."""
        trees = []
        for unique_ids, token in submitted:
            subgraphs = engine.collect(token)
            trees.append({int(node_id): tree for node_id, tree
                          in zip(unique_ids, subgraphs.to_trees())})
        batch.user_trees, batch.query_trees = trees
        return batch

    def _presample_trees(self, node_type: str,
                         node_ids: np.ndarray) -> Dict[int, SampledNode]:
        """Expand the batch's unique egos of one type in one vectorized pass."""
        unique_ids = np.unique(node_ids)
        subgraphs = self.presample.graph.sample_subgraph_batch(
            node_type, unique_ids, self.presample.fanouts,
            rng=self._sample_rng, weighted=self.presample.weighted)
        return {int(node_id): tree
                for node_id, tree in zip(unique_ids, subgraphs.to_trees())}

    def _augment_negatives(self, users, queries, items, labels):
        positives = labels > 0.5
        num_new = int(positives.sum()) * self.extra_negatives
        if num_new == 0:
            return users, queries, items, labels
        source = np.where(positives)[0]
        picks = np.repeat(source, self.extra_negatives)
        negative_items = self._rng.integers(0, self.num_items, size=num_new)
        users = np.concatenate([users, users[picks]])
        queries = np.concatenate([queries, queries[picks]])
        items = np.concatenate([items, negative_items])
        labels = np.concatenate([labels, np.zeros(num_new)])
        return users, queries, items, labels
