"""Evaluation metrics (paper Section VII-A).

* **AUC** — area under the ROC curve over labelled (user, query, item)
  impressions; the paper's primary relevance metric.
* **HitRate@K** — fraction of clicked items that appear in the model's
  top-K retrieved list for their request.
* **MAE / RMSE** — regression errors on the predicted probabilities, reported
  for the MovieLens comparison (Table II).

The online metrics CTR, PPC and RPM are computed by the A/B-test simulator in
:mod:`repro.experiments.ab_test`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np


def auc_score(labels: Sequence[float], scores: Sequence[float]) -> float:
    """Area under the ROC curve (rank-based Mann-Whitney formulation).

    Returns 0.5 when only one class is present (an undefined AUC), which keeps
    tiny evaluation splits from crashing a benchmark sweep.
    """
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    positives = labels > 0.5
    num_pos = int(positives.sum())
    num_neg = int(labels.size - num_pos)
    if num_pos == 0 or num_neg == 0:
        return 0.5
    # Average ranks handle ties correctly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    rank_position = 1
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average_rank = 0.5 * (rank_position + rank_position + (j - i))
        ranks[order[i:j + 1]] = average_rank
        rank_position += (j - i) + 1
        i = j + 1
    rank_sum_pos = ranks[positives].sum()
    auc = (rank_sum_pos - num_pos * (num_pos + 1) / 2.0) / (num_pos * num_neg)
    return float(auc)


def mean_absolute_error(labels: Sequence[float], scores: Sequence[float]) -> float:
    """Mean absolute error between labels and predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.size == 0:
        return 0.0
    return float(np.mean(np.abs(labels - scores)))


def root_mean_squared_error(labels: Sequence[float],
                            scores: Sequence[float]) -> float:
    """Root mean squared error between labels and predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((labels - scores) ** 2)))


def hit_rate_at_k(ranked_item_lists: Sequence[Sequence[int]],
                  clicked_items: Sequence[int], k: int) -> float:
    """HitRate@K: fraction of requests whose clicked item is in the top-K.

    ``ranked_item_lists[i]`` is the model's ranked retrieval list for request
    ``i`` and ``clicked_items[i]`` the item actually clicked.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if len(ranked_item_lists) != len(clicked_items):
        raise ValueError("ranked lists and clicked items must align")
    if not clicked_items:
        return 0.0
    hits = 0
    for ranked, clicked in zip(ranked_item_lists, clicked_items):
        if clicked in list(ranked)[:k]:
            hits += 1
    return hits / len(clicked_items)


@dataclass
class MetricReport:
    """A bundle of evaluation metrics for one model on one dataset."""

    model_name: str
    auc: float
    mae: float = 0.0
    rmse: float = 0.0
    hit_rates: Dict[int, float] = field(default_factory=dict)
    training_seconds: float = 0.0
    sampled_nodes_per_example: float = 0.0

    def as_row(self) -> Dict[str, float]:
        """Flatten into a table row for the benchmark harness."""
        row: Dict[str, float] = {
            "model": self.model_name,
            "auc": round(self.auc, 4),
            "mae": round(self.mae, 4),
            "rmse": round(self.rmse, 4),
            "train_s": round(self.training_seconds, 2),
        }
        for k, value in sorted(self.hit_rates.items()):
            row[f"hitrate@{k}"] = round(value, 4)
        return row
