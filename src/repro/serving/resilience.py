"""Client-side resilience primitives: retry, backoff, circuit breaking.

The serving daemon answers over plain TCP, and the transport fails in
exactly three interesting ways — the listener is gone (connect refused),
the connection died mid-exchange (reset), or the peer is alive but not
answering (timeout).  :func:`classify_transport_error` names which one
happened; :class:`RetryPolicy` decides whether and how long to wait before
trying again (bounded exponential backoff with *seeded* jitter, so a retry
schedule is replayable like everything else in this repo); and
:class:`CircuitBreaker` stops a client from hammering a peer that keeps
failing (closed -> open -> half-open).

The breaker takes explicit ``now`` timestamps so tests can drive the state
machine without sleeping; callers that omit ``now`` get
:func:`time.monotonic`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


class CircuitOpenError(RuntimeError):
    """Raised when a request is refused because the breaker is open."""


def classify_transport_error(error: BaseException) -> str:
    """Name the transport failure: connect_refused / reset / timeout.

    ``TimeoutError`` covers ``socket.timeout`` (an alias since 3.10).  EOF
    mid-frame counts as a reset: the peer went away without answering.
    """
    if isinstance(error, ConnectionRefusedError):
        return "connect_refused"
    if isinstance(error, TimeoutError):
        return "timeout"
    if isinstance(error, (ConnectionResetError, BrokenPipeError, EOFError,
                          ConnectionError)):
        return "reset"
    return "other"


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``backoff_s(attempt)`` grows ``base_delay_s * 2**attempt`` up to
    ``max_delay_s``, then adds a jitter fraction drawn from a seeded
    generator — two policies built with the same seed produce the same
    delay sequence.
    """

    #: Retries after the first attempt (0 disables retrying).
    max_retries: int = 3
    #: First backoff delay, seconds.
    base_delay_s: float = 0.05
    #: Backoff ceiling, seconds (applied before jitter).
    max_delay_s: float = 1.0
    #: Jitter as a fraction of the delay (0 = deterministic delays).
    jitter: float = 0.5
    #: Seed for the jitter stream.
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def should_retry(self, attempt: int) -> bool:
        """True when retry number ``attempt`` (0-based) is still allowed."""
        return attempt < self.max_retries

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), seconds."""
        delay = min(self.base_delay_s * (2.0 ** max(int(attempt), 0)),
                    self.max_delay_s)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(self._rng.random())
        return delay


class CircuitBreaker:
    """Closed -> open -> half-open failure gate for one downstream peer.

    Closed passes everything; ``failure_threshold`` consecutive failures
    open the circuit, which fails fast for ``reset_timeout_s``; after the
    timeout one probe call is allowed (half-open) — its success closes the
    circuit, its failure re-opens it for another full timeout.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.state = "closed"
        self.consecutive_failures = 0
        #: Times the breaker tripped open over its lifetime.
        self.opened_count = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def allow(self, now: Optional[float] = None) -> bool:
        """May a call proceed right now?  (May transition open -> half-open.)"""
        if self.state == "closed":
            return True
        if now is None:
            now = time.monotonic()
        if self.state == "open":
            if now - self._opened_at < self.reset_timeout_s:
                return False
            self.state = "half_open"
            self._probe_inflight = False
        # half-open: admit exactly one probe until its outcome is recorded.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self, now: Optional[float] = None) -> None:
        """A call succeeded: close the circuit, clear the failure streak."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self, now: Optional[float] = None) -> None:
        """A call failed: extend the streak, maybe (re)open the circuit."""
        self.consecutive_failures += 1
        if self.state == "half_open" \
                or self.consecutive_failures >= self.failure_threshold:
            if now is None:
                now = time.monotonic()
            self.state = "open"
            self.opened_count += 1
            self._opened_at = now
            self._probe_inflight = False

    def snapshot(self) -> Dict[str, object]:
        """Counters for stats payloads."""
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opened_count": self.opened_count}
