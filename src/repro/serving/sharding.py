"""Sharded ANN serving: partition the item corpus, fan out, merge top-k.

The paper's serving tier spreads the inverted index and item embeddings over
many machines; response time stays flat as the corpus grows because each
query fans out to every shard and only the per-shard top-k lists travel back
for the merge.  :class:`ShardedIndex` reproduces that layout in-process:

* item embeddings are partitioned round-robin across ``num_shards`` shards
  (round-robin keeps shard sizes within one item of each other and spreads
  any locality in the id space),
* ``search_batch`` runs the batched search on every shard and merges the
  per-shard ``(Q, k)`` score blocks with one concatenate + argpartition,
* the merged results are exactly the global top-k, because the true top-k
  of the union is contained in the union of per-shard top-k lists.

A shard is any object with a ``search_batch(queries, k) -> (ids, scores)``
method whose rows are right-padded with ``(PAD_ID, -inf)`` when short (both
:class:`~repro.serving.ann.ExactIndex` and
:class:`~repro.serving.ann.IVFIndex` qualify).  The ``index_factory``
callable chooses the per-shard index type.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.ann import ExactIndex, _as_query_matrix

#: Builds one shard from its slice of (embeddings, ids).
IndexFactory = Callable[[np.ndarray, np.ndarray], object]


class ShardedIndex:
    """Partitions item embeddings across shards and merges per-shard top-k."""

    def __init__(self, num_shards: int = 4,
                 index_factory: Optional[IndexFactory] = None,
                 dtype: np.dtype = np.float64):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.index_factory: IndexFactory = index_factory or ExactIndex
        self.dtype = np.dtype(dtype)
        self.shards: List[object] = []
        self._shard_sizes: List[int] = []
        self._num_items = 0
        # Global positions currently removed (lifecycle evictions).  Needed
        # so factory-built shards (no scoped ``rebuilt`` of their own, e.g.
        # ExactIndex) keep excluding tombstoned rows across refreshes.
        self._removed = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return self._num_items

    @property
    def shard_sizes(self) -> List[int]:
        """Number of items on each shard (balanced to within one item)."""
        return list(self._shard_sizes)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self, embeddings: np.ndarray,
              ids: Optional[Sequence[int]] = None) -> "ShardedIndex":
        """Partition the corpus round-robin and build one index per shard."""
        embeddings = np.asarray(embeddings, dtype=self.dtype)
        if embeddings.ndim != 2 or embeddings.shape[0] == 0:
            raise ValueError("embeddings must be a non-empty 2-D array")
        ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(embeddings.shape[0])
        self._num_items = embeddings.shape[0]
        shards = min(self.num_shards, self._num_items)
        self.num_shards = shards            # never more shards than items
        self.shards = []
        self._shard_sizes = []
        positions = np.arange(self._num_items)
        for shard in range(shards):
            local = positions[positions % shards == shard]
            self.shards.append(self.index_factory(embeddings[local], ids[local]))
            self._shard_sizes.append(int(local.size))
        return self

    def rebuilt(self, embeddings: np.ndarray, rows: np.ndarray,
                ids: Optional[Sequence[int]] = None,
                removed: Optional[np.ndarray] = None,
                executor=None) -> "ShardedIndex":
        """A new sharded index over an updated corpus, scoped to ``rows``.

        Round-robin placement is position-stable, so existing items never
        move shards and appended items join the shard their position maps
        to; each shard index is refreshed through its own scoped
        ``rebuilt`` (frozen-centroid reassignment for IVF shards) when it
        has one, and rebuilt outright otherwise (the exact index's build is
        just an array copy).  ``removed`` lists global positions to drop
        (lifecycle evictions): rebuild-capable shards are handed their
        local slice of it, factory-built shards exclude the rows from
        their corpus slice — either way no shard can return them, and the
        exclusion persists across refreshes until a later update names the
        position in ``rows`` again.  An ``executor`` is forwarded to each
        shard's scoped rebuild, fanning the per-shard reassignment work
        across cores.  Returns a fresh :class:`ShardedIndex`; this one
        keeps serving until the caller swaps it out.
        """
        if not self.shards:
            raise RuntimeError("index not built; call build() first")
        embeddings = np.asarray(embeddings, dtype=self.dtype)
        if embeddings.ndim != 2 or embeddings.shape[0] < self._num_items:
            raise ValueError("embeddings must be 2-D and cannot shrink")
        ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(embeddings.shape[0])
        rows = np.asarray(rows, dtype=np.int64)
        removed = np.asarray(removed, dtype=np.int64) \
            if removed is not None else np.empty(0, dtype=np.int64)
        changed = np.union1d(rows, np.arange(self._num_items,
                                             embeddings.shape[0]))
        if removed.size:
            changed = np.setdiff1d(changed, removed)
        fresh = ShardedIndex(num_shards=self.num_shards,
                             index_factory=self.index_factory,
                             dtype=self.dtype)
        fresh._num_items = embeddings.shape[0]
        # Tombstones persist: previously removed positions stay out unless
        # this update re-touches them (the evict-then-re-add path).
        fresh._removed = np.union1d(np.setdiff1d(self._removed, changed),
                                    removed)
        positions = np.arange(embeddings.shape[0])
        for shard, index in enumerate(self.shards):
            local = positions[positions % self.num_shards == shard]
            if hasattr(index, "rebuilt"):
                local_rows = np.nonzero(np.isin(local, changed))[0]
                local_removed = np.nonzero(np.isin(local, fresh._removed))[0]
                fresh.shards.append(index.rebuilt(embeddings[local],
                                                  local_rows,
                                                  ids=ids[local],
                                                  removed=local_removed,
                                                  executor=executor))
            else:
                live = local[~np.isin(local, fresh._removed)]
                fresh.shards.append(self.index_factory(embeddings[live],
                                                       ids[live]))
            fresh._shard_sizes.append(int(local.size))
        return fresh

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global top-k for one query (batch-of-one wrapper)."""
        from repro.serving.ann import strip_padding
        query = np.asarray(query, dtype=self.dtype)
        ids, scores = self.search_batch(query[None, :], k)
        return strip_padding(ids[0], scores[0])

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Fan a ``(Q, d)`` query matrix out to every shard and merge top-k.

        Returns ``(ids, scores)`` of shape ``(Q, min(k, n))`` with the same
        ``(PAD_ID, -inf)`` right-padding convention as the shard indexes.
        """
        if not self.shards:
            raise RuntimeError("index not built; call build() first")
        queries = _as_query_matrix(queries, self.dtype)
        num_queries = queries.shape[0]
        top_k = min(max(int(k), 0), self._num_items)
        if num_queries == 0 or top_k == 0:
            return (np.zeros((num_queries, 0), dtype=np.int64),
                    np.zeros((num_queries, 0)))
        blocks = [shard.search_batch(queries, k) for shard in self.shards]
        ids = np.concatenate([b[0] for b in blocks], axis=1)      # (Q, <= S*k)
        scores = np.concatenate([b[1] for b in blocks], axis=1)
        # Shards built after removals hold fewer than their share of
        # ``_num_items`` rows, so the merged candidate block can be narrower
        # than ``min(k, n)``; never partition past its width.
        top_k = min(top_k, scores.shape[1])
        # Padding rides along as (-1, -inf) and loses every comparison, so a
        # plain top-k over the concatenated blocks merges correctly.
        top = np.argpartition(-scores, top_k - 1, axis=1)[:, :top_k]
        order = np.argsort(-np.take_along_axis(scores, top, axis=1), axis=1)
        top = np.take_along_axis(top, order, axis=1)
        return (np.take_along_axis(ids, top, axis=1),
                np.take_along_axis(scores, top, axis=1))
