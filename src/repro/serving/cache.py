"""Neighbor cache for online serving (paper Section VII-E).

"In the online GNN module, we deploy caches for dynamically storing k last
visited neighbors for each user and query nodes, thus avoiding the overhead
for the aggregation operation ... the cache updating is fully asynchronous
from users' timely requests."  The cache below stores up to ``capacity``
neighbors per (node type, node id), evicts least-recently-touched entries
when the number of cached nodes exceeds ``max_nodes``, and tracks hit / miss
/ refresh statistics so the serving benchmarks can attribute latency.

:meth:`NeighborCache.get_batch` / :meth:`NeighborCache.put_batch` process
keys in order with exactly the same accounting as a loop of single-key calls
— use them for bulk maintenance (pre-warming, bulk refresh).  The serving
hot path itself interleaves per-request get/put so that a cache miss filled
for one request is a hit for the next request in the same batch, keeping
batched statistics identical to sequential serving.  The paper's
asynchronous refresh is modelled by a refresh queue: producers call
:meth:`NeighborCache.enqueue_refresh` at any time, and the serving loop
drains the queue between request batches with
:meth:`NeighborCache.drain_refreshes` — updates never sit on the request
critical path.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np


#: One cached neighbor: (neighbor_type, neighbor_id, weight).
Neighbor = Tuple[str, int, float]
#: Cache key: (node_type, node_id).
CacheKey = Tuple[str, int]


@dataclass
class CacheStats:
    """Hit / miss / refresh accounting."""

    hits: int = 0
    misses: int = 0
    refreshes: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NeighborCache:
    """Bounded cache of each node's k last-visited neighbors."""

    def __init__(self, capacity: int = 30, max_nodes: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        self.capacity = capacity
        self.max_nodes = max_nodes
        self._entries: "OrderedDict[CacheKey, List[Neighbor]]" = OrderedDict()
        self._refresh_queue: Deque[Tuple[str, int, List[Neighbor]]] = deque()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Single-key operations
    # ------------------------------------------------------------------ #
    def get(self, node_type: str, node_id: int) -> Optional[List[Neighbor]]:
        """Cached neighbors ``[(neighbor_type, neighbor_id, weight), ...]``."""
        key = (node_type, int(node_id))
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return list(entry)

    def put(self, node_type: str, node_id: int,
            neighbors: Sequence[Neighbor]) -> None:
        """Refresh the cached neighbors of one node (async update path)."""
        key = (node_type, int(node_id))
        trimmed = list(neighbors)[: self.capacity]
        self._entries[key] = trimmed
        self._entries.move_to_end(key)
        self.stats.refreshes += 1
        while len(self._entries) > self.max_nodes:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def update_visit(self, node_type: str, node_id: int,
                     neighbor: Neighbor) -> None:
        """Record a newly visited neighbor, keeping only the k most recent."""
        key = (node_type, int(node_id))
        entry = self._entries.get(key, [])
        entry = [n for n in entry if (n[0], n[1]) != (neighbor[0], neighbor[1])]
        entry.insert(0, neighbor)
        self.put(node_type, node_id, entry)
        # put() counts this as a refresh; that is intentional — visit updates
        # ride the same asynchronous refresh path.

    def invalidate(self, node_type: str, node_id: int) -> bool:
        """Drop one cached entry (streaming update path).

        Returns True when the key was cached.  Invalidation counts neither
        as a hit nor a miss: the entry is simply gone, so the next read of
        the key misses and re-warms from the updated graph.
        """
        key = (node_type, int(node_id))
        if self._entries.pop(key, None) is None:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_keys(self, keys: Sequence[CacheKey]) -> int:
        """Drop many cached entries; returns how many were actually cached.

        This is the scoped invalidation the streaming subsystem relies on:
        a :class:`~repro.graph.update.GraphDelta` names exactly the nodes
        whose neighborhoods changed, those keys are dropped here, and every
        untouched key keeps serving its cached entry.
        """
        return sum(1 for node_type, node_id in keys
                   if self.invalidate(node_type, node_id))

    def invalidate_nodes(self, node_type: str,
                         node_ids: np.ndarray) -> List[int]:
        """Drop the cached entries of many ``node_type`` nodes at once.

        The vectorized streaming-invalidation path: instead of iterating
        :meth:`GraphDelta.touched_keys
        <repro.graph.update.GraphDelta.touched_keys>` one Python tuple per
        id, the caller hands the whole per-type id array from
        ``delta.touched`` here.  Membership is resolved with one
        :func:`numpy.isin` over the currently cached ids of that type, so
        the cost scales with the cache size, not ``len(node_ids)``.
        Returns the (cached) ids that were actually dropped, which the
        refresh path uses as its re-warm worklist.
        """
        node_ids = np.unique(np.asarray(node_ids, dtype=np.int64))
        if node_ids.size == 0:
            return []
        cached = np.fromiter(
            (node_id for key_type, node_id in self._entries
             if key_type == node_type),
            dtype=np.int64)
        hit = cached[np.isin(cached, node_ids)]
        for node_id in hit:
            del self._entries[(node_type, int(node_id))]
        self.stats.invalidations += int(hit.size)
        return [int(node_id) for node_id in hit]

    # ------------------------------------------------------------------ #
    # Batched operations (bulk maintenance: pre-warming, bulk refresh)
    # ------------------------------------------------------------------ #
    def get_batch(self, keys: Sequence[CacheKey]
                  ) -> List[Optional[List[Neighbor]]]:
        """Look up many keys in order; one hit-or-miss is counted per key.

        A key that appears twice is counted (and LRU-touched) twice — exactly
        as a loop of :meth:`get` calls would, so batched serving reports the
        same statistics as sequential serving.
        """
        return [self.get(node_type, node_id) for node_type, node_id in keys]

    def put_batch(self, entries: Sequence[Tuple[str, int, Sequence[Neighbor]]]
                  ) -> None:
        """Refresh many nodes in order (equivalent to a loop of puts)."""
        for node_type, node_id, neighbors in entries:
            self.put(node_type, node_id, neighbors)

    # ------------------------------------------------------------------ #
    # Asynchronous refresh queue
    # ------------------------------------------------------------------ #
    def enqueue_refresh(self, node_type: str, node_id: int,
                        neighbors: Sequence[Neighbor]) -> None:
        """Queue a neighbor refresh to be applied off the critical path."""
        self._refresh_queue.append((node_type, int(node_id), list(neighbors)))

    @property
    def pending_refreshes(self) -> int:
        """Number of queued refreshes not yet applied."""
        return len(self._refresh_queue)

    def drain_refreshes(self, limit: Optional[int] = None) -> int:
        """Apply up to ``limit`` queued refreshes (all when ``limit=None``).

        The serving loop calls this between request batches, which is how the
        paper's "fully asynchronous" cache updating is modelled: requests
        only ever read the cache; writes happen here.  Returns the number of
        refreshes applied.
        """
        applied = 0
        while self._refresh_queue and (limit is None or applied < limit):
            node_type, node_id, neighbors = self._refresh_queue.popleft()
            self.put(node_type, node_id, neighbors)
            applied += 1
        return applied

    # ------------------------------------------------------------------ #
    # Warm-up and reporting
    # ------------------------------------------------------------------ #
    def top_graph_neighbors(self, graph, node_type: str, node_id: int,
                            k: Optional[int] = None) -> List[Neighbor]:
        """One node's highest-weight graph neighbors, as cache entries.

        The single source of the cache-entry selection rule, shared by
        :meth:`warm` and the streaming refresh's asynchronous re-warm so
        warmed and refreshed entries can never drift apart.
        """
        k = k if k is not None else self.capacity
        neighbors: List[Neighbor] = []
        for spec, ids, weights in graph.neighbors(node_type, int(node_id)):
            neighbors.extend((spec.dst_type, int(i), float(w))
                             for i, w in zip(ids, weights))
        neighbors.sort(key=lambda entry: -entry[2])
        return neighbors[:k]

    def warm(self, graph, node_type: str, node_ids: Sequence[int],
             k: Optional[int] = None) -> None:
        """Pre-populate the cache from the graph's highest-weight neighbors."""
        for node_id in node_ids:
            self.put(node_type, int(node_id),
                     self.top_graph_neighbors(graph, node_type, node_id, k))

    def hit_rate(self) -> float:
        """Overall cache hit rate so far."""
        return self.stats.hit_rate
