"""Neighbor cache for online serving (paper Section VII-E).

"In the online GNN module, we deploy caches for dynamically storing k last
visited neighbors for each user and query nodes, thus avoiding the overhead
for the aggregation operation ... the cache updating is fully asynchronous
from users' timely requests."  The cache below stores up to ``capacity``
neighbors per (node type, node id), evicts least-recently-updated entries
when the number of cached nodes exceeds ``max_nodes``, and tracks hit / miss
/ refresh statistics so the serving benchmarks can attribute latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit / miss / refresh accounting."""

    hits: int = 0
    misses: int = 0
    refreshes: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NeighborCache:
    """Bounded cache of each node's k last-visited neighbors."""

    def __init__(self, capacity: int = 30, max_nodes: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        self.capacity = capacity
        self.max_nodes = max_nodes
        self._entries: "OrderedDict[Tuple[str, int], List[Tuple[str, int, float]]]" = \
            OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_type: str, node_id: int
            ) -> Optional[List[Tuple[str, int, float]]]:
        """Cached neighbors ``[(neighbor_type, neighbor_id, weight), ...]``."""
        key = (node_type, int(node_id))
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return list(entry)

    def put(self, node_type: str, node_id: int,
            neighbors: Sequence[Tuple[str, int, float]]) -> None:
        """Refresh the cached neighbors of one node (async update path)."""
        key = (node_type, int(node_id))
        trimmed = list(neighbors)[: self.capacity]
        self._entries[key] = trimmed
        self._entries.move_to_end(key)
        self.stats.refreshes += 1
        while len(self._entries) > self.max_nodes:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def update_visit(self, node_type: str, node_id: int,
                     neighbor: Tuple[str, int, float]) -> None:
        """Record a newly visited neighbor, keeping only the k most recent."""
        key = (node_type, int(node_id))
        entry = self._entries.get(key, [])
        entry = [n for n in entry if (n[0], n[1]) != (neighbor[0], neighbor[1])]
        entry.insert(0, neighbor)
        self.put(node_type, node_id, entry)
        # put() counts this as a refresh; that is intentional — visit updates
        # ride the same asynchronous refresh path.

    def warm(self, graph, node_type: str, node_ids: Sequence[int],
             k: Optional[int] = None) -> None:
        """Pre-populate the cache from the graph's highest-weight neighbors."""
        k = k if k is not None else self.capacity
        for node_id in node_ids:
            neighbors: List[Tuple[str, int, float]] = []
            for spec, ids, weights in graph.neighbors(node_type, int(node_id)):
                neighbors.extend((spec.dst_type, int(i), float(w))
                                 for i, w in zip(ids, weights))
            neighbors.sort(key=lambda entry: -entry[2])
            self.put(node_type, int(node_id), neighbors[:k])

    def hit_rate(self) -> float:
        """Overall cache hit rate so far."""
        return self.stats.hit_rate
