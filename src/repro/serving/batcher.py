"""Micro-batching front end for the online server.

Production serving tiers do not run one model invocation per request: a thin
front end accumulates concurrent requests into micro-batches and dispatches
each batch through the vectorized path, trading a bounded assembly wait for a
much higher per-machine throughput.  :class:`RequestBatcher` reproduces that
policy in-process with the two standard knobs:

* ``max_batch_size`` — a batch is dispatched as soon as it is full,
* ``max_wait_ms`` — a partial batch is dispatched once its oldest request
  has waited this long (checked on the next ``submit``; call ``flush()`` to
  force out stragglers, e.g. at stream end).

Time is injectable (``submit(..., now_ms=...)``) so tests and simulations can
drive the wait-timeout policy with a deterministic clock; by default the real
monotonic clock is used.  Responses come back in submission order from
:meth:`~repro.serving.server.OnlineServer.serve_batch`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class BatcherStats:
    """Accounting for batch formation (sizes and flush reasons)."""

    submitted: int = 0
    served: int = 0
    batches: int = 0
    flushed_full: int = 0
    flushed_wait: int = 0
    flushed_manual: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0


class RequestBatcher:
    """Accumulates requests and serves them through ``serve_batch``."""

    def __init__(self, server, max_batch_size: int = 32,
                 max_wait_ms: float = 5.0, k: int = 10):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.server = server
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.k = k
        self.stats = BatcherStats()
        self._pending: List[Tuple[int, int]] = []
        self._oldest_ms: Optional[float] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[Tuple[int, int]]:
        """The requests waiting for the next batch (submission order)."""
        return list(self._pending)

    def submit(self, user_id: int, query_id: int,
               now_ms: Optional[float] = None) -> List:
        """Enqueue one request; returns any results a flush produced.

        An empty list means the request is parked in the current partial
        batch; a non-empty list holds the :class:`ServeResult` objects of
        every request in the batch(es) dispatched by this submission.
        """
        now = now_ms if now_ms is not None else time.perf_counter() * 1000.0
        results: List = []
        if (self._pending and self._oldest_ms is not None
                and now - self._oldest_ms >= self.max_wait_ms):
            results.extend(self._flush("wait"))
        if not self._pending:
            self._oldest_ms = now
        self._pending.append((int(user_id), int(query_id)))
        self.stats.submitted += 1
        if len(self._pending) >= self.max_batch_size:
            results.extend(self._flush("full"))
        return results

    def flush(self) -> List:
        """Dispatch the current partial batch immediately (stream end)."""
        return self._flush("manual")

    def _flush(self, reason: str) -> List:
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        self._oldest_ms = None
        results = self.server.serve_batch(batch, k=self.k)
        self.stats.batches += 1
        self.stats.served += len(batch)
        if reason == "full":
            self.stats.flushed_full += 1
        elif reason == "wait":
            self.stats.flushed_wait += 1
        else:
            self.stats.flushed_manual += 1
        return results
