"""Micro-batching front end for the online server.

Production serving tiers do not run one model invocation per request: a thin
front end accumulates concurrent requests into micro-batches and dispatches
each batch through the vectorized path, trading a bounded assembly wait for a
much higher per-machine throughput.  :class:`RequestBatcher` reproduces that
policy in-process with the two standard knobs:

* ``max_batch_size`` — a batch is dispatched as soon as it is full,
* ``max_wait_ms`` — a partial batch is dispatched once its oldest request
  has waited this long.

The wait timeout is checked on every ``submit`` *and* by :meth:`poll`, which
flushes a wait-expired partial batch without requiring any follow-up traffic
— the hook a timer-driven front end (the asyncio daemon) uses so a parked
request is never stranded under idle traffic.  ``flush()`` still forces out
stragglers unconditionally (e.g. at stream end or shutdown drain).

Requests are :class:`~repro.serving.request.ServeRequest` objects; the legacy
``submit(user_id, query_id)`` call style keeps working via the same compat
coercion the server applies.  Time is injectable (``submit(..., now_ms=...)``)
so tests and simulations can drive the wait-timeout policy with a
deterministic clock; by default the real monotonic clock is used.  Responses
come back in submission order from
:meth:`~repro.serving.server.OnlineServer.serve_batch`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.serving.request import RequestLike, ServeRequest, coerce_request


@dataclass
class BatcherStats:
    """Accounting for batch formation (sizes and flush reasons)."""

    submitted: int = 0
    served: int = 0
    batches: int = 0
    flushed_full: int = 0
    flushed_wait: int = 0
    flushed_manual: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0


class RequestBatcher:
    """Accumulates requests and serves them through ``serve_batch``."""

    def __init__(self, server, max_batch_size: int = 32,
                 max_wait_ms: float = 5.0, k: int = 10):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.server = server
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.k = k
        self.stats = BatcherStats()
        self._pending: List[ServeRequest] = []
        self._oldest_ms: Optional[float] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[Tuple[int, int]]:
        """The ``(user, query)`` pairs waiting for the next batch (submission order)."""
        return [request.key for request in self._pending]

    @property
    def pending_requests(self) -> List[ServeRequest]:
        """The typed requests waiting for the next batch (submission order)."""
        return list(self._pending)

    @staticmethod
    def _now_ms(now_ms: Optional[float]) -> float:
        return now_ms if now_ms is not None else time.perf_counter() * 1000.0

    def submit(self, request: RequestLike, query_id: Optional[int] = None,
               now_ms: Optional[float] = None) -> List:
        """Enqueue one request; returns any results a flush produced.

        ``request`` is a :class:`ServeRequest`, a ``(user_id, query_id)``
        pair, or — the legacy positional style — a bare ``user_id`` with the
        query id as the second argument.  An empty list means the request is
        parked in the current partial batch; a non-empty list holds the
        :class:`ServeResult` objects of every request in the batch(es)
        dispatched by this submission.
        """
        if query_id is not None:
            request = ServeRequest(int(request), int(query_id))
        else:
            request = coerce_request(request)
        now = self._now_ms(now_ms)
        results: List = []
        if self._wait_expired(now):
            results.extend(self._flush("wait"))
        if not self._pending:
            self._oldest_ms = now
        self._pending.append(request)
        self.stats.submitted += 1
        if len(self._pending) >= self.max_batch_size:
            results.extend(self._flush("full"))
        return results

    def poll(self, now_ms: Optional[float] = None) -> List:
        """Flush a wait-expired partial batch without a new submission.

        Call this on a timer: a request parked in a partial batch under idle
        traffic is dispatched within ``max_wait_ms`` even though no follow-up
        ``submit`` ever arrives.  Returns the flushed batch's results (empty
        when nothing is pending or the oldest request is still within its
        wait budget).
        """
        if self._wait_expired(self._now_ms(now_ms)):
            return self._flush("wait")
        return []

    def ms_until_deadline(self, now_ms: Optional[float] = None
                          ) -> Optional[float]:
        """Milliseconds until the current partial batch's wait expires.

        ``None`` when nothing is pending (no deadline to arm a timer for);
        ``0.0`` when the deadline has already passed and :meth:`poll` would
        flush right now.
        """
        if not self._pending or self._oldest_ms is None:
            return None
        now = self._now_ms(now_ms)
        return max(0.0, self.max_wait_ms - (now - self._oldest_ms))

    def _wait_expired(self, now: float) -> bool:
        return (bool(self._pending) and self._oldest_ms is not None
                and now - self._oldest_ms >= self.max_wait_ms)

    def flush(self) -> List:
        """Dispatch the current partial batch immediately (stream end)."""
        return self._flush("manual")

    def _flush(self, reason: str) -> List:
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        self._oldest_ms = None
        results = self.server.serve_batch(batch, k=self.k)
        self.stats.batches += 1
        self.stats.served += len(batch)
        if reason == "full":
            self.stats.flushed_full += 1
        elif reason == "wait":
            self.stats.flushed_wait += 1
        else:
            self.stats.flushed_manual += 1
        return results
