"""Open-loop Poisson load generator for the serving daemon.

Closed-loop drivers (send, wait, send) hide overload: when the server slows
down, the driver slows down with it and the measured latency flattens at a
comfortable lie.  This generator is **open loop** — arrival times are drawn
up front from a Poisson process (exponential inter-arrivals at the target
QPS) and each request is fired at its absolute scheduled time regardless of
whether earlier requests have completed, so queueing delay and load shedding
show up exactly as a real traffic source would see them.

Each arrival opens its own connection, sends one ``serve`` frame, reads the
one response, and records the outcome (served / shed / quota / draining /
transport error) and the send-to-response latency.  The resulting
:class:`LoadReport` carries the latency percentiles that
``benchmarks/bench_serving_slo.py`` pins against the
:class:`~repro.serving.latency.LatencySimulator` prediction.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serving.resilience import classify_transport_error


@dataclass
class LoadReport:
    """Outcome counts and latency percentiles of one open-loop run.

    Transport failures are counted by class (``connect_refused`` /
    ``reset`` / ``timeouts`` / ``other_errors``) — under injected chaos,
    "the daemon was down" and "the daemon was slow" are different verdicts.
    ``errors`` is their sum.
    """

    #: Target offered load (requests/second).
    qps: float
    #: Requests actually fired.
    sent: int = 0
    #: Requests answered with ``ok: true``.
    served: int = 0
    #: Requests shed by admission control (``error: "shed"``).
    shed: int = 0
    #: Requests rejected by a tenant quota (``error: "quota"``).
    quota: int = 0
    #: Requests rejected because the daemon was draining.
    draining: int = 0
    #: Connection attempts refused (no listener / daemon down).
    connect_refused: int = 0
    #: Connections reset, broken, or closed without a response.
    reset: int = 0
    #: Requests that timed out (including run-deadline cancellations).
    timeouts: int = 0
    #: Everything else: unexpected transport errors, malformed responses.
    other_errors: int = 0
    #: Wall-clock duration of the run in seconds.
    elapsed_s: float = 0.0
    #: ``sent / elapsed_s`` — the load actually offered.
    achieved_qps: float = 0.0
    #: Send-to-response latency of served requests, milliseconds.
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def errors(self) -> int:
        """All failed requests — the sum of the per-class failure counts."""
        return (self.connect_refused + self.reset + self.timeouts
                + self.other_errors)

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th latency percentile (served requests only)."""
        if not self.latencies_ms:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def p50_ms(self) -> float:
        """Median served latency in milliseconds."""
        return self.percentile_ms(50.0)

    @property
    def p99_ms(self) -> float:
        """99th-percentile served latency in milliseconds."""
        return self.percentile_ms(99.0)

    @property
    def shed_fraction(self) -> float:
        """Fraction of sent requests shed by queue or quota admission."""
        if self.sent == 0:
            return 0.0
        return (self.shed + self.quota) / self.sent

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (percentiles instead of raw latencies)."""
        mean = float(np.mean(self.latencies_ms)) if self.latencies_ms else float("nan")
        return {
            "qps": self.qps,
            "sent": self.sent,
            "served": self.served,
            "shed": self.shed,
            "quota": self.quota,
            "draining": self.draining,
            "errors": self.errors,
            "errors_by_class": {
                "connect_refused": self.connect_refused,
                "reset": self.reset,
                "timeouts": self.timeouts,
                "other": self.other_errors,
            },
            "elapsed_s": round(self.elapsed_s, 4),
            "achieved_qps": round(self.achieved_qps, 2),
            "shed_fraction": round(self.shed_fraction, 4),
            "latency_ms": {
                "mean": round(mean, 3),
                "p50": round(self.p50_ms, 3),
                "p95": round(self.percentile_ms(95.0), 3),
                "p99": round(self.p99_ms, 3),
            },
        }


class OpenLoopLoadGenerator:
    """Fire Poisson arrivals at a :class:`~repro.serving.daemon.ServingDaemon`.

    ``num_users`` / ``num_queries`` bound the uniformly sampled request
    population; ``seed`` makes the arrival schedule and the request mix
    reproducible.  ``run()`` blocks until every scheduled request has
    resolved and returns a :class:`LoadReport`.
    """

    def __init__(self, host: str, port: int, qps: float,
                 num_requests: int, num_users: int, num_queries: int,
                 k: int = 10, tenant: str = "default", seed: int = 0,
                 timeout_s: float = 30.0):
        if qps <= 0:
            raise ValueError("qps must be positive")
        if num_requests < 1:
            raise ValueError("num_requests must be at least 1")
        self.host = host
        self.port = int(port)
        self.qps = float(qps)
        self.num_requests = int(num_requests)
        self.num_users = int(num_users)
        self.num_queries = int(num_queries)
        self.k = int(k)
        self.tenant = tenant
        self.seed = int(seed)
        self.timeout_s = float(timeout_s)

    def schedule(self) -> np.ndarray:
        """Absolute send offsets (seconds) — exponential gaps at ``qps``."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.qps, size=self.num_requests)
        return np.cumsum(gaps)

    def run(self) -> LoadReport:
        """Execute the open-loop run to completion (blocking)."""
        return asyncio.run(self._run())

    async def _run(self) -> LoadReport:
        offsets = self.schedule()
        rng = np.random.default_rng(self.seed + 1)
        users = rng.integers(0, self.num_users, size=self.num_requests)
        queries = rng.integers(0, self.num_queries, size=self.num_requests)
        report = LoadReport(qps=self.qps)
        start = time.perf_counter()
        tasks = []
        for index, offset in enumerate(offsets):
            delay = start + float(offset) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            frame = {"op": "serve", "user_id": int(users[index]),
                     "query_id": int(queries[index]), "k": self.k,
                     "tenant": self.tenant, "id": index}
            tasks.append(asyncio.create_task(self._one(frame, report)))
        report.sent = len(tasks)
        if tasks:
            await asyncio.wait(tasks, timeout=self.timeout_s)
            for task in tasks:
                if not task.done():
                    task.cancel()
                    report.timeouts += 1
        report.elapsed_s = time.perf_counter() - start
        if report.elapsed_s > 0:
            report.achieved_qps = report.sent / report.elapsed_s
        return report

    async def _one(self, frame: Dict[str, Any], report: LoadReport) -> None:
        sent_at = time.perf_counter()
        writer = None
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            writer.write(json.dumps(frame).encode("utf-8") + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                report.reset += 1    # closed without answering
                return
            response = json.loads(line)
        except ValueError:
            report.other_errors += 1
            return
        except (ConnectionError, TimeoutError, OSError) as error:
            kind = classify_transport_error(error)
            if kind == "connect_refused":
                report.connect_refused += 1
            elif kind == "timeout":
                report.timeouts += 1
            elif kind == "reset":
                report.reset += 1
            else:
                report.other_errors += 1
            return
        finally:
            if writer is not None:
                try:
                    writer.close()
                except (OSError, RuntimeError):  # pragma: no cover
                    pass
        self._classify(response, sent_at, report)

    @staticmethod
    def _classify(response: Dict[str, Any], sent_at: float,
                  report: LoadReport) -> None:
        if response.get("ok"):
            report.served += 1
            report.latencies_ms.append((time.perf_counter() - sent_at) * 1000.0)
            return
        error: Optional[str] = response.get("error")
        if error == "shed":
            report.shed += 1
        elif error == "quota":
            report.quota += 1
        elif error == "draining":
            report.draining += 1
        else:
            report.other_errors += 1
