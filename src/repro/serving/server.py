"""End-to-end online serving facade (paper Sections VI and VII-E).

The serving pipeline is **batch-first**: :meth:`OnlineServer.serve_batch`
drives a whole micro-batch of ``(user, query)`` requests through four stages,

1. drain the cache's asynchronous refresh queue, then read every request's
   cached neighbors (k last-visited; a miss falls back to a graph lookup and
   refreshes the cache) — per-key accounting matches sequential serving,
2. assemble the request-embedding matrix with the *serving-time
   simplification* the paper describes — only the edge-level attention part
   of the multi-level attention module is kept, and the aggregation uses the
   cached neighbors instead of fresh sampling,
3. retrieve candidates: requests whose query has a posting list read the
   two-layer inverted index; the rest share one vectorized
   ``search_batch`` over the ANN index (optionally sharded across
   ``num_shards`` partitions of the item corpus),
4. return per-request top-k items with an amortised latency breakdown
   (each stage's wall time divided by the batch size).

``serve`` is a thin batch-of-one wrapper over ``serve_batch``, so batched
and sequential serving return identical ids, scores, and cache statistics.
The per-request and per-batch service times measured here calibrate the
:class:`~repro.serving.latency.LatencySimulator` used for the Fig. 9 sweep
and its batch-size extension.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import RetrievalModel
from repro.serving.ann import IVFIndex, strip_padding
from repro.serving.cache import NeighborCache
from repro.serving.inverted_index import InvertedIndex
from repro.serving.latency import LatencyBreakdown, LatencySimulator
from repro.serving.sharding import ShardedIndex


@dataclass
class ServeResult:
    """Outcome of one serving request."""

    user_id: int
    query_id: int
    item_ids: np.ndarray
    scores: np.ndarray
    latency: LatencyBreakdown
    from_inverted_index: bool


class OnlineServer:
    """Serves item-retrieval requests from a trained retrieval model."""

    def __init__(self, model: RetrievalModel, cache_capacity: int = 30,
                 ann_cells: int = 16, ann_nprobe: int = 3,
                 posting_length: int = 100, num_servers: int = 64,
                 use_inverted_index: bool = True, num_shards: int = 1,
                 seed: int = 0):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.model = model
        self.graph = model.graph
        self.cache = NeighborCache(capacity=cache_capacity)
        self.inverted_index = InvertedIndex(posting_length=posting_length)
        self.use_inverted_index = use_inverted_index
        self.item_type = model.item_node_type()
        self.query_type = model.query_node_type()
        self._item_embeddings = model.item_embeddings()
        self.num_shards = num_shards
        if num_shards > 1:
            # Shard the item corpus; each shard runs its own IVF index and
            # per-shard top-k lists are merged into the global top-k.
            self.ann = ShardedIndex(
                num_shards=num_shards,
                index_factory=lambda embeddings, ids: IVFIndex(
                    num_cells=ann_cells, nprobe=ann_nprobe,
                    seed=seed).build(embeddings, ids),
            ).build(self._item_embeddings)
        else:
            self.ann = IVFIndex(num_cells=ann_cells, nprobe=ann_nprobe,
                                seed=seed).build(self._item_embeddings)
        self.latency_model = LatencySimulator(num_servers=num_servers)
        self._request_embedding_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._served = 0

    # ------------------------------------------------------------------ #
    # Offline preparation
    # ------------------------------------------------------------------ #
    def warm_caches(self, user_ids: Sequence[int], query_ids: Sequence[int]) -> None:
        """Pre-populate the neighbor caches (the async refresh path)."""
        from repro.graph.schema import NodeType
        self.cache.warm(self.graph, NodeType.USER, user_ids)
        self.cache.warm(self.graph, self.query_type, query_ids)

    def build_inverted_index(self, query_ids: Sequence[int],
                             example_user: int = 0) -> None:
        """Build layer-1 posting lists from the trained embeddings."""
        query_embeddings = np.vstack([
            self.model.request_embedding(example_user, int(q)) for q in query_ids
        ])
        self.inverted_index.build_from_embeddings(
            list(query_ids), query_embeddings, self._item_embeddings)

    def prepare(self, user_ids: Sequence[int], query_ids: Sequence[int],
                example_user: int = 0) -> "OnlineServer":
        """One-call offline preparation: warm caches + inverted index.

        Equivalent to ``warm_caches(user_ids, query_ids)`` followed by
        ``build_inverted_index(query_ids)``; this is what
        :meth:`repro.api.pipeline.Pipeline.deploy` runs after training.
        """
        user_ids = list(user_ids)
        query_ids = list(query_ids)
        self.warm_caches(user_ids, query_ids)
        if self.use_inverted_index and query_ids:
            self.build_inverted_index(query_ids, example_user=example_user)
        return self

    # ------------------------------------------------------------------ #
    # Online path
    # ------------------------------------------------------------------ #
    def serve(self, user_id: int, query_id: int, k: int = 10) -> ServeResult:
        """Serve one retrieval request (a batch of one through serve_batch)."""
        return self.serve_batch([(user_id, query_id)], k=k)[0]

    def serve_batch(self, requests: Sequence[Tuple[int, int]],
                    k: int = 10) -> List[ServeResult]:
        """Serve a micro-batch of ``(user, query)`` requests.

        Returns one :class:`ServeResult` per request, in request order, with
        each latency stage amortised over the batch.  Results (ids, scores,
        cache/index statistics) are identical to serving the same requests
        one at a time.
        """
        from repro.graph.schema import NodeType

        requests = [(int(user_id), int(query_id))
                    for user_id, query_id in requests]
        if not requests:
            return []
        batch = len(requests)

        # Stage 1 — apply queued async refreshes, then read the caches.
        # Misses fall back to the graph and refresh the cache inline, in the
        # same per-request order a sequential loop would use.
        start = time.perf_counter()
        self.cache.drain_refreshes()
        for user_id, query_id in requests:
            for node_type, node_id in ((NodeType.USER, user_id),
                                       (self.query_type, query_id)):
                if self.cache.get(node_type, node_id) is None:
                    self.cache.warm(self.graph, node_type, [node_id])
        cache_ms = (time.perf_counter() - start) * 1000.0

        # Stage 2 — request-embedding matrix (edge-level attention only).
        start = time.perf_counter()
        request_matrix = self._request_embeddings(requests)
        attention_ms = (time.perf_counter() - start) * 1000.0

        # Stage 3 — retrieval: inverted-index reads where possible, one
        # shared vectorized ANN search for the rest.
        start = time.perf_counter()
        item_ids: List[Optional[np.ndarray]] = [None] * batch
        scores: List[Optional[np.ndarray]] = [None] * batch
        from_index = [False] * batch
        ann_rows: List[int] = []
        if self.use_inverted_index:
            postings = self.inverted_index.lookup_batch(
                [query_id for _, query_id in requests], k)
            for row, posting in enumerate(postings):
                if posting:
                    item_ids[row] = np.array([item for item, _ in posting],
                                             dtype=np.int64)
                    scores[row] = np.array([score for _, score in posting])
                    from_index[row] = True
                else:
                    ann_rows.append(row)
        else:
            ann_rows = list(range(batch))
        if ann_rows:
            batch_ids, batch_scores = self.ann.search_batch(
                request_matrix[ann_rows], k)
            for position, row in enumerate(ann_rows):
                item_ids[row], scores[row] = strip_padding(
                    batch_ids[position], batch_scores[position])
        ann_ms = (time.perf_counter() - start) * 1000.0

        self._served += batch
        return [
            ServeResult(user_id=user_id, query_id=query_id,
                        item_ids=item_ids[row], scores=scores[row],
                        latency=LatencyBreakdown(cache_ms=cache_ms / batch,
                                                 attention_ms=attention_ms / batch,
                                                 ann_ms=ann_ms / batch),
                        from_inverted_index=from_index[row])
            for row, (user_id, query_id) in enumerate(requests)
        ]

    def _request_embeddings(self, requests: Sequence[Tuple[int, int]]
                            ) -> np.ndarray:
        """Stack (and memoise) the request embeddings for a batch."""
        rows = []
        for key in requests:
            embedding = self._request_embedding_cache.get(key)
            if embedding is None:
                embedding = self.model.request_embedding(*key)
                self._request_embedding_cache[key] = embedding
            rows.append(embedding)
        return np.vstack(rows)

    # ------------------------------------------------------------------ #
    # Load testing
    # ------------------------------------------------------------------ #
    def measure_service_time(self, requests: Sequence[Tuple[int, int]],
                             k: int = 10) -> float:
        """Median per-request service time (ms) over a warm-up request set."""
        if not requests:
            raise ValueError("need at least one request to measure")
        durations = []
        for user_id, query_id in requests:
            result = self.serve(user_id, query_id, k)
            durations.append(result.latency.service_ms)
        return float(np.median(durations))

    def measure_batched_service_time(self, requests: Sequence[Tuple[int, int]],
                                     batch_size: int, k: int = 10,
                                     min_batches: int = 3) -> float:
        """Median service time (ms) of full batches of exactly ``batch_size``.

        The calibration set is cycled so every measured batch is full — a
        short final chunk would otherwise be attributed to the wrong batch
        size and skew the affine profile fit in :meth:`batch_size_sweep`.
        """
        if not requests:
            raise ValueError("need at least one request to measure")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        requests = list(requests)
        num_batches = max(min_batches,
                          -(-len(requests) // batch_size))   # ceil division
        durations = []
        for index in range(num_batches):
            chunk = [requests[(index * batch_size + offset) % len(requests)]
                     for offset in range(batch_size)]
            start = time.perf_counter()
            self.serve_batch(chunk, k)
            durations.append((time.perf_counter() - start) * 1000.0)
        return float(np.median(durations))

    def qps_sweep(self, qps_values: Sequence[float],
                  calibration_requests: Sequence[Tuple[int, int]],
                  k: int = 10) -> List[Dict[str, float]]:
        """Measured-service-time + queueing-model sweep (the Fig. 9 series)."""
        service_ms = self.measure_service_time(calibration_requests, k)
        self.latency_model.calibrate_service_time(service_ms)
        return self.latency_model.sweep(qps_values)

    def batch_size_sweep(self, qps: float,
                         calibration_requests: Sequence[Tuple[int, int]],
                         batch_sizes: Sequence[int], k: int = 10
                         ) -> List[Dict[str, float]]:
        """Batch-size-versus-latency sweep at a fixed QPS (Fig. 9 extension).

        Measures the real per-batch service time of ``serve_batch`` at each
        batch size, fits the affine batch profile, and sweeps the queueing
        model.  Needs at least two distinct batch sizes.
        """
        measured = [self.measure_batched_service_time(calibration_requests,
                                                      batch_size, k)
                    for batch_size in batch_sizes]
        self.latency_model.calibrate_batch_profile(batch_sizes, measured)
        return self.latency_model.batch_sweep(qps, batch_sizes)
