"""End-to-end online serving facade (paper Sections VI and VII-E).

The serving pipeline is **batch-first**: :meth:`OnlineServer.serve_batch`
drives a whole micro-batch of ``(user, query)`` requests through four stages,

1. drain the cache's asynchronous refresh queue, then read every request's
   cached neighbors (k last-visited; a miss falls back to a graph lookup and
   refreshes the cache) — per-key accounting matches sequential serving,
2. assemble the request-embedding matrix with the *serving-time
   simplification* the paper describes — only the edge-level attention part
   of the multi-level attention module is kept, and the aggregation uses the
   cached neighbors instead of fresh sampling,
3. retrieve candidates: requests whose query has a posting list read the
   two-layer inverted index; the rest share one vectorized
   ``search_batch`` over the ANN index (optionally sharded across
   ``num_shards`` partitions of the item corpus),
4. return per-request top-k items with an amortised latency breakdown
   (each stage's wall time divided by the batch size).

``serve`` is a thin batch-of-one wrapper over ``serve_batch``, so batched
and sequential serving return identical top-k ids and cache statistics
(scores agree to serving precision — BLAS kernels differ by ~1 ulp across
batch shapes, which the default float32 read path makes visible).
The per-request and per-batch service times measured here calibrate the
:class:`~repro.serving.latency.LatencySimulator` used for the Fig. 9 sweep
and its batch-size extension.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.graph.update import GraphDelta

from repro.faults import InjectedFault, fault_point
from repro.models.base import RetrievalModel
from repro.serving.ann import IVFIndex, strip_padding
from repro.serving.cache import NeighborCache
from repro.serving.inverted_index import InvertedIndex
from repro.serving.latency import LatencyBreakdown, LatencySimulator
from repro.serving.request import RequestLike, coerce_requests
from repro.serving.sharding import ShardedIndex


@dataclass
class ServeResult:
    """Outcome of one serving request."""

    user_id: int
    query_id: int
    item_ids: np.ndarray
    scores: np.ndarray
    latency: LatencyBreakdown
    from_inverted_index: bool
    #: Admission-control label carried over from the request; retrieval
    #: results are identical for every tenant.
    tenant: str = "default"


class RefreshError(RuntimeError):
    """A refresh failed before its commit point.

    The server keeps serving the *prior* version end to end (old ANN, old
    postings, old embedding matrix) and flags itself ``degraded``; the
    caller may retry the same delta — a succeeding refresh clears the flag.
    """


@dataclass
class RefreshReport:
    """What one :meth:`OnlineServer.refresh` call actually touched."""

    #: Graph version the server reflects after the refresh.
    version: int
    #: Neighbor-cache keys that were cached and got invalidated.
    invalidated_cache_keys: int = 0
    #: Inverted-index posting lists rebuilt (touched queries only).
    refreshed_postings: int = 0
    #: Item-embedding rows recomputed (touched + newly added items).
    refreshed_items: int = 0
    #: Items appended to the corpus (and to the swapped-in ANN index).
    new_items: int = 0
    #: Items tombstoned by the delta and dropped from the ANN cells.
    evicted_items: int = 0
    #: Posting lists of evicted queries dropped outright (not rebuilt).
    dropped_postings: int = 0
    #: Posting entries of evicted items purged from surviving postings.
    purged_posting_items: int = 0


class OnlineServer:
    """Serves item-retrieval requests from a trained retrieval model."""

    def __init__(self, model: RetrievalModel, cache_capacity: int = 30,
                 ann_cells: int = 16, ann_nprobe: int = 3,
                 posting_length: int = 100, num_servers: int = 64,
                 use_inverted_index: bool = True, num_shards: int = 1,
                 seed: int = 0, dtype: str = "float32"):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.model = model
        self.graph = model.graph
        self.cache = NeighborCache(capacity=cache_capacity)
        self.inverted_index = InvertedIndex(posting_length=posting_length)
        self.use_inverted_index = use_inverted_index
        self.item_type = model.item_node_type()
        self.query_type = model.query_node_type()
        #: Serving read-path precision.  ``float32`` (the default) halves
        #: the bytes every ANN search streams over the item matrix, the
        #: coarse centroids and the request-embedding cache; training-side
        #: state stays float64.  Top-k ids and recall are pinned unchanged
        #: on the Fig. 9 workload (tests/test_serving_batched.py).
        self.dtype = np.dtype(dtype)
        self._item_embeddings = np.asarray(model.item_embeddings(),
                                           dtype=self.dtype)
        self.num_shards = num_shards
        self._ann_cells = ann_cells
        self._ann_nprobe = ann_nprobe
        self._seed = seed
        self.ann = self._build_ann(self._item_embeddings)
        self.latency_model = LatencySimulator(num_servers=num_servers)
        self._request_embedding_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._served = 0
        #: Graph version this server's caches and indexes reflect.
        self.graph_version = getattr(self.graph, "version", 0)
        #: True after a refresh failed before its commit; the server keeps
        #: serving the prior version until a refresh succeeds.
        self.degraded = False
        self.degraded_reason = ""
        self._example_user = 0
        #: Optional multi-core engine; see :meth:`attach_parallel`.
        self._parallel = None

    def _build_ann(self, item_embeddings: np.ndarray):
        """Build a fresh (optionally sharded) ANN index over the corpus.

        Used at construction and by :meth:`refresh`, which builds the new
        index on the side and swaps it in only once it is complete.
        """
        if self.num_shards > 1:
            # Shard the item corpus; each shard runs its own IVF index and
            # per-shard top-k lists are merged into the global top-k.
            return ShardedIndex(
                num_shards=self.num_shards,
                index_factory=lambda embeddings, ids: IVFIndex(
                    num_cells=self._ann_cells, nprobe=self._ann_nprobe,
                    seed=self._seed, dtype=self.dtype).build(embeddings, ids),
                dtype=self.dtype,
            ).build(item_embeddings)
        return IVFIndex(num_cells=self._ann_cells, nprobe=self._ann_nprobe,
                        seed=self._seed, dtype=self.dtype
                        ).build(item_embeddings)

    def attach_parallel(self, engine) -> "OnlineServer":
        """Adopt a :class:`~repro.parallel.engine.ParallelEngine`.

        ``serve_batch`` then partitions each batch's ANN rows round-robin
        across the engine's workers and merges the padded top-k blocks, and
        :meth:`refresh` fans its scoped index rebuilds through the engine's
        executor.  The engine exports the current index once here and again
        after every refresh swap.
        """
        self._parallel = engine
        engine.attach_index(self.ann)
        return self

    # ------------------------------------------------------------------ #
    # Offline preparation
    # ------------------------------------------------------------------ #
    def warm_caches(self, user_ids: Sequence[int], query_ids: Sequence[int]) -> None:
        """Pre-populate the neighbor caches (the async refresh path)."""
        from repro.graph.schema import NodeType
        self.cache.warm(self.graph, NodeType.USER, user_ids)
        self.cache.warm(self.graph, self.query_type, query_ids)

    def build_inverted_index(self, query_ids: Sequence[int],
                             example_user: int = 0) -> None:
        """Build layer-1 posting lists from the trained embeddings."""
        query_embeddings = np.vstack([
            self.model.request_embedding(example_user, int(q)) for q in query_ids
        ])
        self.inverted_index.build_from_embeddings(
            list(query_ids), query_embeddings, self._item_embeddings)

    def prepare(self, user_ids: Sequence[int], query_ids: Sequence[int],
                example_user: int = 0) -> "OnlineServer":
        """One-call offline preparation: warm caches + inverted index.

        Equivalent to ``warm_caches(user_ids, query_ids)`` followed by
        ``build_inverted_index(query_ids)``; this is what
        :meth:`repro.api.pipeline.Pipeline.deploy` runs after training.
        """
        user_ids = list(user_ids)
        query_ids = list(query_ids)
        self._example_user = int(example_user)
        self.warm_caches(user_ids, query_ids)
        if self.use_inverted_index and query_ids:
            self.build_inverted_index(query_ids, example_user=example_user)
        return self

    # ------------------------------------------------------------------ #
    # Streaming refresh
    # ------------------------------------------------------------------ #
    def refresh(self, delta: "GraphDelta") -> RefreshReport:
        """Absorb a streaming graph update while continuing to serve.

        ``delta`` is the receipt of a (already applied)
        :meth:`~repro.graph.hetero_graph.HeteroGraph.apply_updates` call on
        this server's graph.  The refresh is scoped to exactly what the
        delta names:

        1. the model grows id embeddings for new nodes and drops its
           touched per-request caches (``on_graph_update``),
        2. memoised request embeddings of touched users/queries are
           dropped,
        3. the neighbor cache invalidates exactly the touched keys (whole
           id arrays per node type — no per-id Python loop), and the keys
           that were cached are queued for an asynchronous re-warm from
           the updated graph (applied by the next request batch's refresh
           drain, off the critical path) — except *evicted* nodes, whose
           entries are dropped and never re-warmed,
        4. item embeddings are recomputed for touched + new items only and
           a new ANN index is derived **on the side** (the coarse k-means
           centroids stay frozen; only changed rows are reassigned to
           cells; evicted items leave every cell but keep their corpus
           row, so the embedding matrix stays id-aligned), then swapped
           in — a request served mid-refresh reads the previous index end
           to end,
        5. inverted-index postings are rebuilt for exactly the touched
           queries that had one; evicted queries' postings are dropped
           without a rebuild and evicted items are purged from every
           surviving posting; untouched postings keep serving (the paper
           refreshes postings offline, so bounded staleness on untouched
           keys is intended).

        Steps 4 and 5 are **failure-atomic**: the new ANN index, embedding
        matrix and posting lists are staged on the side and committed
        together only once every piece is complete.  If the stage fails the
        server raises :class:`RefreshError`, keeps serving the prior
        version end to end, and flags itself ``degraded`` (surfaced by the
        daemon's ``stats`` verb); retrying the same delta — a succeeding
        refresh — clears the flag.

        Deterministic under a fixed server seed: cold-start embeddings are
        drawn from ``default_rng((seed, delta.version))``.
        """
        if delta.version < self.graph_version:
            raise ValueError(
                f"stale delta: version {delta.version} < server's "
                f"{self.graph_version}")
        if delta.is_empty() and delta.version == self.graph_version:
            return RefreshReport(version=self.graph_version)
        rng = np.random.default_rng((self._seed, delta.version))

        # 1. Model-side: new-node embeddings + scoped model-cache drops.
        self.model.on_graph_update(delta, rng=rng)

        # 2. Memoised request embeddings of touched users/queries.
        from repro.graph.schema import NodeType
        user_type = getattr(self.model, "user_type", NodeType.USER)
        touched_users = set(delta.touched_ids(user_type).tolist())
        touched_queries = set(delta.touched_ids(self.query_type).tolist())
        if touched_users or touched_queries:
            self._request_embedding_cache = {
                key: value
                for key, value in self._request_embedding_cache.items()
                if key[0] not in touched_users and key[1] not in touched_queries
            }

        # 3. Neighbor cache: invalidate exactly the touched keys — one
        #    array call per node type — and queue an asynchronous re-warm
        #    for the ones that were actually cached.  Evicted nodes are an
        #    exception: their entries are dropped for good (nothing left to
        #    re-warm; touched ⊇ evicted, so the drop happens right here).
        invalidated = 0
        for node_type, ids in delta.touched.items():
            dropped = self.cache.invalidate_nodes(node_type, ids)
            invalidated += len(dropped)
            evicted_here = set(delta.evicted_ids(node_type).tolist())
            for node_id in dropped:
                if node_id in evicted_here:
                    continue
                self.cache.enqueue_refresh(
                    node_type, node_id,
                    self.cache.top_graph_neighbors(self.graph, node_type,
                                                   node_id))

        # 4+5 (stage). Item embeddings + ANN + postings are *side-built*
        #    here — everything that can fail happens against staging state
        #    while the live index keeps serving — and swapped in below only
        #    once every piece is complete.  A failure anywhere in this
        #    block leaves the server on the prior version end to end (old
        #    ANN, old postings, old embedding matrix), flagged ``degraded``.
        num_items = self.graph.num_nodes[self.item_type]
        stale_items = np.union1d(delta.touched_ids(self.item_type),
                                 delta.added_ids(self.item_type))
        evicted_items = delta.evicted_ids(self.item_type)
        refreshed_items = 0
        new_items = num_items - self._item_embeddings.shape[0]
        swap_items = bool(stale_items.size or evicted_items.size
                          or new_items > 0)
        evicted_queries: set = set()
        stale_queries: List[int] = []
        staged_postings = None
        embeddings = self._item_embeddings
        fresh_ann = self.ann
        try:
            if fault_point("refresh.ann_fail"):
                raise InjectedFault("injected fault at refresh.ann_fail "
                                    f"(version {delta.version})")
            if swap_items:
                # Recompute touched/new rows only; derive the fresh index
                # with frozen coarse centroids, changed rows reassigned to
                # their nearest cell, evicted rows dropped from every cell.
                # The corpus row count never shrinks: tombstoned items keep
                # their embedding row so the id-aligned trained state stays
                # valid for a later re-add.
                embeddings = np.zeros(
                    (num_items, self._item_embeddings.shape[1]),
                    dtype=self.dtype)
                embeddings[:self._item_embeddings.shape[0]] = \
                    self._item_embeddings
                rows = [int(i) for i in stale_items if i < num_items]
                rows = sorted((set(rows) | set(
                    range(self._item_embeddings.shape[0], num_items)))
                    - set(evicted_items.tolist()))
                if rows:
                    embeddings[rows] = self.model.item_embeddings(rows)
                    refreshed_items = len(rows)
                executor = self._parallel.executor \
                    if self._parallel is not None \
                    else getattr(self.graph, "parallel_executor", None)
                fresh_ann = self.ann.rebuilt(
                    embeddings, np.asarray(rows, dtype=np.int64),
                    removed=evicted_items[evicted_items < num_items],
                    executor=executor)
            if self.use_inverted_index:
                evicted_queries = set(
                    delta.evicted_ids(self.query_type).tolist())
                stale_queries = [int(q) for q in touched_queries
                                 if q not in evicted_queries
                                 and self.inverted_index.has_posting(q)]
                if stale_queries:
                    query_embeddings = np.vstack([
                        self.model.request_embedding(self._example_user, q)
                        for q in stale_queries])
                    staged_postings = self.inverted_index.stage_postings(
                        stale_queries, query_embeddings, embeddings)
        except Exception as error:
            self.degraded = True
            self.degraded_reason = (f"refresh to version {delta.version} "
                                    f"failed before commit: {error}")
            raise RefreshError(self.degraded_reason) from error

        # 4+5 (commit). Nothing below can fail: plain swaps and dict
        #    writes.  Either every structure reflects the new version or —
        #    had the stage above raised — none of them do.
        if swap_items:
            self._item_embeddings = embeddings
            self.ann = fresh_ann                      # atomic swap
            if self._parallel is not None:
                self._parallel.attach_index(self.ann)   # re-export for workers
        refreshed_postings = 0
        dropped_postings = 0
        purged_posting_items = 0
        if self.use_inverted_index:
            # Drop evicted queries' postings outright, purge evicted items
            # from the surviving lists, then install the staged rebuilds of
            # exactly the touched queries (overwriting each key in place).
            if evicted_queries:
                dropped_postings = self.inverted_index.invalidate_queries(
                    sorted(evicted_queries))
            if evicted_items.size:
                purged_posting_items = self.inverted_index.purge_items(
                    evicted_items.tolist())
            if staged_postings:
                self.inverted_index.commit_postings(staged_postings)
                refreshed_postings = len(stale_queries)

        self.graph_version = delta.version
        self.degraded = False
        self.degraded_reason = ""
        return RefreshReport(version=self.graph_version,
                             invalidated_cache_keys=invalidated,
                             refreshed_postings=refreshed_postings,
                             refreshed_items=refreshed_items,
                             new_items=max(new_items, 0),
                             evicted_items=int(evicted_items.size),
                             dropped_postings=dropped_postings,
                             purged_posting_items=purged_posting_items)

    # ------------------------------------------------------------------ #
    # Online path
    # ------------------------------------------------------------------ #
    def serve(self, request: RequestLike, query_id: Optional[int] = None,
              k: int = 10) -> ServeResult:
        """Serve one retrieval request (a batch of one through serve_batch).

        Accepts a :class:`~repro.serving.request.ServeRequest` or the legacy
        positional ``serve(user_id, query_id)`` call style.
        """
        if query_id is not None:
            request = (int(request), int(query_id))
        return self.serve_batch([request], k=k)[0]

    def serve_batch(self, requests: Sequence[RequestLike],
                    k: int = 10) -> List[ServeResult]:
        """Serve a micro-batch of requests.

        Each element is a :class:`~repro.serving.request.ServeRequest` or a
        bare ``(user_id, query_id)`` pair (coerced, bit-identical results).
        Returns one :class:`ServeResult` per request, in request order, with
        each latency stage amortised over the batch.  Results (ids, scores,
        cache/index statistics) are identical to serving the same requests
        one at a time.
        """
        from repro.graph.schema import NodeType

        typed = coerce_requests(requests)
        requests = [request.key for request in typed]
        if not requests:
            return []
        batch = len(requests)

        # Stage 1 — apply queued async refreshes, then read the caches.
        # Misses fall back to the graph and refresh the cache inline, in the
        # same per-request order a sequential loop would use.
        start = time.perf_counter()
        self.cache.drain_refreshes()
        for user_id, query_id in requests:
            for node_type, node_id in ((NodeType.USER, user_id),
                                       (self.query_type, query_id)):
                if self.cache.get(node_type, node_id) is None:
                    self.cache.warm(self.graph, node_type, [node_id])
        cache_ms = (time.perf_counter() - start) * 1000.0

        # Stage 2 — request-embedding matrix (edge-level attention only).
        start = time.perf_counter()
        request_matrix = self._request_embeddings(requests)
        attention_ms = (time.perf_counter() - start) * 1000.0

        # Stage 3 — retrieval: inverted-index reads where possible, one
        # shared vectorized ANN search for the rest (fanned across the
        # worker pool when a parallel engine is attached).
        start = time.perf_counter()
        item_ids: List[Optional[np.ndarray]] = [None] * batch
        scores: List[Optional[np.ndarray]] = [None] * batch
        from_index = [False] * batch
        ann_rows: List[int] = []
        if self.use_inverted_index:
            postings = self.inverted_index.lookup_batch(
                [query_id for _, query_id in requests], k)
            for row, posting in enumerate(postings):
                if posting:
                    # One array conversion per posting; column views replace
                    # the old per-entry tuple comprehensions (ids are exact
                    # below 2**53, so the float round-trip is lossless).
                    pairs = np.asarray(posting, dtype=np.float64)
                    item_ids[row] = pairs[:, 0].astype(np.int64)
                    scores[row] = pairs[:, 1]
                    from_index[row] = True
                else:
                    ann_rows.append(row)
        else:
            ann_rows = list(range(batch))
        if ann_rows:
            searcher = (self._parallel.search_batch
                        if self._parallel is not None
                        else self.ann.search_batch)
            batch_ids, batch_scores = searcher(request_matrix[ann_rows], k)
            for position, row in enumerate(ann_rows):
                item_ids[row], scores[row] = strip_padding(
                    batch_ids[position], batch_scores[position])
        ann_ms = (time.perf_counter() - start) * 1000.0

        self._served += batch
        return [
            ServeResult(user_id=user_id, query_id=query_id,
                        item_ids=item_ids[row], scores=scores[row],
                        latency=LatencyBreakdown(cache_ms=cache_ms / batch,
                                                 attention_ms=attention_ms / batch,
                                                 ann_ms=ann_ms / batch),
                        from_inverted_index=from_index[row],
                        tenant=typed[row].tenant)
            for row, (user_id, query_id) in enumerate(requests)
        ]

    def _request_embeddings(self, requests: Sequence[Tuple[int, int]]
                            ) -> np.ndarray:
        """Assemble (and memoise) the request-embedding matrix for a batch.

        Cache misses are resolved once per distinct key, then the whole
        batch gathers from the memo into one pre-allocated serving-dtype
        matrix — no per-request ``vstack`` growth, and duplicate keys in a
        batch share one model call.
        """
        memo = self._request_embedding_cache
        for key in dict.fromkeys(requests):        # distinct, order kept
            if key not in memo:
                memo[key] = np.asarray(self.model.request_embedding(*key),
                                       dtype=self.dtype)
        matrix = np.empty((len(requests), self._item_embeddings.shape[1]),
                          dtype=self.dtype)
        for row, key in enumerate(requests):
            matrix[row] = memo[key]
        return matrix

    # ------------------------------------------------------------------ #
    # Load testing
    # ------------------------------------------------------------------ #
    def measure_service_time(self, requests: Sequence[Tuple[int, int]],
                             k: int = 10) -> float:
        """Median per-request service time (ms) over a warm-up request set."""
        if not requests:
            raise ValueError("need at least one request to measure")
        durations = []
        for user_id, query_id in requests:
            result = self.serve(user_id, query_id, k)
            durations.append(result.latency.service_ms)
        return float(np.median(durations))

    def measure_batched_service_time(self, requests: Sequence[Tuple[int, int]],
                                     batch_size: int, k: int = 10,
                                     min_batches: int = 3) -> float:
        """Median service time (ms) of full batches of exactly ``batch_size``.

        The calibration set is cycled so every measured batch is full — a
        short final chunk would otherwise be attributed to the wrong batch
        size and skew the affine profile fit in :meth:`batch_size_sweep`.
        """
        if not requests:
            raise ValueError("need at least one request to measure")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        requests = list(requests)
        num_batches = max(min_batches,
                          -(-len(requests) // batch_size))   # ceil division
        durations = []
        for index in range(num_batches):
            chunk = [requests[(index * batch_size + offset) % len(requests)]
                     for offset in range(batch_size)]
            start = time.perf_counter()
            self.serve_batch(chunk, k)
            durations.append((time.perf_counter() - start) * 1000.0)
        return float(np.median(durations))

    def qps_sweep(self, qps_values: Sequence[float],
                  calibration_requests: Sequence[Tuple[int, int]],
                  k: int = 10) -> List[Dict[str, float]]:
        """Measured-service-time + queueing-model sweep (the Fig. 9 series)."""
        service_ms = self.measure_service_time(calibration_requests, k)
        self.latency_model.calibrate_service_time(service_ms)
        return self.latency_model.sweep(qps_values)

    def batch_size_sweep(self, qps: float,
                         calibration_requests: Sequence[Tuple[int, int]],
                         batch_sizes: Sequence[int], k: int = 10
                         ) -> List[Dict[str, float]]:
        """Batch-size-versus-latency sweep at a fixed QPS (Fig. 9 extension).

        Measures the real per-batch service time of ``serve_batch`` at each
        batch size, fits the affine batch profile, and sweeps the queueing
        model.  Needs at least two distinct batch sizes.
        """
        measured = [self.measure_batched_service_time(calibration_requests,
                                                      batch_size, k)
                    for batch_size in batch_sizes]
        self.latency_model.calibrate_batch_profile(batch_sizes, measured)
        return self.latency_model.batch_sweep(qps, batch_sizes)
