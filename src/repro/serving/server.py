"""End-to-end online serving facade (paper Sections VI and VII-E).

For a request ``(user, query)`` the server:

1. reads the user's and query's cached neighbors (the k last-visited
   neighbors; a miss falls back to a graph lookup and refreshes the cache),
2. computes the request embedding with the *serving-time simplification* the
   paper describes — only the edge-level attention part of the multi-level
   attention module is kept, and the aggregation uses the cached neighbors
   instead of fresh sampling,
3. retrieves candidates from the inverted index (if the query has a posting
   list) or the ANN index over item embeddings,
4. returns the top-k items together with a latency breakdown.

The per-request service time measured here calibrates the
:class:`~repro.serving.latency.LatencySimulator` used for the Fig. 9 sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import RetrievalModel
from repro.serving.ann import IVFIndex
from repro.serving.cache import NeighborCache
from repro.serving.inverted_index import InvertedIndex
from repro.serving.latency import LatencyBreakdown, LatencySimulator


@dataclass
class ServeResult:
    """Outcome of one serving request."""

    user_id: int
    query_id: int
    item_ids: np.ndarray
    scores: np.ndarray
    latency: LatencyBreakdown
    from_inverted_index: bool


class OnlineServer:
    """Serves item-retrieval requests from a trained retrieval model."""

    def __init__(self, model: RetrievalModel, cache_capacity: int = 30,
                 ann_cells: int = 16, ann_nprobe: int = 3,
                 posting_length: int = 100, num_servers: int = 64,
                 use_inverted_index: bool = True, seed: int = 0):
        self.model = model
        self.graph = model.graph
        self.cache = NeighborCache(capacity=cache_capacity)
        self.inverted_index = InvertedIndex(posting_length=posting_length)
        self.use_inverted_index = use_inverted_index
        self.item_type = model.item_node_type()
        self.query_type = model.query_node_type()
        self._item_embeddings = model.item_embeddings()
        self.ann = IVFIndex(num_cells=ann_cells, nprobe=ann_nprobe, seed=seed)
        self.ann.build(self._item_embeddings)
        self.latency_model = LatencySimulator(num_servers=num_servers)
        self._request_embedding_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._served = 0

    # ------------------------------------------------------------------ #
    # Offline preparation
    # ------------------------------------------------------------------ #
    def warm_caches(self, user_ids: Sequence[int], query_ids: Sequence[int]) -> None:
        """Pre-populate the neighbor caches (the async refresh path)."""
        from repro.graph.schema import NodeType
        self.cache.warm(self.graph, NodeType.USER, user_ids)
        self.cache.warm(self.graph, self.query_type, query_ids)

    def build_inverted_index(self, query_ids: Sequence[int],
                             example_user: int = 0) -> None:
        """Build layer-1 posting lists from the trained embeddings."""
        query_embeddings = np.vstack([
            self.model.request_embedding(example_user, int(q)) for q in query_ids
        ])
        self.inverted_index.build_from_embeddings(
            list(query_ids), query_embeddings, self._item_embeddings)

    # ------------------------------------------------------------------ #
    # Online path
    # ------------------------------------------------------------------ #
    def serve(self, user_id: int, query_id: int, k: int = 10) -> ServeResult:
        """Serve one retrieval request and measure its latency breakdown."""
        from repro.graph.schema import NodeType

        start = time.perf_counter()
        for node_type, node_id in ((NodeType.USER, user_id),
                                   (self.query_type, query_id)):
            if self.cache.get(node_type, node_id) is None:
                neighbors: List[Tuple[str, int, float]] = []
                for spec, ids, weights in self.graph.neighbors(node_type,
                                                               int(node_id)):
                    neighbors.extend((spec.dst_type, int(i), float(w))
                                     for i, w in zip(ids, weights))
                neighbors.sort(key=lambda entry: -entry[2])
                self.cache.put(node_type, node_id, neighbors)
        cache_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        key = (int(user_id), int(query_id))
        request_embedding = self._request_embedding_cache.get(key)
        if request_embedding is None:
            request_embedding = self.model.request_embedding(user_id, query_id)
            self._request_embedding_cache[key] = request_embedding
        attention_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        from_index = False
        if self.use_inverted_index:
            posting = self.inverted_index.lookup(query_id, k)
            if posting:
                item_ids = np.array([item for item, _ in posting], dtype=np.int64)
                scores = np.array([score for _, score in posting])
                from_index = True
            else:
                item_ids, scores = self.ann.search(request_embedding, k)
        else:
            item_ids, scores = self.ann.search(request_embedding, k)
        ann_ms = (time.perf_counter() - start) * 1000.0

        self._served += 1
        return ServeResult(
            user_id=int(user_id), query_id=int(query_id),
            item_ids=item_ids, scores=scores,
            latency=LatencyBreakdown(cache_ms=cache_ms, attention_ms=attention_ms,
                                     ann_ms=ann_ms),
            from_inverted_index=from_index,
        )

    # ------------------------------------------------------------------ #
    # Load testing
    # ------------------------------------------------------------------ #
    def measure_service_time(self, requests: Sequence[Tuple[int, int]],
                             k: int = 10) -> float:
        """Median per-request service time (ms) over a warm-up request set."""
        if not requests:
            raise ValueError("need at least one request to measure")
        durations = []
        for user_id, query_id in requests:
            result = self.serve(user_id, query_id, k)
            durations.append(result.latency.service_ms)
        return float(np.median(durations))

    def qps_sweep(self, qps_values: Sequence[float],
                  calibration_requests: Sequence[Tuple[int, int]],
                  k: int = 10) -> List[Dict[str, float]]:
        """Measured-service-time + queueing-model sweep (the Fig. 9 series)."""
        service_ms = self.measure_service_time(calibration_requests, k)
        self.latency_model.calibrate_service_time(service_ms)
        return self.latency_model.sweep(qps_values)
