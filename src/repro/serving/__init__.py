"""Online serving stack (paper Sections VI and VII-E).

After training, item representations are indexed for approximate
nearest-neighbor retrieval; at request time the user-query tower runs with a
neighbor cache (k last-visited neighbors per user/query node, asynchronously
refreshed) and only the edge-level attention is kept, which lets the paper
serve thousands of QPS at ~3 ms.  This package reproduces the whole path —
and its production shape: the pipeline is **batched** end to end (vectorized
multi-query search, batched cache and index reads, micro-batched dispatch)
and the item corpus can be **sharded** with per-shard top-k merging.

* :class:`~repro.serving.cache.NeighborCache` — bounded per-node neighbor
  cache with batch get/put, an asynchronous refresh queue drained between
  request batches, and hit/miss accounting.
* :class:`~repro.serving.ann.ExactIndex` / :class:`~repro.serving.ann.IVFIndex`
  — brute-force and inverted-file ANN indexes whose core operation is
  ``search_batch(queries, k)`` over a query matrix; single-query ``search``
  is a batch-of-one wrapper.
* :class:`~repro.serving.sharding.ShardedIndex` — partitions item embeddings
  round-robin across shards and merges per-shard top-k into the global top-k.
* :class:`~repro.serving.inverted_index.InvertedIndex` — the two-layer
  query->items / item->metadata inverted index with batched lookups.
* :class:`~repro.serving.latency.LatencySimulator` — an M/M/c queueing model
  over per-request *and* per-batch (affine-profile) service times, for the
  Fig. 9 QPS sweep and its batch-size extension.
* :class:`~repro.serving.request.ServeRequest` — the request object the
  whole tier shares (``user_id``, ``query_id``, admission ``tenant``); bare
  ``(user_id, query_id)`` pairs are coerced everywhere, bit-identically.
* :class:`~repro.serving.batcher.RequestBatcher` — micro-batching front end
  (max batch size / max wait) over the server's batched path; ``poll()``
  flushes a wait-expired partial batch under idle traffic.
* :class:`~repro.serving.daemon.ServingDaemon` — the asyncio TCP
  (newline-delimited JSON) network tier: admission queue with load
  shedding, per-tenant token-bucket quotas, timer-driven batching through
  :class:`RequestBatcher`, graceful drain, and a ``stats`` verb
  (:class:`~repro.serving.daemon.DaemonClient` is the blocking client).
* :class:`~repro.serving.loadgen.OpenLoopLoadGenerator` — Poisson open-loop
  load generator (arrivals independent of completions) for SLO benches.
* :mod:`repro.serving.experiment` — the serving-time experimentation tier:
  :class:`~repro.serving.experiment.TrafficSplitter` (deterministic
  splitmix64 user->variant assignment),
  :class:`~repro.serving.experiment.VariantSet` (several deployed server
  versions behind one daemon, each with its own batcher lane), shadow
  mode (off-reply-path challenger scoring, bit-identical primaries), and
  :class:`~repro.serving.experiment.CanaryController` (stepwise ramps
  with guardrail-triggered rollback over per-variant CTR/PPC/RPM).
* :class:`~repro.serving.server.OnlineServer` — the end-to-end facade;
  ``serve_batch`` is the hot path and ``serve`` a batch-of-one wrapper that
  returns identical results and statistics.  ``refresh(delta)`` absorbs a
  streaming graph update while serving: touched cache keys and postings are
  invalidated exactly, and new ANN structures are built on the side before
  an atomic swap.
"""

from repro.serving.cache import CacheStats, NeighborCache
from repro.serving.ann import ExactIndex, IVFIndex, strip_padding
from repro.serving.sharding import ShardedIndex
from repro.serving.inverted_index import InvertedIndex
from repro.serving.latency import (
    BatchServiceProfile,
    LatencyBreakdown,
    LatencySimulator,
)
from repro.serving.batcher import BatcherStats, RequestBatcher
from repro.serving.request import ServeRequest, coerce_request, coerce_requests
from repro.serving.server import (
    OnlineServer,
    RefreshError,
    RefreshReport,
    ServeResult,
)
from repro.serving.daemon import DaemonClient, DaemonStats, ServingDaemon
from repro.serving.loadgen import LoadReport, OpenLoopLoadGenerator
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    classify_transport_error,
)
from repro.serving.experiment import (
    CanaryController,
    ExperimentTier,
    TrafficSplitter,
    VariantCounters,
    VariantSet,
)

__all__ = [
    "BatcherStats",
    "BatchServiceProfile",
    "CacheStats",
    "CanaryController",
    "CircuitBreaker",
    "CircuitOpenError",
    "DaemonClient",
    "DaemonStats",
    "ExactIndex",
    "ExperimentTier",
    "IVFIndex",
    "InvertedIndex",
    "LatencyBreakdown",
    "LatencySimulator",
    "LoadReport",
    "NeighborCache",
    "OnlineServer",
    "OpenLoopLoadGenerator",
    "RefreshError",
    "RefreshReport",
    "RequestBatcher",
    "RetryPolicy",
    "ServeRequest",
    "ServeResult",
    "ServingDaemon",
    "ShardedIndex",
    "TrafficSplitter",
    "VariantCounters",
    "VariantSet",
    "classify_transport_error",
    "coerce_request",
    "coerce_requests",
    "strip_padding",
]
