"""Online serving stack (paper Sections VI and VII-E).

After training, item representations are indexed for approximate
nearest-neighbor retrieval; at request time the user-query tower runs with a
neighbor cache (k last-visited neighbors per user/query node, asynchronously
refreshed) and only the edge-level attention is kept, which lets the paper
serve thousands of QPS at ~3 ms.  This package reproduces the whole path:

* :class:`~repro.serving.cache.NeighborCache` — bounded per-node neighbor
  cache with asynchronous refresh semantics and hit/miss accounting.
* :class:`~repro.serving.ann.IVFIndex` — an inverted-file ANN index (coarse
  k-means + per-cell exact search) over item embeddings.
* :class:`~repro.serving.inverted_index.InvertedIndex` — the two-layer
  query->items / item->metadata inverted index stored in the iGraph-like
  engine.
* :class:`~repro.serving.latency.LatencySimulator` — an M/M/c queueing model
  that turns per-request service times and QPS into response times (Fig. 9).
* :class:`~repro.serving.server.OnlineServer` — the end-to-end serving facade.
"""

from repro.serving.cache import NeighborCache
from repro.serving.ann import IVFIndex, ExactIndex
from repro.serving.inverted_index import InvertedIndex
from repro.serving.latency import LatencySimulator, LatencyBreakdown
from repro.serving.server import OnlineServer, ServeResult

__all__ = [
    "NeighborCache",
    "IVFIndex",
    "ExactIndex",
    "InvertedIndex",
    "LatencySimulator",
    "LatencyBreakdown",
    "OnlineServer",
    "ServeResult",
]
