"""The serving request type shared by every front end.

:class:`ServeRequest` is the single request object used end to end by the
serving tier: :meth:`~repro.serving.server.OnlineServer.serve_batch`,
:meth:`~repro.serving.batcher.RequestBatcher.submit`, and the
:mod:`~repro.serving.daemon` wire protocol all accept it.  The legacy call
style — a bare ``(user_id, query_id)`` pair — keeps working everywhere via
:func:`coerce_request`, and serves results bit-identical to the typed form
(the tenant label never enters the retrieval math; it only drives admission
control and quota accounting in the daemon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

#: Anything the serving surface accepts as one request.
RequestLike = Union["ServeRequest", Tuple[int, int], Sequence[int]]


@dataclass(frozen=True)
class ServeRequest:
    """One retrieval request: who is asking (``user_id``, ``tenant``) what (``query_id``)."""

    user_id: int
    query_id: int
    #: Admission-control/quota label; never affects retrieval results.
    tenant: str = "default"

    def __post_init__(self) -> None:
        """Normalise ids to plain ints (numpy scalars round-trip)."""
        object.__setattr__(self, "user_id", int(self.user_id))
        object.__setattr__(self, "query_id", int(self.query_id))
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ValueError("tenant must be a non-empty string")

    @property
    def key(self) -> Tuple[int, int]:
        """The ``(user_id, query_id)`` pair legacy call sites pass around."""
        return (self.user_id, self.query_id)


def coerce_request(value: RequestLike, tenant: str = "default") -> ServeRequest:
    """Accept a :class:`ServeRequest` or a bare ``(user_id, query_id)`` pair.

    The compat path is intentionally strict: a bare pair must have exactly
    two elements, so malformed requests fail loudly at the boundary instead
    of deep inside the batch assembly.
    """
    if isinstance(value, ServeRequest):
        return value
    try:
        user_id, query_id = value
    except (TypeError, ValueError):
        raise TypeError(
            f"expected a ServeRequest or a (user_id, query_id) pair, "
            f"got {value!r}") from None
    return ServeRequest(int(user_id), int(query_id), tenant=tenant)


def coerce_requests(values: Sequence[RequestLike]) -> List[ServeRequest]:
    """Vector form of :func:`coerce_request` (one list pass, order kept)."""
    return [coerce_request(value) for value in values]
