"""Approximate nearest-neighbor search over item embeddings.

"After training, the representations are fed to an efficient
Approximate-Nearest-Neighbors search module (ANN) to generate the inverted
index for online serving" (Section VI).  :class:`IVFIndex` is a classic
inverted-file index: item embeddings are clustered into ``num_cells`` coarse
cells with k-means, a query probes its ``nprobe`` closest cells and scores
only the items inside them.  :class:`ExactIndex` is the brute-force reference
used to measure recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class ExactIndex:
    """Brute-force inner-product index (the recall reference)."""

    def __init__(self, embeddings: np.ndarray,
                 ids: Optional[Sequence[int]] = None):
        self.embeddings = np.asarray(embeddings, dtype=np.float64)
        if self.embeddings.ndim != 2:
            raise ValueError("embeddings must be a 2-D array")
        self.ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(self.embeddings.shape[0])

    def __len__(self) -> int:
        return int(self.embeddings.shape[0])

    def search(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ids and scores by inner product."""
        scores = self.embeddings @ np.asarray(query, dtype=np.float64)
        k = min(k, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top])]
        return self.ids[order], scores[order]


class IVFIndex:
    """Inverted-file ANN index (coarse k-means + per-cell exact search)."""

    def __init__(self, num_cells: int = 16, nprobe: int = 3,
                 kmeans_iterations: int = 10, seed: int = 0):
        if num_cells <= 0 or nprobe <= 0:
            raise ValueError("num_cells and nprobe must be positive")
        self.num_cells = num_cells
        self.nprobe = nprobe
        self.kmeans_iterations = kmeans_iterations
        self._rng = np.random.default_rng(seed)
        self.centroids: Optional[np.ndarray] = None
        self._cells: List[np.ndarray] = []
        self.embeddings: Optional[np.ndarray] = None
        self.ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self, embeddings: np.ndarray,
              ids: Optional[Sequence[int]] = None) -> "IVFIndex":
        """Cluster the embeddings and build the per-cell posting lists."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] == 0:
            raise ValueError("embeddings must be a non-empty 2-D array")
        self.embeddings = embeddings
        self.ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(embeddings.shape[0])
        cells = min(self.num_cells, embeddings.shape[0])
        centroids = embeddings[self._rng.choice(embeddings.shape[0], size=cells,
                                                replace=False)].copy()
        assignments = np.zeros(embeddings.shape[0], dtype=np.int64)
        for _ in range(self.kmeans_iterations):
            distances = ((embeddings[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignments = distances.argmin(axis=1)
            for cell in range(cells):
                members = embeddings[assignments == cell]
                if members.shape[0]:
                    centroids[cell] = members.mean(axis=0)
        self.centroids = centroids
        self._cells = [np.where(assignments == cell)[0] for cell in range(cells)]
        return self

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, k: int,
               nprobe: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-k ids and scores for an inner-product query."""
        if self.centroids is None or self.embeddings is None or self.ids is None:
            raise RuntimeError("index not built; call build() first")
        query = np.asarray(query, dtype=np.float64)
        nprobe = nprobe if nprobe is not None else self.nprobe
        nprobe = min(nprobe, self.centroids.shape[0])
        centroid_distance = ((self.centroids - query) ** 2).sum(axis=1)
        probe_cells = np.argsort(centroid_distance)[:nprobe]
        candidates = np.concatenate([self._cells[cell] for cell in probe_cells]) \
            if probe_cells.size else np.zeros(0, dtype=np.int64)
        if candidates.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        scores = self.embeddings[candidates] @ query
        k = min(k, candidates.size)
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top])]
        return self.ids[candidates[order]], scores[order]

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Average recall@k against exact search over the same embeddings."""
        if self.embeddings is None or self.ids is None:
            raise RuntimeError("index not built; call build() first")
        exact = ExactIndex(self.embeddings, self.ids)
        recalls = []
        for query in np.atleast_2d(queries):
            approx_ids, _ = self.search(query, k)
            exact_ids, _ = exact.search(query, k)
            if exact_ids.size == 0:
                continue
            recalls.append(len(set(approx_ids) & set(exact_ids)) / exact_ids.size)
        return float(np.mean(recalls)) if recalls else 0.0
