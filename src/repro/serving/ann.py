"""Approximate nearest-neighbor search over item embeddings.

"After training, the representations are fed to an efficient
Approximate-Nearest-Neighbors search module (ANN) to generate the inverted
index for online serving" (Section VI).  :class:`IVFIndex` is a classic
inverted-file index: item embeddings are clustered into ``num_cells`` coarse
cells with k-means, a query probes its ``nprobe`` closest cells and scores
only the items inside them.  :class:`ExactIndex` is the brute-force reference
used to measure recall.

Both indexes are **batch-first**: the core operation is
``search_batch(queries, k)`` over a ``(Q, d)`` query matrix, which does one
matmul (per probed cell for IVF) plus a single ``argpartition`` along the
batch axis.  The single-query ``search(query, k)`` API is a thin wrapper that
runs a batch of one and strips the padding, so batched and sequential
searches go through the same code path and return identical results.

Batched results are fixed-shape ``(Q, k')`` arrays (``k' = min(k, n)``).
When a query has fewer than ``k'`` candidates (IVF cells can be small or
empty), its row is right-padded with id ``-1`` and score ``-inf``; use
:func:`strip_padding` to recover the ragged per-query lists.

Both indexes take a ``dtype``: ``float64`` (the default, matching training)
or ``float32`` for the serving read path — the online server stores its item
matrix, the coarse centroids and the request-embedding cache in ``float32``,
halving the bytes every search streams, with top-k ids pinned unchanged on
the Fig. 9 workload.  Queries are cast to the index dtype on entry, so
scores come back in the index's precision.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Sentinel id used to right-pad batched result rows with fewer than k hits.
PAD_ID = -1

#: Below this many changed rows a scoped IVF re-assignment stays in-process
#: even when an executor is supplied (dispatch overhead dominates).
MIN_PARALLEL_ASSIGN_ROWS = 256


def strip_padding(ids_row: np.ndarray, scores_row: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Drop the ``(PAD_ID, -inf)`` padding from one batched result row."""
    valid = ~((ids_row == PAD_ID) & np.isneginf(scores_row))
    return ids_row[valid], scores_row[valid]


def _as_query_matrix(queries: np.ndarray,
                     dtype: np.dtype = np.float64) -> np.ndarray:
    queries = np.asarray(queries, dtype=dtype)
    if queries.ndim != 2:
        raise ValueError("queries must be a 2-D (num_queries, dim) array; "
                         "use search() for a single 1-D query")
    return queries


def _empty_batch(num_queries: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (np.zeros((num_queries, 0), dtype=np.int64),
            np.zeros((num_queries, 0)),
            np.zeros((num_queries, 0), dtype=bool))


class ExactIndex:
    """Brute-force inner-product index (the recall reference)."""

    def __init__(self, embeddings: np.ndarray,
                 ids: Optional[Sequence[int]] = None,
                 dtype: np.dtype = np.float64):
        self.dtype = np.dtype(dtype)
        self.embeddings = np.asarray(embeddings, dtype=self.dtype)
        if self.embeddings.ndim != 2:
            raise ValueError("embeddings must be a 2-D array")
        self.ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(self.embeddings.shape[0])

    def __len__(self) -> int:
        return int(self.embeddings.shape[0])

    def search(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ids and scores by inner product (batch-of-one wrapper)."""
        query = np.asarray(query, dtype=self.dtype)
        ids, scores, valid = self._search_batch(query[None, :], k)
        return ids[0][valid[0]], scores[0][valid[0]]

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k for every row of a ``(Q, d)`` query matrix at once.

        Returns ``(ids, scores)`` of shape ``(Q, min(k, n))``.  Exact search
        always has ``n`` candidates per query, so rows are never padded.
        """
        ids, scores, _ = self._search_batch(
            _as_query_matrix(queries, self.dtype), k)
        return ids, scores

    def _search_batch(self, queries: np.ndarray, k: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        num_queries = queries.shape[0]
        top_k = min(max(int(k), 0), len(self))
        if num_queries == 0 or top_k == 0:
            return _empty_batch(num_queries)
        scores = queries @ self.embeddings.T                     # (Q, n)
        top = np.argpartition(-scores, top_k - 1, axis=1)[:, :top_k]
        order = np.argsort(-np.take_along_axis(scores, top, axis=1), axis=1)
        top = np.take_along_axis(top, order, axis=1)
        return (self.ids[top], np.take_along_axis(scores, top, axis=1),
                np.ones((num_queries, top_k), dtype=bool))


class IVFIndex:
    """Inverted-file ANN index (coarse k-means + per-cell exact search)."""

    def __init__(self, num_cells: int = 16, nprobe: int = 3,
                 kmeans_iterations: int = 10, seed: int = 0,
                 dtype: np.dtype = np.float64):
        if num_cells <= 0 or nprobe <= 0:
            raise ValueError("num_cells and nprobe must be positive")
        self.num_cells = num_cells
        self.nprobe = nprobe
        self.kmeans_iterations = kmeans_iterations
        self.dtype = np.dtype(dtype)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.centroids: Optional[np.ndarray] = None
        self._cells: List[np.ndarray] = []
        self.embeddings: Optional[np.ndarray] = None
        self.ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self, embeddings: np.ndarray,
              ids: Optional[Sequence[int]] = None) -> "IVFIndex":
        """Cluster the embeddings and build the per-cell posting lists."""
        embeddings = np.asarray(embeddings, dtype=self.dtype)
        if embeddings.ndim != 2 or embeddings.shape[0] == 0:
            raise ValueError("embeddings must be a non-empty 2-D array")
        self.embeddings = embeddings
        self.ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(embeddings.shape[0])
        cells = min(self.num_cells, embeddings.shape[0])
        centroids = embeddings[self._rng.choice(embeddings.shape[0], size=cells,
                                                replace=False)].copy()
        assignments = np.zeros(embeddings.shape[0], dtype=np.int64)
        for _ in range(self.kmeans_iterations):
            distances = ((embeddings[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignments = distances.argmin(axis=1)
            for cell in range(cells):
                members = embeddings[assignments == cell]
                if members.shape[0]:
                    centroids[cell] = members.mean(axis=0)
        # Cells can legitimately end up empty (e.g. duplicated points); they
        # simply contribute no candidates at search time.
        self.centroids = centroids
        self._cells = [np.where(assignments == cell)[0] for cell in range(cells)]
        return self

    def rebuilt(self, embeddings: np.ndarray, rows: np.ndarray,
                ids: Optional[Sequence[int]] = None,
                removed: Optional[np.ndarray] = None,
                executor=None) -> "IVFIndex":
        """A new index over an updated corpus, re-assigning only ``rows``.

        The streaming-refresh path: the coarse quantizer (k-means
        centroids) is kept frozen and only the changed rows — ``rows`` plus
        any rows appended beyond the old corpus — are assigned to their
        nearest existing cell, skipping the k-means iterations that
        dominate :meth:`build`.  Unchanged rows keep their cells, so with
        no changes search results are identical.  Centroids drifting from
        the corpus over many updates is the standard IVF trade-off; a
        periodic full :meth:`build` re-trains them.

        ``removed`` lists rows to drop from every cell — the lifecycle's
        evicted (tombstoned) nodes.  The corpus row count never shrinks
        (the embedding matrix stays id-aligned); the rows simply belong to
        no cell, so no search can return them.  Removal persists across
        further scoped rebuilds (assignments are derived from the cells)
        until a later update names the row in ``rows`` again, which
        re-assigns it — the evict-then-re-add path.

        With an ``executor`` (a worker pool's ``map`` interface) the
        changed rows' centroid assignment fans out across its slots;
        assignment is row-local, so the result is bit-identical either
        way.  Returns a fresh :class:`IVFIndex` (this one keeps serving
        until the caller swaps), sharing the frozen centroid array.
        """
        if self.centroids is None or self.embeddings is None:
            raise RuntimeError("index not built; call build() first")
        embeddings = np.asarray(embeddings, dtype=self.dtype)
        if embeddings.ndim != 2 or \
                embeddings.shape[1] != self.embeddings.shape[1]:
            raise ValueError("embeddings must be 2-D with the built width")
        old_count = self.embeddings.shape[0]
        if embeddings.shape[0] < old_count:
            raise ValueError("rebuilt() cannot shrink the corpus")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= embeddings.shape[0]):
            raise IndexError("rows out of range")
        removed = np.asarray(removed, dtype=np.int64) \
            if removed is not None else np.empty(0, dtype=np.int64)
        if removed.size and (removed.min() < 0
                             or removed.max() >= embeddings.shape[0]):
            raise IndexError("removed rows out of range")

        fresh = IVFIndex(num_cells=self.num_cells, nprobe=self.nprobe,
                         kmeans_iterations=self.kmeans_iterations,
                         seed=self._seed, dtype=self.dtype)
        fresh.centroids = self.centroids
        fresh.embeddings = embeddings
        fresh.ids = np.asarray(ids, dtype=np.int64) if ids is not None \
            else np.arange(embeddings.shape[0])
        # -1 = "in no cell": rows the old index never held (previously
        # removed) stay out unless this update names them again.
        assignments = np.full(embeddings.shape[0], -1, dtype=np.int64)
        for cell, members in enumerate(self._cells):
            assignments[members] = cell
        changed = np.union1d(rows, np.arange(old_count, embeddings.shape[0]))
        if removed.size:
            changed = np.setdiff1d(changed, removed)
        slots = getattr(executor, "num_slots", 1) if executor is not None else 1
        if changed.size and slots > 1 \
                and changed.size >= MIN_PARALLEL_ASSIGN_ROWS:
            chunks = [chunk for chunk in np.array_split(changed, slots)
                      if chunk.size]
            payloads = [{"embeddings": embeddings[chunk],
                         "centroids": self.centroids} for chunk in chunks]
            for chunk, assigned in zip(chunks,
                                       executor.map("ivf_assign_rows",
                                                    payloads)):
                assignments[chunk] = assigned
        elif changed.size:
            distances = ((embeddings[changed][:, None, :]
                          - self.centroids[None, :, :]) ** 2).sum(axis=2)
            assignments[changed] = distances.argmin(axis=1)
        if removed.size:
            assignments[removed] = -1
        fresh._cells = [np.where(assignments == cell)[0]
                        for cell in range(self.centroids.shape[0])]
        return fresh

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: np.ndarray, k: int,
               nprobe: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-k for one query (batch-of-one wrapper).

        May return fewer than ``k`` results when the probed cells hold fewer
        than ``k`` items.
        """
        query = np.asarray(query, dtype=self.dtype)
        ids, scores, valid = self._search_batch(query[None, :], k, nprobe)
        return ids[0][valid[0]], scores[0][valid[0]]

    def search_batch(self, queries: np.ndarray, k: int,
                     nprobe: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-k for every row of a ``(Q, d)`` query matrix.

        Cell-probe assignment is computed for all queries at once; each cell
        is then scored with a single matmul against the queries probing it.
        Returns ``(ids, scores)`` of shape ``(Q, min(k, n))``, right-padded
        with ``(PAD_ID, -inf)`` on rows with fewer candidates than ``k``
        (see :func:`strip_padding`).
        """
        ids, scores, _ = self._search_batch(
            _as_query_matrix(queries, self.dtype), k, nprobe)
        return ids, scores

    def _search_batch(self, queries: np.ndarray, k: int,
                      nprobe: Optional[int]
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.centroids is None or self.embeddings is None or self.ids is None:
            raise RuntimeError("index not built; call build() first")
        num_queries = queries.shape[0]
        num_items = self.embeddings.shape[0]
        nprobe = nprobe if nprobe is not None else self.nprobe
        nprobe = min(nprobe, self.centroids.shape[0])
        top_k = min(max(int(k), 0), num_items)
        if num_queries == 0 or top_k == 0:
            return _empty_batch(num_queries)

        # Cell-probe assignment for the whole batch in one shot: (Q, P).
        centroid_distance = ((queries[:, None, :] - self.centroids[None, :, :]) ** 2
                             ).sum(axis=2)
        probe_cells = np.argsort(centroid_distance, axis=1)[:, :nprobe]

        # Compact candidate layout: each query's candidates occupy one row of
        # width max-candidates-per-query (far below num_items for nprobe <<
        # num_cells), laid out probed-cell by probed-cell.  `starts[q, p]` is
        # where cell probe_cells[q, p]'s members begin in row q.
        cell_sizes = np.array([members.size for members in self._cells],
                              dtype=np.int64)
        probed_sizes = cell_sizes[probe_cells]                   # (Q, P)
        ends = np.cumsum(probed_sizes, axis=1)
        starts = ends - probed_sizes
        width = int(ends[:, -1].max())
        if width == 0:                      # every probed cell is empty
            return (np.full((num_queries, top_k), PAD_ID, dtype=np.int64),
                    np.full((num_queries, top_k), -np.inf, dtype=self.dtype),
                    np.zeros((num_queries, top_k), dtype=bool))
        cand_scores = np.full((num_queries, width), -np.inf, dtype=self.dtype)
        cand_rows = np.zeros((num_queries, width), dtype=np.int64)
        cand_valid = np.zeros((num_queries, width), dtype=bool)

        # Score cell by cell: one matmul per cell against the queries probing
        # it, scattered into each query's row at that cell's offset.
        for cell in range(self.centroids.shape[0]):
            members = self._cells[cell]
            if members.size == 0:
                continue
            rows, slots = np.nonzero(probe_cells == cell)
            if rows.size == 0:
                continue
            columns = starts[rows, slots][:, None] + np.arange(members.size)
            cand_scores[rows[:, None], columns] = \
                queries[rows] @ self.embeddings[members].T
            cand_rows[rows[:, None], columns] = members
            cand_valid[rows[:, None], columns] = True

        select = min(top_k, width)
        top = np.argpartition(-cand_scores, select - 1, axis=1)[:, :select]
        order = np.argsort(-np.take_along_axis(cand_scores, top, axis=1), axis=1)
        top = np.take_along_axis(top, order, axis=1)
        valid = np.take_along_axis(cand_valid, top, axis=1)
        out_ids = np.where(valid, self.ids[np.take_along_axis(cand_rows, top,
                                                              axis=1)], PAD_ID)
        out_scores = np.where(valid,
                              np.take_along_axis(cand_scores, top, axis=1),
                              -np.inf)
        if select < top_k:                  # keep the documented (Q, top_k) shape
            pad = top_k - select
            out_ids = np.pad(out_ids, ((0, 0), (0, pad)),
                             constant_values=PAD_ID)
            out_scores = np.pad(out_scores, ((0, 0), (0, pad)),
                                constant_values=-np.inf)
            valid = np.pad(valid, ((0, 0), (0, pad)), constant_values=False)
        return out_ids, out_scores, valid

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Average recall@k against exact search over the same embeddings."""
        if self.embeddings is None or self.ids is None:
            raise RuntimeError("index not built; call build() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[0] == 0:
            return 0.0
        exact = ExactIndex(self.embeddings, self.ids)
        approx_ids, _, approx_valid = self._search_batch(queries, k, None)
        exact_ids, _, _ = exact._search_batch(queries, k)
        recalls = []
        for row in range(queries.shape[0]):
            truth = exact_ids[row]
            if truth.size == 0:
                continue
            found = approx_ids[row][approx_valid[row]]
            recalls.append(len(set(found) & set(truth)) / truth.size)
        return float(np.mean(recalls)) if recalls else 0.0
