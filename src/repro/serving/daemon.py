"""Asyncio TCP serving daemon: the network tier over the batched server.

Everything below `repro.serving.daemon` used to be an in-process call; this
module puts the existing micro-batching policy behind a socket and adds the
traffic behaviours a production front end needs:

* **Wire protocol** — newline-delimited JSON over TCP, one frame per line.
  A request frame is ``{"op": "serve", "user_id": U, "query_id": Q,
  "tenant": "...", "k": 10, "id": <echo>}`` (``op`` defaults to ``serve``;
  ``tenant``/``k``/``id`` are optional).  ``{"op": "stats"}`` returns the
  daemon's counters (plus per-variant rows when an experiment tier is
  attached), and ``{"op": "feedback", ...}`` records impressions/clicks/
  revenue against the tier's per-variant metrics (see
  :mod:`repro.serving.experiment`).  Success responses carry ``ok: true``
  plus the
  :class:`~repro.serving.server.ServeResult` fields; rejections carry
  ``ok: false`` with an ``error`` tag and a 4xx-style ``code`` (``429`` for
  shed/quota, ``400`` for malformed frames, ``503`` while draining).
  Responses echo the frame's ``id`` and are **not** guaranteed to arrive in
  submission order on a pipelined connection — rejections return
  immediately while admitted requests answer when their batch flushes.
* **Micro-batching** — admitted requests flow through the in-process
  :class:`~repro.serving.batcher.RequestBatcher` (same policy, same knobs)
  into :meth:`~repro.serving.server.OnlineServer.serve_batch`.  A timer
  drives :meth:`RequestBatcher.poll`, so a partial batch parked under idle
  traffic is dispatched within ``max_wait_ms`` — the idle-straggler gap the
  in-process batcher had (its wait timeout was only checked on the next
  ``submit``).
* **Admission control** — at most ``max_queue_depth`` admitted-but-unserved
  requests; arrivals beyond that are shed per ``shed_policy`` (reject the
  newcomer, or shelve the oldest still-queued request in its favour).
* **Per-tenant quotas** — token buckets (``tenant_quotas`` rate in
  requests/second, ``quota_burst`` capacity); unlisted tenants are
  unmetered.  Quota rejections do not consume queue slots.
* **Graceful drain** — :meth:`ServingDaemon.stop` stops accepting,
  rejects new arrivals with ``draining``, serves every admitted request
  (flushing the final partial batch), then closes the connections.

The daemon is a single-dispatcher design: batches execute inline on the
event loop, so the socket front end behaves like the one-server queueing
station :class:`~repro.serving.latency.LatencySimulator` models —
``benchmarks/bench_serving_slo.py`` drives the real daemon with the
open-loop generator and cross-validates the measured latency against that
model.  :meth:`ServingDaemon.start_in_thread` runs the event loop on a
background thread for synchronous callers (the CLI, tests, and
:meth:`repro.api.pipeline.Deployment.daemon`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.faults import active_plan
from repro.serving.batcher import RequestBatcher
from repro.serving.request import ServeRequest
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    classify_transport_error,
)
from repro.serving.server import ServeResult

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.api.spec import DaemonSpec
    from repro.serving.experiment import ExperimentTier


@dataclass
class DaemonStats:
    """Admission and traffic counters (the ``stats`` verb exposes these)."""

    #: Connections accepted over the daemon's lifetime.
    connections: int = 0
    #: Parsed ``serve`` frames (before any admission decision).
    received: int = 0
    #: Requests admitted into the queue/batcher.
    admitted: int = 0
    #: Admitted requests answered with a ServeResult.
    served: int = 0
    #: Arrivals shed because the admission queue was full.
    shed_queue: int = 0
    #: Arrivals rejected by a tenant token bucket.
    shed_quota: int = 0
    #: Arrivals rejected because the daemon was draining.
    rejected_draining: int = 0
    #: Frames that failed to parse or named an unknown op.
    malformed: int = 0
    #: ``stats`` frames answered.
    stats_requests: int = 0
    #: ``feedback`` frames recorded against the experiment tier.
    feedback_requests: int = 0
    #: Quota rejections broken down by tenant.
    quota_rejections_by_tenant: Dict[str, int] = field(default_factory=dict)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``capacity`` burst."""

    def __init__(self, rate: float, capacity: float):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last: Optional[float] = None

    def try_acquire(self, now: float) -> bool:
        """Refill from elapsed time, then take one token if available."""
        if self._last is not None:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class _Rejection:
    """A non-served outcome resolved onto a request's future."""

    error: str
    code: int
    detail: str = ""


_SHED = _Rejection("shed", 429, "admission queue full")
_DRAINING = _Rejection("draining", 503, "daemon is shutting down")


@dataclass
class _Lane:
    """One variant's dispatch lane: a batcher plus its outcome queue.

    ``futures`` mirrors the batcher's submission order; a ``None`` entry
    marks a shadow copy — its result feeds the experiment tier's metrics
    and never answers a connection.  ``primary_pending`` counts the
    reply-path requests currently inside the batcher, which is what the
    shared admission queue-depth check charges (shadow copies ride free:
    they are the daemon's own work, not an arrival).
    """

    name: str
    batcher: RequestBatcher
    futures: Deque[Optional[asyncio.Future]] = field(default_factory=deque)
    primary_pending: int = 0


class ServingDaemon:
    """Newline-delimited-JSON TCP front end over an ``OnlineServer``.

    ``server`` is anything with the ``serve_batch(requests, k=...)``
    contract (an :class:`~repro.serving.server.OnlineServer`, with or
    without an attached parallel engine).  ``spec`` is a
    :class:`~repro.api.spec.DaemonSpec`; ``None`` uses its defaults.

    With ``experiment`` (an
    :class:`~repro.serving.experiment.ExperimentTier`) the daemon hosts
    every variant in the tier's :class:`~repro.serving.experiment.VariantSet`
    behind the same socket: admission control, quotas, and shedding stay
    shared at the front (drain/shed semantics are unchanged), and each
    variant gets its own ``RequestBatcher`` lane behind it.  Admitted
    requests are routed by the tier's deterministic
    :class:`~repro.serving.experiment.TrafficSplitter`; in shadow mode the
    non-control variants additionally score an off-reply-path copy of
    every admitted request *after* the reply path has been resolved, so
    primary replies are bit-identical to single-version serving.  ``server``
    may be omitted (the tier's control server is used) or must be the
    tier's control server.
    """

    def __init__(self, server=None, spec: Optional["DaemonSpec"] = None,
                 default_k: int = 10,
                 experiment: Optional["ExperimentTier"] = None):
        if spec is None:
            from repro.api.spec import DaemonSpec
            spec = DaemonSpec()
        spec.validate()
        self.spec = spec
        self.experiment = experiment
        if experiment is not None:
            if server is not None and server is not experiment.control_server:
                raise ValueError(
                    "server must be the experiment tier's control server "
                    "(or omitted)")
            server = experiment.control_server
        elif server is None:
            raise ValueError("a server is required without an experiment "
                             "tier")
        self.server = server
        self.default_k = int(default_k)

        def _lane(name: str, lane_server) -> _Lane:
            return _Lane(name=name, batcher=RequestBatcher(
                lane_server, max_batch_size=spec.max_batch_size,
                max_wait_ms=spec.max_wait_ms, k=self.default_k))

        if experiment is None:
            self._lanes: Dict[str, _Lane] = {"default": _lane("default",
                                                              server)}
            self._control_lane = self._lanes["default"]
        else:
            self._lanes = {
                name: _lane(name, experiment.variant_set.server_for(name))
                for name in experiment.variant_set.names}
            self._control_lane = self._lanes[experiment.control]
        #: The control (primary) lane's batcher — the single-version
        #: daemon's ``batcher`` attribute, unchanged.
        self.batcher = self._control_lane.batcher
        #: Off-reply-path shadow copies awaiting dispatch: ``(variant
        #: name, request)``.  Filled while admitted requests are routed,
        #: drained only after the reply path has resolved and yielded.
        self._shadow_backlog: Deque[Tuple[str, ServeRequest]] = deque()
        self.stats = DaemonStats()
        self.host: Optional[str] = None
        #: The bound port (resolves ``spec.port == 0`` to the real one).
        self.port: Optional[int] = None
        self._buckets: Dict[str, TokenBucket] = {
            tenant: TokenBucket(rate, spec.quota_burst or rate)
            for tenant, rate in spec.tenant_quotas.items()}
        #: Admitted requests waiting to enter their lane's batcher:
        #: ``(request, future)`` in arrival order.
        self._admitted: Deque[Tuple[ServeRequest, asyncio.Future]] = deque()
        self._writers: set = set()
        self._tcp: Optional[asyncio.AbstractServer] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._draining = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Admitted-but-unserved requests (admission queue + forming batches).

        Shadow copies are not charged: they are the daemon's own off-path
        work, not admitted arrivals, so shadow mode cannot change when
        shedding kicks in.
        """
        return len(self._admitted) + sum(lane.primary_pending
                                         for lane in self._lanes.values())

    def stats_dict(self) -> Dict[str, Any]:
        """The ``stats`` verb's payload: daemon + batcher + queue counters.

        ``admitted`` always reconciles with the batcher's ``submitted`` plus
        the requests still waiting in the admission queue, and ``served``
        with the batcher's ``served`` (every dispatched request is answered).
        """
        batcher = self.batcher.stats
        payload = asdict(self.stats)
        payload.update({
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.spec.max_queue_depth,
            "draining": self._draining,
            "batcher": {
                "submitted": batcher.submitted,
                "served": batcher.served,
                "batches": batcher.batches,
                "flushed_full": batcher.flushed_full,
                "flushed_wait": batcher.flushed_wait,
                "flushed_manual": batcher.flushed_manual,
                "mean_batch_size": round(batcher.mean_batch_size, 4),
                "pending": len(self.batcher),
            },
            "server": {
                "degraded": bool(getattr(self.server, "degraded", False)),
                "degraded_reason": str(getattr(self.server,
                                               "degraded_reason", "")),
                "graph_version": getattr(self.server, "graph_version", None),
            },
        })
        if self.experiment is not None:
            tier = self.experiment.stats_dict()
            for name, lane in self._lanes.items():
                row = tier["variants"].get(name)
                if row is not None:
                    lane_stats = lane.batcher.stats
                    row["batcher"] = {
                        "submitted": lane_stats.submitted,
                        "served": lane_stats.served,
                        "batches": lane_stats.batches,
                        "pending": len(lane.batcher),
                    }
            payload["experiment"] = tier
        return payload

    # ------------------------------------------------------------------ #
    # Async lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ServingDaemon":
        """Bind the socket and start the batching loop; returns when listening."""
        if self._tcp is not None:
            raise RuntimeError("daemon already started")
        self._wake = asyncio.Event()
        self._tcp = await asyncio.start_server(
            self._handle_connection, host=self.spec.host, port=self.spec.port)
        bound = self._tcp.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        self._batch_task = asyncio.create_task(self._batch_loop())
        return self

    async def stop(self) -> None:
        """Graceful drain: stop accepting, serve everything admitted, close.

        Idempotent.  After ``stop`` returns every admitted request has been
        answered (the final partial batch is flushed) and every connection
        has been closed.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._tcp is not None:
            self._tcp.close()
        if self._wake is not None:
            self._wake.set()
        if self._batch_task is not None:
            await self._batch_task
        if self._tcp is not None:
            await self._tcp.wait_closed()
        # Let the result callbacks scheduled by the final flush write their
        # frames before the connections go away.
        for _ in range(3):
            await asyncio.sleep(0)
        for writer in list(self._writers):
            try:
                writer.close()
            except (OSError, RuntimeError):  # pragma: no cover - best-effort close
                pass

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled (then drain)."""
        if self._tcp is None:
            await self.start()
        try:
            await self._tcp.serve_forever()
        except asyncio.CancelledError:
            await self.stop()
            raise

    # ------------------------------------------------------------------ #
    # Batching loop (single dispatcher)
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        while True:
            if not self._admitted:
                if self._draining:
                    for lane in self._lanes.values():
                        self._resolve(lane, lane.batcher.flush())
                    self._dispatch_shadow(flush=True)
                    if not self._admitted:
                        break
                    continue
                deadline_ms = self._ms_until_deadline()
                try:
                    if deadline_ms is None:
                        await self._wake.wait()
                    else:
                        await asyncio.wait_for(self._wake.wait(),
                                               timeout=max(deadline_ms, 0.2)
                                               / 1000.0)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
            while self._admitted:
                request, future = self._admitted.popleft()
                lane = self._route(request)
                lane.futures.append(future)
                lane.primary_pending += 1
                self._resolve(lane, lane.batcher.submit(request))
                if self.experiment is not None:
                    for name in self.experiment.shadow_targets:
                        self._shadow_backlog.append((name, request))
            for lane in self._lanes.values():
                self._resolve(lane, lane.batcher.poll())
            if self._shadow_backlog:
                # Let the reply-path callbacks (scheduled by set_result)
                # write their frames before the off-path copies are scored.
                await asyncio.sleep(0)
                self._dispatch_shadow()

    def _route(self, request: ServeRequest) -> _Lane:
        """The lane answering ``request`` (the tier's splitter decides)."""
        if self.experiment is None:
            return self._control_lane
        return self._lanes[self.experiment.route(request.user_id)]

    def _ms_until_deadline(self) -> Optional[float]:
        """The soonest partial-batch wait deadline across every lane."""
        deadlines = [lane.batcher.ms_until_deadline()
                     for lane in self._lanes.values()]
        live = [deadline for deadline in deadlines if deadline is not None]
        return min(live) if live else None

    def _dispatch_shadow(self, flush: bool = False) -> None:
        """Submit queued shadow copies into their variants' lanes.

        Runs strictly after the reply path has resolved (and, outside
        drain, after a loop yield), so shadow scoring never delays or
        alters a primary reply.  With ``flush`` the shadow lanes' partial
        batches are forced out too (shutdown drain).
        """
        while self._shadow_backlog:
            name, request = self._shadow_backlog.popleft()
            lane = self._lanes[name]
            lane.futures.append(None)
            self._resolve(lane, lane.batcher.submit(request))
        if flush:
            for lane in self._lanes.values():
                self._resolve(lane, lane.batcher.flush())

    def _resolve(self, lane: _Lane, results: List[ServeResult]) -> None:
        """Answer flushed results onto their lane's futures, submission order.

        ``None`` future slots are shadow copies: their results feed the
        experiment tier's counters (and optional listener) and never touch
        a connection.
        """
        for result in results:
            future = lane.futures.popleft()
            if future is None:
                if self.experiment is not None:
                    self.experiment.record_shadow(lane.name, result)
                continue
            lane.primary_pending -= 1
            if not future.done():
                future.set_result(result)
                self.stats.served += 1
                if self.experiment is not None:
                    self.experiment.record_served(lane.name)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                plan = active_plan()
                if plan is not None:
                    # Armed chaos plan: drop the connection instead of
                    # answering, or stall the exchange by the plan's delay.
                    if plan.fires("net.drop"):
                        break
                    if plan.fires("net.stall"):
                        await asyncio.sleep(plan.stall_ms / 1000.0)
                self._handle_frame(line, writer)
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except (OSError, RuntimeError):  # pragma: no cover - best-effort close
                pass

    def _handle_frame(self, raw: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            frame = json.loads(raw)
            if not isinstance(frame, dict):
                raise ValueError("frame must be a JSON object")
        except ValueError as error:
            self.stats.malformed += 1
            self._write(writer, {"ok": False, "error": "malformed",
                                 "code": 400, "detail": str(error)})
            return
        echo_id = frame.get("id")
        op = frame.get("op", "serve")
        if op == "stats":
            self.stats.stats_requests += 1
            self._write(writer, {"ok": True, "stats": self.stats_dict()},
                        echo_id)
        elif op == "serve":
            self._handle_serve(frame, writer, echo_id)
        elif op == "feedback":
            self._handle_feedback(frame, writer, echo_id)
        else:
            self.stats.malformed += 1
            self._write(writer, {"ok": False, "error": "malformed",
                                 "code": 400,
                                 "detail": f"unknown op {op!r}"}, echo_id)

    def _handle_serve(self, frame: Dict[str, Any],
                      writer: asyncio.StreamWriter,
                      echo_id: Any) -> None:
        try:
            request = ServeRequest(int(frame["user_id"]),
                                   int(frame["query_id"]),
                                   tenant=frame.get("tenant", "default"))
            k = int(frame.get("k", self.default_k))
            if k < 1:
                raise ValueError("k must be at least 1")
        except (KeyError, TypeError, ValueError) as error:
            self.stats.malformed += 1
            self._write(writer, {"ok": False, "error": "malformed",
                                 "code": 400, "detail": str(error)}, echo_id)
            return
        self.stats.received += 1
        rejection = self._admission_decision(request)
        if rejection is not None:
            self._write_outcome(writer, echo_id, k, request, rejection)
            return
        future = asyncio.get_running_loop().create_future()
        future.add_done_callback(
            partial(self._on_outcome, writer, echo_id, k, request))
        self._admitted.append((request, future))
        self.stats.admitted += 1
        self._wake.set()

    def _handle_feedback(self, frame: Dict[str, Any],
                         writer: asyncio.StreamWriter,
                         echo_id: Any) -> None:
        """Record impressions/clicks/revenue against the experiment tier.

        Frame: ``{"op": "feedback", "user_id": U, "impressions": i,
        "clicks": c, "revenue": r, "variant": "..."}`` (``impressions``
        defaults to 1, the rest to 0; ``variant`` defaults to the
        splitter's current assignment of ``user_id``).  Feedback is
        metrics-only — it consumes no queue slot and is accepted even
        while draining.
        """
        if self.experiment is None:
            self.stats.malformed += 1
            self._write(writer, {"ok": False, "error": "malformed",
                                 "code": 400,
                                 "detail": "no experiment tier attached"},
                        echo_id)
            return
        try:
            variant = frame.get("variant")
            if variant is not None:
                variant = str(variant)
            variant = self.experiment.record_feedback(
                int(frame["user_id"]),
                impressions=int(frame.get("impressions", 1)),
                clicks=int(frame.get("clicks", 0)),
                revenue=float(frame.get("revenue", 0.0)),
                variant=variant)
        except (KeyError, TypeError, ValueError) as error:
            self.stats.malformed += 1
            self._write(writer, {"ok": False, "error": "malformed",
                                 "code": 400, "detail": str(error)}, echo_id)
            return
        self.stats.feedback_requests += 1
        self._write(writer, {"ok": True, "variant": variant}, echo_id)

    def _admission_decision(self, request: ServeRequest
                            ) -> Optional[_Rejection]:
        """Draining / quota / queue-depth checks, in that order."""
        if self._draining:
            self.stats.rejected_draining += 1
            return _DRAINING
        bucket = self._buckets.get(request.tenant)
        if bucket is not None and not bucket.try_acquire(time.monotonic()):
            self.stats.shed_quota += 1
            by_tenant = self.stats.quota_rejections_by_tenant
            by_tenant[request.tenant] = by_tenant.get(request.tenant, 0) + 1
            return _Rejection("quota", 429,
                              f"tenant {request.tenant!r} over quota")
        if self.queue_depth >= self.spec.max_queue_depth:
            if self.spec.shed_policy == "drop-oldest" and self._admitted:
                victim_request, victim_future = self._admitted.popleft()
                if not victim_future.done():
                    victim_future.set_result(_SHED)
                self.stats.shed_queue += 1
                return None         # the newcomer takes the freed slot
            self.stats.shed_queue += 1
            return _SHED
        return None

    # ------------------------------------------------------------------ #
    # Response writing
    # ------------------------------------------------------------------ #
    def _on_outcome(self, writer: asyncio.StreamWriter, echo_id: Any, k: int,
                    request: ServeRequest, future: asyncio.Future) -> None:
        if future.cancelled():      # pragma: no cover - defensive
            return
        self._write_outcome(writer, echo_id, k, request, future.result())

    def _write_outcome(self, writer: asyncio.StreamWriter, echo_id: Any,
                       k: int, request: ServeRequest, outcome: Any) -> None:
        if isinstance(outcome, _Rejection):
            self._write(writer, {
                "ok": False, "error": outcome.error, "code": outcome.code,
                "detail": outcome.detail, "user_id": request.user_id,
                "query_id": request.query_id, "tenant": request.tenant,
            }, echo_id)
            return
        result: ServeResult = outcome
        self._write(writer, {
            "ok": True,
            "user_id": result.user_id,
            "query_id": result.query_id,
            "tenant": result.tenant,
            "item_ids": [int(i) for i in result.item_ids[:k]],
            "scores": [float(s) for s in result.scores[:k]],
            "from_inverted_index": bool(result.from_inverted_index),
            "latency_ms": round(result.latency.service_ms, 4),
        }, echo_id)

    @staticmethod
    def _write(writer: asyncio.StreamWriter, payload: Dict[str, Any],
               echo_id: Any = None) -> None:
        if echo_id is not None:
            payload["id"] = echo_id
        if writer.is_closing():
            return
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")

    # ------------------------------------------------------------------ #
    # Synchronous (background-thread) lifecycle
    # ------------------------------------------------------------------ #
    def start_in_thread(self, timeout: float = 30.0) -> "ServingDaemon":
        """Run the daemon's event loop on a daemon thread; returns once bound.

        This is how synchronous callers (CLI, tests,
        :meth:`repro.api.pipeline.Deployment.daemon`) host the asyncio tier;
        pair with :meth:`close`, or use the daemon as a context manager.
        """
        if self._thread is not None or self._tcp is not None:
            raise RuntimeError("daemon already started")
        loop = asyncio.new_event_loop()
        self._thread_loop = loop
        ready = threading.Event()
        failures: List[BaseException] = []

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            # repro: allow[EXC002] -- the failure is handed to the caller's
            # thread via `failures` and re-raised there, not swallowed
            except BaseException as error:   # bind failures surface caller-side
                failures.append(error)
                ready.set()
                loop.close()
                return
            ready.set()
            loop.run_forever()
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

        self._thread = threading.Thread(target=_run, name="repro-daemon",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("daemon failed to start within the timeout")
        if failures:
            self._thread.join()
            self._thread = None
            raise failures[0]
        return self

    def close(self, timeout: float = 60.0) -> None:
        """Drain and stop a thread-hosted daemon (see :meth:`stop`); idempotent."""
        if self._thread is None or self._thread_loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(),
                                                  self._thread_loop)
        future.result(timeout=timeout)
        self._thread_loop.call_soon_threadsafe(self._thread_loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ServingDaemon":
        """Start on a background thread when not already running."""
        if self._tcp is None and self._thread is None:
            self.start_in_thread()
        return self

    def __exit__(self, *exc_info) -> None:
        """Drain and stop the thread-hosted daemon."""
        self.close()


class DaemonClient:
    """Blocking newline-delimited-JSON client for :class:`ServingDaemon`.

    One request at a time per client: each call writes a frame and reads
    exactly one response, so the pipelined-ordering caveat of the wire
    protocol never applies.  Use the raw :meth:`send` / :meth:`recv`
    primitives to exercise pipelining (the daemon tests do).

    Resilience (all opt-in, defaults preserve the bare client):

    * ``request_timeout`` bounds each :meth:`request`'s socket wait; an
      expiry surfaces (and is classified) as a ``timeout`` transport error.
    * ``retry`` (a :class:`~repro.serving.resilience.RetryPolicy`) makes
      :meth:`request` reconnect and retry transport failures with bounded,
      seeded-jitter backoff.  Retried frames are resent verbatim, so a
      retried ``serve`` is idempotent server-side (same request, new
      admission decision).
    * ``breaker`` (a :class:`~repro.serving.resilience.CircuitBreaker`)
      fails fast with :class:`~repro.serving.resilience.CircuitOpenError`
      once the daemon keeps failing, instead of piling retries onto it.

    ``transport_failures`` counts failures by class (``connect_refused`` /
    ``reset`` / ``timeout`` / ``other``) across the client's lifetime.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 request_timeout: Optional[float] = None,
                 retry: Optional["RetryPolicy"] = None,
                 breaker: Optional["CircuitBreaker"] = None):
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self.request_timeout = request_timeout
        self.retry = retry
        self.breaker = breaker
        #: Transport failures by classification (see
        #: :func:`~repro.serving.resilience.classify_transport_error`).
        self.transport_failures: Dict[str, int] = {}
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=self._timeout)
        self._file = self._sock.makefile("rb")

    def _ensure_connected(self) -> None:
        """Reconnect after :meth:`_reset_connection` dropped the socket."""
        if self._sock is None:
            self._connect()

    def _reset_connection(self) -> None:
        """Tear down a connection a transport error left half-dead."""
        sock, self._sock = self._sock, None
        file, self._file = self._file, None
        for closeable in (file, sock):
            if closeable is None:
                continue
            try:
                closeable.close()
            except OSError:   # pragma: no cover - best-effort teardown
                pass

    def send(self, frame: Dict[str, Any]) -> None:
        """Write one frame without waiting for its response."""
        self._ensure_connected()
        self._sock.sendall(json.dumps(frame).encode("utf-8") + b"\n")

    def send_raw(self, payload: bytes) -> None:
        """Write raw bytes (malformed-frame tests)."""
        self._ensure_connected()
        self._sock.sendall(payload)

    def recv(self) -> Dict[str, Any]:
        """Read one response frame; raises ``ConnectionError`` on EOF."""
        self._ensure_connected()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def _record_failure(self, error: BaseException) -> str:
        kind = classify_transport_error(error)
        self.transport_failures[kind] = self.transport_failures.get(kind,
                                                                    0) + 1
        if self.breaker is not None:
            self.breaker.record_failure()
        self._reset_connection()
        return kind

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One frame in, one frame out — retried/gated when configured.

        Without ``retry``/``breaker``/``request_timeout`` this is the bare
        send-then-recv exchange.  With them, each attempt is bounded by
        ``request_timeout``; transport failures are classified, counted,
        fed to the breaker, and retried per the policy (fresh connection
        each time); an open breaker raises
        :class:`~repro.serving.resilience.CircuitOpenError` without
        touching the socket.
        """
        attempt = 0
        while True:
            if self.breaker is not None and not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open after "
                    f"{self.breaker.consecutive_failures} consecutive "
                    f"transport failure(s)")
            try:
                self._ensure_connected()
                if self.request_timeout is not None:
                    self._sock.settimeout(self.request_timeout)
                self.send(frame)
                response = self.recv()
            except (ConnectionError, TimeoutError, OSError) as error:
                self._record_failure(error)
                if self.retry is None or not self.retry.should_retry(attempt):
                    raise
                time.sleep(self.retry.backoff_s(attempt))
                attempt += 1
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return response

    def serve(self, user_id: int, query_id: int, k: int = 10,
              tenant: str = "default") -> Dict[str, Any]:
        """Serve one request and return the decoded response frame."""
        return self.request({"op": "serve", "user_id": int(user_id),
                             "query_id": int(query_id), "k": int(k),
                             "tenant": tenant})

    def stats(self) -> Dict[str, Any]:
        """The daemon's counters (see :meth:`ServingDaemon.stats_dict`)."""
        return self.request({"op": "stats"})["stats"]

    def feedback(self, user_id: int, impressions: int = 1, clicks: int = 0,
                 revenue: float = 0.0,
                 variant: Optional[str] = None) -> Dict[str, Any]:
        """Record one feedback frame against the daemon's experiment tier."""
        frame: Dict[str, Any] = {"op": "feedback", "user_id": int(user_id),
                                 "impressions": int(impressions),
                                 "clicks": int(clicks),
                                 "revenue": float(revenue)}
        if variant is not None:
            frame["variant"] = variant
        return self.request(frame)

    def close(self) -> None:
        """Close the connection; idempotent."""
        self._reset_connection()

    def __enter__(self) -> "DaemonClient":
        """Context-manager entry (connection already open)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on block exit."""
        self.close()
