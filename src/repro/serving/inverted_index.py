"""Two-layer inverted index for online retrieval (paper Sections VI, VII-E).

"In the online serving stage, the two-layer inverted indexes are stored in
igraph engine."  The first layer maps a query node to its pre-computed
top-items posting list (built offline from the trained embeddings via the ANN
index); the second layer maps an item to its metadata (category, price) used
by the ranking stage.  Posting lists are refreshed offline, so online lookups
are pure dictionary reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class ItemMetadata:
    """Second-layer entry: per-item attributes used by downstream ranking."""

    item_id: int
    category: int = -1
    price: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


class InvertedIndex:
    """Query -> posting list (layer 1) and item -> metadata (layer 2)."""

    def __init__(self, posting_length: int = 100):
        if posting_length <= 0:
            raise ValueError("posting_length must be positive")
        self.posting_length = posting_length
        self._postings: Dict[int, List[Tuple[int, float]]] = {}
        self._metadata: Dict[int, ItemMetadata] = {}
        self.lookups = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Build (offline)
    # ------------------------------------------------------------------ #
    def add_posting(self, query_id: int,
                    items_with_scores: Sequence[Tuple[int, float]]) -> None:
        """Set the posting list of a query (sorted by descending score)."""
        ordered = sorted(items_with_scores, key=lambda pair: -pair[1])
        self._postings[int(query_id)] = [(int(i), float(s))
                                         for i, s in ordered[: self.posting_length]]

    def add_metadata(self, metadata: ItemMetadata) -> None:
        """Register second-layer metadata for an item."""
        self._metadata[int(metadata.item_id)] = metadata

    def stage_postings(self, query_ids: Sequence[int],
                       query_embeddings: np.ndarray,
                       item_embeddings: np.ndarray,
                       item_ids: Optional[Sequence[int]] = None
                       ) -> Dict[int, List[Tuple[int, float]]]:
        """Compute posting lists *without mutating the index*.

        The fallible half of a build: everything that can fail (scoring,
        ranking) happens here on the side, against whatever embeddings the
        caller passes, while the live index keeps serving.  Feed the result
        to :meth:`commit_postings` to swap it in — that half cannot fail.
        """
        query_embeddings = np.asarray(query_embeddings, dtype=np.float64)
        item_embeddings = np.asarray(item_embeddings, dtype=np.float64)
        item_ids = np.asarray(item_ids, dtype=np.int64) if item_ids is not None \
            else np.arange(item_embeddings.shape[0])
        scores = query_embeddings @ item_embeddings.T       # (Q, I)
        top_k = min(self.posting_length, item_embeddings.shape[0])
        staged: Dict[int, List[Tuple[int, float]]] = {}
        for row, query_id in enumerate(query_ids):
            top = np.argpartition(-scores[row], top_k - 1)[:top_k]
            order = top[np.argsort(-scores[row][top])]
            ranked = [(int(item_ids[i]), float(scores[row][i])) for i in order]
            staged[int(query_id)] = [(int(i), float(s)) for i, s in
                                     ranked[: self.posting_length]]
        return staged

    def commit_postings(self,
                        staged: Dict[int, List[Tuple[int, float]]]) -> None:
        """Install staged posting lists (plain dict writes; cannot fail)."""
        self._postings.update(staged)

    def build_from_embeddings(self, query_ids: Sequence[int],
                              query_embeddings: np.ndarray,
                              item_embeddings: np.ndarray,
                              item_ids: Optional[Sequence[int]] = None) -> None:
        """Populate layer 1 by scoring items against each query embedding."""
        self.commit_postings(self.stage_postings(
            query_ids, query_embeddings, item_embeddings, item_ids))

    # ------------------------------------------------------------------ #
    # Online lookups
    # ------------------------------------------------------------------ #
    def lookup(self, query_id: int, k: Optional[int] = None
               ) -> List[Tuple[int, float]]:
        """Return the top-k posting entries for a query (empty if unknown)."""
        self.lookups += 1
        posting = self._postings.get(int(query_id))
        if posting is None:
            self.misses += 1
            return []
        return posting[: (k if k is not None else self.posting_length)]

    def lookup_batch(self, query_ids: Sequence[int], k: Optional[int] = None
                     ) -> List[List[Tuple[int, float]]]:
        """Posting lists for many queries in order (the batched serving path).

        Counts one lookup (and miss, where applicable) per query id, exactly
        as a loop of :meth:`lookup` calls would, so batched and sequential
        serving report identical index statistics.
        """
        return [self.lookup(query_id, k) for query_id in query_ids]

    def metadata(self, item_id: int) -> Optional[ItemMetadata]:
        """Second-layer metadata lookup."""
        return self._metadata.get(int(item_id))

    # ------------------------------------------------------------------ #
    # Streaming maintenance
    # ------------------------------------------------------------------ #
    def has_posting(self, query_id: int) -> bool:
        """True when the query has a layer-1 posting list."""
        return int(query_id) in self._postings

    def invalidate_queries(self, query_ids: Sequence[int]) -> int:
        """Drop the posting lists of exactly the given queries.

        The streaming refresh path: a graph update names the queries whose
        neighborhoods changed, their (now stale) posting lists are dropped
        here and rebuilt from the updated embeddings, while every untouched
        query keeps serving its cached posting list — the paper's postings
        are refreshed offline, so bounded staleness on untouched keys is
        the intended behaviour.  Returns how many postings were dropped.
        """
        return sum(1 for query_id in query_ids
                   if self._postings.pop(int(query_id), None) is not None)

    def purge_items(self, item_ids: Sequence[int]) -> int:
        """Remove evicted items from every posting list and layer 2.

        The lifecycle counterpart of :meth:`invalidate_queries`: when nodes
        are tombstoned the *item side* of the index must forget them too,
        or postings of untouched queries would keep recommending items the
        graph no longer serves.  Postings keep their order (entries are
        filtered, not rebuilt) and layer-2 metadata rows are dropped.
        Returns the number of posting entries removed.
        """
        dead = set(int(i) for i in item_ids)
        if not dead:
            return 0
        removed = 0
        for query_id, posting in self._postings.items():
            kept = [pair for pair in posting if pair[0] not in dead]
            if len(kept) != len(posting):
                removed += len(posting) - len(kept)
                self._postings[query_id] = kept
        for item_id in dead:
            self._metadata.pop(item_id, None)
        return removed

    def coverage(self, query_ids: Sequence[int]) -> float:
        """Fraction of the given queries that have a posting list."""
        if not len(query_ids):
            return 0.0
        covered = sum(1 for q in query_ids if int(q) in self._postings)
        return covered / len(query_ids)

    def __len__(self) -> int:
        return len(self._postings)
