"""Serving-time experimentation: multi-version serving behind one daemon.

The paper's headline production result (Section VII-D, Table IV) is an
online A/B test — Zoomer replacing one retrieval channel on 4% of live
search traffic.  This module is the serving-side machinery that makes such
a rollout operational in the reproduction:

* :class:`TrafficSplitter` — deterministic hash-based assignment of users
  to variants.  A splitmix64 mix over ``(experiment_salt, user_id)`` (the
  same stable-hash discipline as
  :class:`~repro.graph.partition.HashPartitioner`) yields a uniform value
  in ``[0, 1)`` that is bucketed by cumulative split fractions, so a
  user's variant is a pure function of the salt and the fractions —
  stable across processes, worker counts, and interpreter runs, and
  **sticky under ramps**: raising the challenger's fraction only ever
  moves users from control into the challenger, never the other way.
* :class:`VariantSet` — the ordered ``name -> server`` mapping one
  :class:`~repro.serving.daemon.ServingDaemon` hosts; the first entry is
  the control (primary) variant.  Each variant gets its own
  ``RequestBatcher`` lane inside the daemon while admission control,
  quotas, and shedding stay shared at the front, so drain/shed semantics
  are unchanged from single-version serving.
* **Shadow mode** — the challenger scores a *copy* of every admitted
  request off the reply path: all replies come from the control lane
  (bit-identical to single-version serving) and shadow outcomes only feed
  metrics (counters plus an optional :attr:`ExperimentTier.on_shadow_result`
  listener).
* :class:`CanaryController` — ramps a challenger through configured
  traffic steps while the tier accumulates the existing
  :class:`~repro.experiments.ab_test.ChannelMetrics` CTR/PPC/RPM counters
  per variant, and automatically rolls back — pins traffic to control and
  records the reason — when the guardrail metric regresses beyond the
  configured drop with sufficient impressions on both sides.

Feedback (impressions/clicks/revenue) arrives as data — through
:meth:`ExperimentTier.record_feedback` or the daemon's ``feedback`` wire
verb — never from a clock, so canary decisions are exactly reproducible
from the feedback stream alone.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.experiments.ab_test import ChannelMetrics
from repro.serving.server import ServeResult

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.api.spec import ExperimentTierSpec

#: Guardrail metrics a canary may watch (``ChannelMetrics`` properties).
GUARDRAIL_METRICS = ("ctr", "ppc", "rpm")


class TrafficSplitter:
    """Deterministic hash-based user -> variant assignment.

    Uses the splitmix64 integer mix (same constants and uint64 discipline
    as :class:`~repro.graph.partition.HashPartitioner`) over
    ``(experiment_salt, user_id)`` instead of Python's ``hash``, so the
    assignment is vectorizable and stable across processes and worker
    counts.  The mixed hash becomes a uniform value in ``[0, 1)`` bucketed
    by the cumulative ``fractions``, which makes ramping monotone: a user
    assigned to a variant at fraction ``f`` stays there for any ``f' > f``.
    """

    def __init__(self, salt: str, variants: Sequence[str],
                 fractions: Sequence[float]):
        if not salt:
            raise ValueError("salt must be a non-empty string")
        names = tuple(str(name) for name in variants)
        if len(names) < 2:
            raise ValueError("a traffic split needs at least two variants")
        if len(set(names)) != len(names):
            raise ValueError(f"variant names must be unique, got {names}")
        self.salt = str(salt)
        self.variants = names
        self._salt64 = np.uint64(zlib.crc32(self.salt.encode("utf-8")))
        self._fractions: Tuple[float, ...] = ()
        self._cuts = np.zeros(len(names))
        self.set_fractions(fractions)

    @property
    def fractions(self) -> Tuple[float, ...]:
        """The per-variant traffic fractions currently in force."""
        return self._fractions

    def set_fractions(self, fractions: Sequence[float]) -> None:
        """Re-point the split (canary ramps / rollback); must sum to 1."""
        values = tuple(float(f) for f in fractions)
        if len(values) != len(self.variants):
            raise ValueError(
                f"need one fraction per variant ({len(self.variants)}), "
                f"got {len(values)}")
        if any(f < 0.0 or f > 1.0 for f in values):
            raise ValueError(f"fractions must be in [0, 1], got {values}")
        if abs(sum(values) - 1.0) > 1e-6:
            raise ValueError(f"fractions must sum to 1, got {sum(values)!r}")
        self._fractions = values
        cuts = np.cumsum(np.asarray(values, dtype=np.float64))
        cuts[-1] = 1.0      # guard against float accumulation drift
        self._cuts = cuts

    def uniform_batch(self, user_ids: Sequence[int]) -> np.ndarray:
        """The splitmix64 hash of each user mapped to ``[0, 1)``."""
        ids = np.asarray(user_ids, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = ids + self._salt64 + np.uint64(0x9E3779B97F4A7C15)
            mixed = (mixed ^ (mixed >> np.uint64(30))) \
                * np.uint64(0xBF58476D1CE4E5B9)
            mixed = (mixed ^ (mixed >> np.uint64(27))) \
                * np.uint64(0x94D049BB133111EB)
            mixed = mixed ^ (mixed >> np.uint64(31))
        return mixed.astype(np.float64) / float(2 ** 64)

    def assign_batch(self, user_ids: Sequence[int]) -> np.ndarray:
        """Vectorized variant *indices* for an array of user ids."""
        uniforms = self.uniform_batch(user_ids)
        indices = np.searchsorted(self._cuts, uniforms, side="right")
        return np.minimum(indices, len(self.variants) - 1).astype(np.int64)

    def assign(self, user_id: int) -> str:
        """The variant *name* serving ``user_id`` under the current split."""
        return self.variants[int(self.assign_batch([int(user_id)])[0])]


class VariantSet:
    """The ordered ``name -> server`` mapping a daemon hosts.

    The first entry is the control (primary) variant; every server is
    anything with the ``serve_batch(requests, k=...)`` contract (an
    :class:`~repro.serving.server.OnlineServer`, a throttled wrapper, ...).
    """

    def __init__(self, variants: Mapping[str, Any]):
        names = tuple(str(name) for name in variants)
        if len(names) < 2:
            raise ValueError("a VariantSet needs at least two variants "
                             "(control first)")
        if any(not name for name in names):
            raise ValueError("variant names must be non-empty strings")
        for name, server in variants.items():
            if not hasattr(server, "serve_batch"):
                raise ValueError(f"variant {name!r} has no serve_batch; "
                                 "pass an OnlineServer-like object")
        self.names = names
        self._servers: Dict[str, Any] = dict(variants)

    @property
    def control(self) -> str:
        """The control (primary) variant's name."""
        return self.names[0]

    def server_for(self, name: str) -> Any:
        """The deployed server behind variant ``name``."""
        return self._servers[name]

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self):
        return iter(self.names)


@dataclass
class VariantCounters:
    """Per-variant serving-side counters (the ``stats`` verb exposes these)."""

    #: Admitted requests routed to this variant's lane for the reply path.
    assigned: int = 0
    #: Requests this variant answered (reply path).
    served: int = 0
    #: Off-reply-path shadow copies this variant scored.
    shadow_served: int = 0
    #: Feedback records attributed to this variant.
    feedback: int = 0


class CanaryController:
    """Ramp a challenger through traffic steps; roll back on a guardrail.

    State machine (driven purely by recorded feedback, never a clock)::

        ramping --(guardrail breach with >= min_impressions on both)--> rolled_back
        ramping --(step_impressions healthy challenger impressions)----> next step
        ramping --(final step's budget met, guardrail healthy)---------> completed

    A breach means the challenger's guardrail metric fell below
    ``(1 - guardrail_drop)`` times the control's with at least
    ``min_impressions`` impressions on *both* variants.  Rollback pins the
    challenger's fraction to ``0.0`` and records the reason; the state is
    terminal (so is ``completed``, which holds the final step's fraction).
    """

    RAMPING = "ramping"
    ROLLED_BACK = "rolled_back"
    COMPLETED = "completed"

    def __init__(self, steps: Sequence[float], control: str, challenger: str,
                 guardrail_metric: str = "ctr", guardrail_drop: float = 0.2,
                 min_impressions: int = 200, step_impressions: int = 200):
        steps = tuple(float(s) for s in steps)
        if not steps:
            raise ValueError("canary needs at least one traffic step")
        if any(not 0.0 < s <= 1.0 for s in steps) \
                or any(a >= b for a, b in zip(steps, steps[1:])):
            raise ValueError("canary steps must be strictly increasing "
                             f"fractions in (0, 1], got {steps}")
        if guardrail_metric not in GUARDRAIL_METRICS:
            raise ValueError(f"guardrail_metric must be one of "
                             f"{GUARDRAIL_METRICS}, got {guardrail_metric!r}")
        if not 0.0 < guardrail_drop < 1.0:
            raise ValueError("guardrail_drop must be in (0, 1)")
        if min_impressions < 1 or step_impressions < 1:
            raise ValueError(
                "min_impressions and step_impressions must be at least 1")
        self.steps = steps
        self.control = control
        self.challenger = challenger
        self.guardrail_metric = guardrail_metric
        self.guardrail_drop = float(guardrail_drop)
        self.min_impressions = int(min_impressions)
        self.step_impressions = int(step_impressions)
        self.state = self.RAMPING
        self.step_index = 0
        self.rollback_reason: Optional[str] = None
        self._step_start_impressions = 0

    @property
    def fraction(self) -> float:
        """The challenger traffic fraction the controller mandates now."""
        if self.state == self.ROLLED_BACK:
            return 0.0
        if self.state == self.COMPLETED:
            return self.steps[-1]
        return self.steps[self.step_index]

    def observe(self, metrics: Mapping[str, ChannelMetrics]
                ) -> Optional[float]:
        """Re-evaluate after a feedback update; returns a new fraction or None.

        Checks the guardrail first (a breach wins over a pending step
        advance), then advances the ramp once the challenger has collected
        ``step_impressions`` healthy impressions in the current step.
        """
        if self.state != self.RAMPING:
            return None
        control = metrics[self.control]
        challenger = metrics[self.challenger]
        if control.impressions < self.min_impressions \
                or challenger.impressions < self.min_impressions:
            return None
        control_value = getattr(control, self.guardrail_metric)
        challenger_value = getattr(challenger, self.guardrail_metric)
        if control_value > 0.0 and \
                challenger_value < (1.0 - self.guardrail_drop) * control_value:
            self.state = self.ROLLED_BACK
            self.rollback_reason = (
                f"{self.guardrail_metric} regressed beyond the guardrail: "
                f"challenger {challenger_value:.4f} < "
                f"(1 - {self.guardrail_drop:g}) * control "
                f"{control_value:.4f} after {challenger.impressions} "
                f"challenger impressions at step {self.step_index} "
                f"(fraction {self.steps[self.step_index]:g})")
            return 0.0
        if challenger.impressions - self._step_start_impressions \
                >= self.step_impressions:
            if self.step_index + 1 < len(self.steps):
                self.step_index += 1
                self._step_start_impressions = challenger.impressions
                return self.steps[self.step_index]
            self.state = self.COMPLETED
        return None

    def stats_dict(self) -> Dict[str, Any]:
        """JSON-ready canary status for the daemon's ``stats`` verb."""
        return {
            "state": self.state,
            "step": self.step_index,
            "steps": list(self.steps),
            "fraction": self.fraction,
            "guardrail_metric": self.guardrail_metric,
            "guardrail_drop": self.guardrail_drop,
            "min_impressions": self.min_impressions,
            "step_impressions": self.step_impressions,
            "rollback_reason": self.rollback_reason,
        }


class ExperimentTier:
    """One experiment a daemon hosts: variants + splitter + metrics + canary.

    Built from a :class:`VariantSet` (or a plain ordered mapping) and a
    validated :class:`~repro.api.spec.ExperimentTierSpec` whose
    ``variants`` tuple must match the set's names exactly.  The tier owns
    the routing policy and the per-variant accounting; the daemon owns the
    sockets, the admission front, and the per-variant batcher lanes.
    """

    def __init__(self, variants: Any, spec: "ExperimentTierSpec"):
        spec.validate()
        if not spec.variants:
            raise ValueError("experiment spec names no variants")
        variant_set = variants if isinstance(variants, VariantSet) \
            else VariantSet(variants)
        if variant_set.names != spec.variants:
            raise ValueError(
                f"variant servers {variant_set.names} do not match the "
                f"spec's variants {spec.variants} (order matters; the "
                f"first is control)")
        self.spec = spec
        self.variant_set = variant_set
        self.shadow = bool(spec.shadow)
        self.metrics: Dict[str, ChannelMetrics] = {
            name: ChannelMetrics() for name in variant_set.names}
        self.counters: Dict[str, VariantCounters] = {
            name: VariantCounters() for name in variant_set.names}
        self.canary: Optional[CanaryController] = None
        if spec.canary_steps:
            self.canary = CanaryController(
                spec.canary_steps, control=variant_set.control,
                challenger=variant_set.names[1],
                guardrail_metric=spec.guardrail_metric,
                guardrail_drop=spec.guardrail_drop,
                min_impressions=spec.min_impressions,
                step_impressions=spec.step_impressions)
        self.splitter = TrafficSplitter(spec.salt, variant_set.names,
                                        self._initial_fractions())
        #: Optional listener called as ``fn(variant_name, result)`` for
        #: every shadow-scored request — the hook that turns shadow
        #: outcomes into offline metrics (the CLI uses it to simulate
        #: clicks on shadow results).  Runs on the daemon's event loop.
        self.on_shadow_result: Optional[Callable[[str, ServeResult], None]] \
            = None

    def _initial_fractions(self) -> Tuple[float, ...]:
        """The split the tier starts with, per the spec's mode."""
        names = self.variant_set.names
        if self.shadow:
            # Shadow mode: control serves everything on the reply path.
            return (1.0,) + (0.0,) * (len(names) - 1)
        if self.canary is not None:
            first = self.canary.fraction
            return (1.0 - first, first)
        return self.spec.fractions

    # ------------------------------------------------------------------ #
    # Routing (called by the daemon's dispatch loop)
    # ------------------------------------------------------------------ #
    @property
    def control(self) -> str:
        """The control (primary) variant's name."""
        return self.variant_set.control

    @property
    def control_server(self) -> Any:
        """The control variant's deployed server."""
        return self.variant_set.server_for(self.control)

    @property
    def shadow_targets(self) -> Tuple[str, ...]:
        """Variants that score off-reply-path copies of every request."""
        if not self.shadow:
            return ()
        return self.variant_set.names[1:]

    def route(self, user_id: int) -> str:
        """Pick the reply-path variant for ``user_id`` and count it."""
        name = self.splitter.assign(user_id)
        self.counters[name].assigned += 1
        return name

    def record_served(self, name: str) -> None:
        """Count one reply-path answer from variant ``name``."""
        self.counters[name].served += 1

    def record_shadow(self, name: str, result: ServeResult) -> None:
        """Count one shadow-scored copy; feed the listener, never a reply."""
        self.counters[name].shadow_served += 1
        if self.on_shadow_result is not None:
            self.on_shadow_result(name, result)

    # ------------------------------------------------------------------ #
    # Feedback (impressions / clicks / revenue arrive as data)
    # ------------------------------------------------------------------ #
    def record_feedback(self, user_id: int, impressions: int = 1,
                        clicks: int = 0, revenue: float = 0.0,
                        variant: Optional[str] = None) -> str:
        """Attribute one feedback record and re-evaluate the canary.

        ``variant`` names the variant explicitly (the caller knows which
        variant served the impression); omitted, the splitter's current
        assignment of ``user_id`` is used — the same deterministic mapping
        the reply path used, provided the split has not moved since.
        Returns the attributed variant's name.
        """
        if impressions < 0 or clicks < 0 or revenue < 0.0:
            raise ValueError("impressions, clicks, and revenue must be "
                             "non-negative")
        if clicks > impressions:
            raise ValueError(f"clicks ({clicks}) cannot exceed impressions "
                             f"({impressions})")
        if variant is None:
            variant = self.splitter.assign(user_id)
        elif variant not in self.metrics:
            raise ValueError(f"unknown variant {variant!r}; expected one of "
                             f"{self.variant_set.names}")
        metrics = self.metrics[variant]
        metrics.impressions += int(impressions)
        metrics.clicks += int(clicks)
        metrics.revenue += float(revenue)
        self.counters[variant].feedback += 1
        if self.canary is not None:
            new_fraction = self.canary.observe(self.metrics)
            if new_fraction is not None:
                self.splitter.set_fractions((1.0 - new_fraction,
                                             new_fraction))
        return variant

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats_dict(self) -> Dict[str, Any]:
        """Per-variant rows for the daemon's ``stats`` verb."""
        rows: Dict[str, Any] = {}
        for name in self.variant_set.names:
            counters = self.counters[name]
            metrics = self.metrics[name]
            rows[name] = {
                "assigned": counters.assigned,
                "served": counters.served,
                "shadow_served": counters.shadow_served,
                "feedback": counters.feedback,
                "impressions": metrics.impressions,
                "clicks": metrics.clicks,
                "revenue": round(metrics.revenue, 4),
                "ctr": round(metrics.ctr, 6),
                "ppc": round(metrics.ppc, 6),
                "rpm": round(metrics.rpm, 6),
            }
        return {
            "control": self.control,
            "shadow": self.shadow,
            "salt": self.splitter.salt,
            "fractions": {name: fraction for name, fraction
                          in zip(self.variant_set.names,
                                 self.splitter.fractions)},
            "variants": rows,
            "canary": None if self.canary is None
            else self.canary.stats_dict(),
        }
