"""Queueing-based response-time model for online serving (paper Fig. 9).

The paper reports average response times of ~2.6-3.6 ms while QPS scales from
1K to 50K, with a slow, smooth increase ("when QPS increases up to 10x, the rt
increases less than 2x").  That shape is characteristic of a well-provisioned
multi-server queue: response time = service time + queueing delay, with the
delay governed by utilisation.  :class:`LatencySimulator` implements an M/M/c
(Erlang-C) model over the per-request service time measured from the serving
stack, so the Fig. 9 bench reproduces the curve from first principles instead
of hard-coding it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class LatencyBreakdown:
    """Components of one request's latency (milliseconds)."""

    cache_ms: float
    attention_ms: float
    ann_ms: float
    queueing_ms: float = 0.0

    @property
    def service_ms(self) -> float:
        return self.cache_ms + self.attention_ms + self.ann_ms

    @property
    def total_ms(self) -> float:
        return self.service_ms + self.queueing_ms


class LatencySimulator:
    """M/M/c response-time model over a measured per-request service time."""

    def __init__(self, num_servers: int = 64, service_time_ms: float = 2.5):
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if service_time_ms <= 0:
            raise ValueError("service_time_ms must be positive")
        self.num_servers = num_servers
        self.service_time_ms = service_time_ms

    # ------------------------------------------------------------------ #
    # Queueing model
    # ------------------------------------------------------------------ #
    def utilisation(self, qps: float) -> float:
        """Offered load per server (rho)."""
        if qps < 0:
            raise ValueError("qps must be non-negative")
        service_rate_per_server = 1000.0 / self.service_time_ms  # req/s
        return qps / (self.num_servers * service_rate_per_server)

    def _erlang_c(self, qps: float) -> float:
        """Probability an arriving request has to queue (Erlang C)."""
        c = self.num_servers
        rho = self.utilisation(qps)
        if rho >= 1.0:
            return 1.0
        offered = rho * c
        # Sum_{k<c} offered^k / k!  computed in log space for stability.
        summation = 0.0
        term = 1.0
        for k in range(c):
            if k > 0:
                term *= offered / k
            summation += term
        term_c = term * offered / c
        numerator = term_c / (1.0 - rho)
        return numerator / (summation + numerator)

    def expected_response_ms(self, qps: float) -> float:
        """Mean response time (service + queueing) at the given QPS."""
        rho = self.utilisation(qps)
        if rho >= 1.0:
            # Saturated: report a steep (but finite) penalty so sweeps stay
            # plottable; the bench flags these points as saturated.
            return self.service_time_ms * (1.0 + 10.0 * (rho - 1.0) + 10.0)
        probability_wait = self._erlang_c(qps)
        service_rate_per_server = 1000.0 / self.service_time_ms
        queueing_ms = probability_wait / (self.num_servers * service_rate_per_server
                                          * (1.0 - rho)) * 1000.0
        return self.service_time_ms + queueing_ms

    def sweep(self, qps_values: Sequence[float]) -> List[Dict[str, float]]:
        """Response-time curve over a QPS sweep (the Fig. 9 series)."""
        rows = []
        for qps in qps_values:
            rows.append({
                "qps": float(qps),
                "response_ms": round(self.expected_response_ms(qps), 4),
                "utilisation": round(self.utilisation(qps), 4),
            })
        return rows

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def calibrate_service_time(self, measured_ms: float) -> None:
        """Set the per-request service time from a measured value."""
        if measured_ms <= 0:
            raise ValueError("measured service time must be positive")
        self.service_time_ms = measured_ms

    def servers_needed(self, qps: float, target_utilisation: float = 0.6) -> int:
        """Capacity-planning helper: servers needed to stay under a target rho."""
        if not 0.0 < target_utilisation < 1.0:
            raise ValueError("target_utilisation must be in (0, 1)")
        service_rate_per_server = 1000.0 / self.service_time_ms
        return max(1, math.ceil(qps / (service_rate_per_server * target_utilisation)))
