"""Queueing-based response-time model for online serving (paper Fig. 9).

The paper reports average response times of ~2.6-3.6 ms while QPS scales from
1K to 50K, with a slow, smooth increase ("when QPS increases up to 10x, the rt
increases less than 2x").  That shape is characteristic of a well-provisioned
multi-server queue: response time = service time + queueing delay, with the
delay governed by utilisation.  :class:`LatencySimulator` implements an M/M/c
(Erlang-C) model over the per-request service time measured from the serving
stack, so the Fig. 9 bench reproduces the curve from first principles instead
of hard-coding it.

Micro-batched serving is modelled on top of the same queue: a batch of ``b``
requests is one job whose service time follows the affine profile
``s(b) = fixed_ms + per_request_ms * b`` (:class:`BatchServiceProfile`,
calibrated from measured per-batch service times), arriving at rate
``qps / b``.  Each request additionally waits an average ``(b - 1) / (2 qps)``
seconds for its batch to fill, so sweeping the batch size trades assembly
delay against amortised service time (:meth:`LatencySimulator.batch_sweep`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class LatencyBreakdown:
    """Components of one request's latency (milliseconds)."""

    cache_ms: float
    attention_ms: float
    ann_ms: float
    queueing_ms: float = 0.0

    @property
    def service_ms(self) -> float:
        return self.cache_ms + self.attention_ms + self.ann_ms

    @property
    def total_ms(self) -> float:
        return self.service_ms + self.queueing_ms


@dataclass
class BatchServiceProfile:
    """Affine service-time model for one micro-batch: ``fixed + per_req * b``.

    ``fixed_ms`` is the per-batch overhead (dispatch, cache pass, result
    assembly); ``per_request_ms`` is the marginal cost of one more request in
    the batch (one more row in the embedding matrix / ANN matmul).
    """

    fixed_ms: float
    per_request_ms: float

    def batch_service_ms(self, batch_size: int) -> float:
        """Predicted service time (ms) for one batch of the given size."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.fixed_ms + self.per_request_ms * batch_size


class LatencySimulator:
    """M/M/c response-time model over a measured per-request service time."""

    def __init__(self, num_servers: int = 64, service_time_ms: float = 2.5,
                 batch_profile: Optional[BatchServiceProfile] = None):
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if service_time_ms <= 0:
            raise ValueError("service_time_ms must be positive")
        self.num_servers = num_servers
        self.service_time_ms = service_time_ms
        self.batch_profile = batch_profile

    # ------------------------------------------------------------------ #
    # Queueing model
    # ------------------------------------------------------------------ #
    def utilisation(self, qps: float) -> float:
        """Offered load per server (rho)."""
        if qps < 0:
            raise ValueError("qps must be non-negative")
        service_rate_per_server = 1000.0 / self.service_time_ms  # req/s
        return qps / (self.num_servers * service_rate_per_server)

    def _erlang_c(self, qps: float) -> float:
        """Probability an arriving request has to queue (Erlang C)."""
        c = self.num_servers
        rho = self.utilisation(qps)
        if rho >= 1.0:
            return 1.0
        offered = rho * c
        # Sum_{k<c} offered^k / k!  computed in log space for stability.
        summation = 0.0
        term = 1.0
        for k in range(c):
            if k > 0:
                term *= offered / k
            summation += term
        term_c = term * offered / c
        numerator = term_c / (1.0 - rho)
        return numerator / (summation + numerator)

    #: Utilisation at which the model switches from Erlang C to the linear
    #: saturation extension (Erlang C diverges as rho -> 1).
    SATURATION_RHO = 0.995

    def expected_response_ms(self, qps: float) -> float:
        """Mean response time (service + queueing) at the given QPS.

        Below ``SATURATION_RHO`` this is the M/M/c (Erlang-C) response time.
        At and beyond it, the curve continues linearly from the response at
        the saturation knee, so sweeps stay plottable, finite, and — unlike
        a fixed penalty, which the knee value can overtake just below
        rho = 1 — monotone in QPS; the bench flags these points via
        ``utilisation >= 1``.
        """
        rho = self.utilisation(qps)
        if rho < self.SATURATION_RHO:
            return self._erlang_response_ms(qps)
        service_rate_per_server = 1000.0 / self.service_time_ms
        knee_qps = self.SATURATION_RHO * self.num_servers * service_rate_per_server
        knee_ms = self._erlang_response_ms(knee_qps)
        return knee_ms + self.service_time_ms * 10.0 * (rho - self.SATURATION_RHO)

    def _erlang_response_ms(self, qps: float) -> float:
        """Unsaturated M/M/c response time: service + Erlang-C queueing delay."""
        rho = self.utilisation(qps)
        probability_wait = self._erlang_c(qps)
        service_rate_per_server = 1000.0 / self.service_time_ms
        queueing_ms = probability_wait / (self.num_servers * service_rate_per_server
                                          * (1.0 - rho)) * 1000.0
        return self.service_time_ms + queueing_ms

    def sweep(self, qps_values: Sequence[float]) -> List[Dict[str, float]]:
        """Response-time curve over a QPS sweep (the Fig. 9 series)."""
        rows = []
        for qps in qps_values:
            rows.append({
                "qps": float(qps),
                "response_ms": round(self.expected_response_ms(qps), 4),
                "utilisation": round(self.utilisation(qps), 4),
            })
        return rows

    # ------------------------------------------------------------------ #
    # Batched serving
    # ------------------------------------------------------------------ #
    def batched_response_ms(self, qps: float, batch_size: int) -> float:
        """Mean per-request response time (ms) under micro-batched serving.

        A batch of ``batch_size`` requests is one M/M/c job arriving at rate
        ``qps / batch_size`` with service time from the batch profile (when
        no profile has been calibrated, batching is assumed to amortise
        nothing: ``s(b) = service_time_ms * b``).  On top of the queueing
        response each request waits on average ``(b - 1) / (2 qps)`` seconds
        for its batch to fill.
        """
        if qps <= 0:
            raise ValueError("qps must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        profile = self.batch_profile or BatchServiceProfile(
            fixed_ms=0.0, per_request_ms=self.service_time_ms)
        service_ms = max(profile.batch_service_ms(batch_size), 1e-9)
        assembly_ms = (batch_size - 1) / (2.0 * qps) * 1000.0
        batch_queue = LatencySimulator(num_servers=self.num_servers,
                                       service_time_ms=service_ms)
        return assembly_ms + batch_queue.expected_response_ms(qps / batch_size)

    def batch_sweep(self, qps: float, batch_sizes: Sequence[int]
                    ) -> List[Dict[str, float]]:
        """Batch-size-versus-latency curve at a fixed QPS (Fig. 9 extension)."""
        profile = self.batch_profile or BatchServiceProfile(
            fixed_ms=0.0, per_request_ms=self.service_time_ms)
        rows = []
        for batch_size in batch_sizes:
            service_ms = profile.batch_service_ms(batch_size)
            rows.append({
                "batch_size": int(batch_size),
                "batch_service_ms": round(service_ms, 4),
                "assembly_ms": round((batch_size - 1) / (2.0 * qps) * 1000.0, 4),
                "response_ms": round(self.batched_response_ms(qps, batch_size), 4),
            })
        return rows

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def calibrate_batch_profile(self, batch_sizes: Sequence[int],
                                measured_batch_ms: Sequence[float]
                                ) -> BatchServiceProfile:
        """Fit the affine batch profile to measured per-batch service times.

        Needs at least two distinct batch sizes.  The fitted slope and
        intercept are floored at a small positive value so the queueing model
        stays well defined even on noisy measurements.
        """
        sizes = np.asarray(list(batch_sizes), dtype=np.float64)
        measured = np.asarray(list(measured_batch_ms), dtype=np.float64)
        if sizes.shape != measured.shape or sizes.size < 2:
            raise ValueError("need measurements for at least two batch sizes")
        if np.unique(sizes).size < 2:
            raise ValueError("batch sizes must include two distinct values")
        if np.any(measured <= 0):
            raise ValueError("measured batch service times must be positive")
        per_request, fixed = np.polyfit(sizes, measured, 1)
        self.batch_profile = BatchServiceProfile(
            fixed_ms=max(float(fixed), 0.0),
            per_request_ms=max(float(per_request), 1e-6))
        return self.batch_profile

    def calibrate_service_time(self, measured_ms: float) -> None:
        """Set the per-request service time from a measured value."""
        if measured_ms <= 0:
            raise ValueError("measured service time must be positive")
        self.service_time_ms = measured_ms

    def servers_needed(self, qps: float, target_utilisation: float = 0.6) -> int:
        """Capacity-planning helper: servers needed to stay under a target rho."""
        if not 0.0 < target_utilisation < 1.0:
            raise ValueError("target_utilisation must be in (0, 1)")
        service_rate_per_server = 1000.0 / self.service_time_ms
        return max(1, math.ceil(qps / (service_rate_per_server * target_utilisation)))
