"""The retrieval-model interface shared by Zoomer and every baseline.

A retrieval model predicts the click probability of an item under a
``(user, query)`` request, and can embed requests and items separately for
ANN-based retrieval (the online serving path).  The trainer
(:mod:`repro.training.trainer`), the evaluation metrics and the serving stack
only depend on this interface, so all the comparison experiments can swap
models freely.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.module import Module


def resolve_node_roles(graph: HeteroGraph) -> tuple:
    """Infer which node types play the user / query / item roles.

    The Taobao-style graph uses ``user/query/item``; the MovieLens-style graph
    uses ``user/tag/movie``.  Returns ``(user_type, query_type, item_type)``.
    """
    from repro.graph.schema import NodeType

    user_type = NodeType.USER
    if graph.num_nodes.get(NodeType.QUERY, 0) > 0:
        query_type = NodeType.QUERY
    elif graph.num_nodes.get(NodeType.TAG, 0) > 0:
        query_type = NodeType.TAG
    else:
        query_type = NodeType.QUERY
    if graph.num_nodes.get(NodeType.ITEM, 0) > 0:
        item_type = NodeType.ITEM
    elif graph.num_nodes.get(NodeType.MOVIE, 0) > 0:
        item_type = NodeType.MOVIE
    else:
        item_type = NodeType.ITEM
    return user_type, query_type, item_type


class RetrievalModel(Module):
    """Base class for CTR / retrieval models over the heterogeneous graph."""

    #: Human-readable model name used in benchmark tables.
    name = "retrieval-model"

    def __init__(self, graph: HeteroGraph):
        super().__init__()
        self.graph = graph

    # ------------------------------------------------------------------ #
    # Training interface
    # ------------------------------------------------------------------ #
    def forward_batch(self, user_ids: np.ndarray, query_ids: np.ndarray,
                      item_ids: np.ndarray) -> Tensor:
        """Return the predicted click probabilities for a batch of triples.

        Shapes: all inputs ``(batch,)`` integer arrays; output ``(batch,)``
        probabilities in ``[0, 1]``.
        """
        raise NotImplementedError

    def forward(self, user_ids: np.ndarray, query_ids: np.ndarray,
                item_ids: np.ndarray) -> Tensor:
        return self.forward_batch(user_ids, query_ids, item_ids)

    # ------------------------------------------------------------------ #
    # Retrieval interface (used by serving, Hitrate@K and the A/B test)
    # ------------------------------------------------------------------ #
    def request_embedding(self, user_id: int, query_id: int) -> np.ndarray:
        """Embedding of a ``(user, query)`` request (query-tower output)."""
        raise NotImplementedError

    def item_embedding(self, item_id: int) -> np.ndarray:
        """Embedding of one item (item-tower output)."""
        raise NotImplementedError

    def item_embeddings(self, item_ids: Optional[Sequence[int]] = None) -> np.ndarray:
        """Embeddings for many items (default: every item in the graph)."""
        if item_ids is None:
            item_ids = range(self._num_items())
        return np.vstack([self.item_embedding(int(i)) for i in item_ids])

    def score_items(self, user_id: int, query_id: int,
                    item_ids: Sequence[int]) -> np.ndarray:
        """Relevance scores of candidate items for one request."""
        request = self.request_embedding(user_id, query_id)
        items = self.item_embeddings(item_ids)
        return items @ request

    # ------------------------------------------------------------------ #
    # Streaming updates
    # ------------------------------------------------------------------ #
    def on_graph_update(self, delta, rng=None) -> None:
        """Hook called after the shared graph absorbed a streaming update.

        ``delta`` is the :class:`~repro.graph.update.GraphDelta` the update
        produced.  Subclasses that keep per-node state (id-embedding
        tables, per-request caches) override this to grow tables for new
        nodes and drop exactly the entries the delta touches; the base
        model reads the graph live and needs no action.
        """

    def _num_items(self) -> int:
        from repro.graph.schema import NodeType
        for candidate in (NodeType.ITEM, NodeType.MOVIE):
            if self.graph.num_nodes.get(candidate, 0) > 0:
                return self.graph.num_nodes[candidate]
        raise ValueError("graph has no item-like node type")

    def item_node_type(self) -> str:
        """The node type playing the 'item' role in this graph."""
        from repro.graph.schema import NodeType
        for candidate in (NodeType.ITEM, NodeType.MOVIE):
            if self.graph.num_nodes.get(candidate, 0) > 0:
                return candidate
        raise ValueError("graph has no item-like node type")

    def query_node_type(self) -> str:
        """The node type playing the 'query' role in this graph."""
        from repro.graph.schema import NodeType
        for candidate in (NodeType.QUERY, NodeType.TAG):
            if self.graph.num_nodes.get(candidate, 0) > 0:
                return candidate
        raise ValueError("graph has no query-like node type")
