"""Shared model interfaces and building blocks used by Zoomer and baselines."""

from repro.models.base import RetrievalModel
from repro.models.encoders import HeteroNodeEncoder, TwinTowerHead

__all__ = ["RetrievalModel", "HeteroNodeEncoder", "TwinTowerHead"]
