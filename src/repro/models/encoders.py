"""Shared encoders: typed node encoders and the twin-tower (DSSM) head.

Every model needs (a) a way to turn a typed node id into latent feature
vectors — an id embedding, a projection of its dense content features, and a
type embedding — and (b) a twin-tower head that turns the user-query side and
the item side into comparable vectors whose dot product is the CTR logit
(Section III-B).  Keeping these shared means the comparison between Zoomer
and the baselines isolates the contribution of sampling + attention.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Embedding, Linear, MLP
from repro.nn.module import Module, Parameter
from repro.nn import init


class HeteroNodeEncoder(Module):
    """Per-type node encoder producing feature latent "slots" per node.

    For a node of type ``t`` with id ``i`` and dense content features ``x``,
    the encoder produces three latent vectors (slots):

    1. the id embedding ``E_t[i]``,
    2. the content projection ``W_t x``,
    3. the learned type embedding of ``t``.

    These slots are exactly the per-feature latent vectors that Zoomer's
    feature projection (Eq. 6) reweighs; baselines simply average them.
    """

    NUM_SLOTS = 3

    def __init__(self, graph: HeteroGraph, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.graph = graph
        self.embedding_dim = embedding_dim
        self.node_types = list(graph.schema.node_types)
        for node_type in self.node_types:
            count = max(1, graph.num_nodes[node_type])
            feature_dim = graph.schema.feature_dims[node_type]
            self.add_module(f"id_embedding_{node_type}",
                            Embedding(count, embedding_dim, rng=rng))
            self.add_module(f"content_projection_{node_type}",
                            Linear(feature_dim, embedding_dim, rng=rng))
            self.register_parameter(
                f"type_embedding_{node_type}",
                Parameter(init.normal((1, embedding_dim), 0.05, rng),
                          name=f"type_embedding_{node_type}"))

    def slots(self, node_type: str, node_ids: Sequence[int]) -> Tensor:
        """Slot matrices for a batch of same-type nodes: ``(n, 3, d)``."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        id_embedding: Embedding = getattr(self, f"id_embedding_{node_type}")
        content_projection: Linear = getattr(self, f"content_projection_{node_type}")
        type_embedding: Parameter = getattr(self, f"type_embedding_{node_type}")
        ids = id_embedding(node_ids)                                   # (n, d)
        content = content_projection(
            Tensor(self.graph.node_features(node_type, node_ids)))     # (n, d)
        ones = Tensor(np.ones((node_ids.shape[0], 1)))
        types = ones @ type_embedding                                   # (n, d)
        return Tensor.stack([ids, content, types], axis=1)              # (n, 3, d)

    def mean_vectors(self, node_type: str, node_ids: Sequence[int]) -> Tensor:
        """Slot-averaged node vectors ``(n, d)`` (what non-Zoomer models use)."""
        return self.slots(node_type, node_ids).mean(axis=1)

    def sync_with_graph(self, rng: Optional[np.random.Generator] = None
                        ) -> Dict[str, int]:
        """Grow the per-type id-embedding tables to cover new graph nodes.

        Streaming updates append nodes to the graph after the model was
        built; this extends each type's :class:`Embedding` with freshly
        initialised rows (cold-start embeddings — content features still
        flow through the shared projection).  Existing rows are untouched,
        so embeddings of old nodes are bit-identical before and after.
        Returns ``{node_type: rows_added}`` for the grown types.
        """
        grown: Dict[str, int] = {}
        for node_type in self.node_types:
            count = max(1, self.graph.num_nodes[node_type])
            embedding: Embedding = getattr(self, f"id_embedding_{node_type}")
            added = embedding.grow_to(count, rng=rng)
            if added:
                grown[node_type] = added
        return grown


class TwinTowerHead(Module):
    """DSSM-style twin-tower head: two MLP towers and a dot-product score."""

    def __init__(self, request_dim: int, item_dim: int, hidden: Sequence[int],
                 output_dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.request_tower = MLP([request_dim, *hidden, output_dim], rng=rng)
        self.item_tower = MLP([item_dim, *hidden, output_dim], rng=rng)

    def request(self, request_input: Tensor) -> Tensor:
        """Request-side (user + query) tower."""
        return self.request_tower(request_input)

    def item(self, item_input: Tensor) -> Tensor:
        """Item-side tower."""
        return self.item_tower(item_input)

    def score(self, request_input: Tensor, item_input: Tensor) -> Tensor:
        """Row-wise dot-product logits between the two towers."""
        request_out = self.request(request_input)
        item_out = self.item(item_input)
        return (request_out * item_out).sum(axis=-1)
