"""Pixie baseline (Eksombatchai et al. 2018).

Pixie is a random-walk-based real-time recommender: many short biased walks
are run from the request's nodes and the most visited candidates win.  The
sampler provides visit counts; the aggregation below boosts the counts (the
original system applies a sub-linear boosting of multi-hit candidates) and
uses them as pooling weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.sampling.base import NeighborSampler
from repro.sampling.random_walk import RandomWalkSampler


@register_model("Pixie", accepts_sampler=True)
class PixieModel(TreeAggregationModel):
    """Biased random-walk sampling with visit-count-weighted pooling."""

    name = "Pixie"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 num_walks: int = 20, walk_length: int = 3,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else RandomWalkSampler(seed=seed, num_walks=num_walks,
                                                walk_length=walk_length))
        rng = np.random.default_rng(seed + 7)
        self.combine = Linear(2 * embedding_dim, embedding_dim, rng=rng)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, visit_counts = merge_children(children_by_type)
        # Pixie-style boosting: sqrt of visit counts dampens runaway hubs
        # while still rewarding multi-hit candidates.
        boosted = np.sqrt(np.maximum(visit_counts, 0.0))
        total = boosted.sum()
        weights = boosted / total if total > 0 else \
            np.full_like(boosted, 1.0 / max(len(boosted), 1))
        pooled = Tensor(weights) @ merged
        combined = Tensor.concat([ego_vector, pooled], axis=-1)
        return self.combine(combined.reshape(1, -1)).relu().reshape(
            self.embedding_dim)
