"""FGNN baseline (Zhang et al. 2019): session graph with weighted attention
convolution and an attentive readout.

FGNN builds a graph of the items in a session, applies a weighted
graph-attention convolution that respects both the sequence order and the
latent order of the session graph, and reads the session representation out
with attention against the last interest.  Here the "session" of a request is
the set of items connected to the posed query (the clicked-under-this-query
items), convolved with edge-weight-aware attention and read out against the
query vector.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import GraphRetrievalModel
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter


@register_model("FGNN")
class FGNNModel(GraphRetrievalModel):
    """Weighted session-graph attention with an attentive readout."""

    name = "FGNN"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 session_length: int = 15):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed)
        rng = np.random.default_rng(seed + 10)
        self.session_length = session_length
        self.conv = Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.conv_attention = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng), name="fgnn_conv_attention")
        self.readout_attention = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng),
            name="fgnn_readout_attention")
        self.output = Linear(2 * embedding_dim, embedding_dim, rng=rng)

    def _weighted_attention(self, anchor: Tensor, matrix: Tensor,
                            edge_weights: np.ndarray,
                            attention: Parameter) -> Tensor:
        """Attention pooled by learned scores *and* the session edge weights."""
        k = matrix.shape[0]
        ones = Tensor(np.ones((k, 1)))
        anchor_tiled = ones @ anchor.reshape(1, -1)
        concatenated = Tensor.concat([anchor_tiled, matrix], axis=-1)
        scores = (concatenated @ attention).reshape(k).leaky_relu()
        # Incorporate the observed transition counts (the "weighted" part of
        # FGNN's WGAT): add log edge weights to the learned scores.
        scores = scores + Tensor(np.log1p(edge_weights))
        weights = scores.softmax(axis=-1)
        return weights @ matrix

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        query_vector = self.node_vector(self.query_type, query_id)
        session_ids, session_weights = self.neighbor_history(
            self.query_type, query_id, self.item_type, self.session_length)
        if session_ids.size == 0:
            session_ids, session_weights = self.neighbor_history(
                self.user_type, user_id, self.item_type, self.session_length)
        if session_ids.size == 0:
            session_repr = self.node_vector(self.user_type, user_id)
        else:
            session_items = self.node_vectors(self.item_type, session_ids)
            convolved = self._weighted_attention(
                query_vector, self.conv(session_items).relu(),
                session_weights, self.conv_attention)
            readout = self._weighted_attention(
                convolved, session_items, session_weights,
                self.readout_attention)
            session_repr = self.output(
                Tensor.concat([convolved, readout], axis=-1).reshape(1, -1)
            ).relu().reshape(self.embedding_dim)
        return Tensor.concat([session_repr, query_vector], axis=-1)
