"""MCCF baseline (Wang et al. 2020): Multi-Component graph Collaborative Filtering.

MCCF assumes an observed user-item interaction is driven by several latent
purchasing motivations ("components").  It decomposes the aggregation of a
user's item neighbors into multiple component-specific projections, applies
node-level attention within each component, and then combines the component
embeddings with a second attention layer.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import GraphRetrievalModel
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter


@register_model("MCCF")
class MCCFModel(GraphRetrievalModel):
    """Multi-component decomposition of the user-item aggregation."""

    name = "MCCF"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 num_components: int = 3, history_length: int = 15):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed)
        if num_components <= 0:
            raise ValueError("num_components must be positive")
        rng = np.random.default_rng(seed + 11)
        self.num_components = num_components
        self.history_length = history_length
        self._projections: List[Linear] = []
        self._attentions: List[Parameter] = []
        for component in range(num_components):
            projection = Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
            attention = Parameter(xavier_uniform((2 * embedding_dim, 1), rng),
                                  name=f"mccf_attention_{component}")
            self.add_module(f"projection_{component}", projection)
            self.register_parameter(f"attention_{component}", attention)
            self._projections.append(projection)
            self._attentions.append(attention)
        self.component_query = Parameter(
            xavier_uniform((embedding_dim, 1), rng), name="mccf_component_query")
        self.combine = Linear(embedding_dim, embedding_dim, rng=rng)

    def _component(self, user_vector: Tensor, history: Tensor,
                   projection: Linear, attention: Parameter) -> Tensor:
        projected = projection(history).relu()                     # (k, d)
        k = projected.shape[0]
        ones = Tensor(np.ones((k, 1)))
        user_tiled = ones @ user_vector.reshape(1, -1)
        concatenated = Tensor.concat([user_tiled, projected], axis=-1)
        scores = (concatenated @ attention).reshape(k).leaky_relu()
        weights = scores.softmax(axis=-1)
        return weights @ projected

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        user_vector = self.node_vector(self.user_type, user_id)
        query_vector = self.node_vector(self.query_type, query_id)
        history_ids, _ = self.neighbor_history(
            self.user_type, user_id, self.item_type, self.history_length)
        if history_ids.size == 0:
            user_repr = user_vector
        else:
            history = self.node_vectors(self.item_type, history_ids)
            components = [self._component(user_vector, history, projection, attention)
                          for projection, attention in zip(self._projections,
                                                           self._attentions)]
            stacked = Tensor.stack(components, axis=0)               # (M, d)
            scores = (stacked.tanh() @ self.component_query).reshape(
                len(components))
            weights = scores.softmax(axis=-1)
            combined = weights @ stacked
            user_repr = self.combine(
                (user_vector + combined).reshape(1, -1)).relu().reshape(
                    self.embedding_dim)
        return Tensor.concat([user_repr, query_vector], axis=-1)
