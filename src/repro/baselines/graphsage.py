"""GraphSAGE baseline (Hamilton et al. 2017; paper Section III-A, Eq. 4).

Aggregates features from a fixed-size set of *uniformly* sampled neighbors
with a mean aggregator, concatenates the result with the ego representation
and applies a learned transform — the inductive recipe the paper credits with
making GNNs "more capable of handling graphs in RS", while noting each
neighbor still has a fixed weight.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.sampling.base import NeighborSampler
from repro.sampling.uniform import UniformNeighborSampler


@register_model("GraphSage", aliases=("GraphSAGE",), accepts_sampler=True)
class GraphSAGEModel(TreeAggregationModel):
    """Uniform neighbor sampling with a concat + transform aggregator."""

    name = "GraphSage"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else UniformNeighborSampler(seed=seed))
        rng = np.random.default_rng(seed + 2)
        self.combine = Linear(2 * embedding_dim, embedding_dim, rng=rng)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, _ = merge_children(children_by_type)
        pooled = merged.mean(axis=0)
        combined = Tensor.concat([ego_vector, pooled], axis=-1)
        return self.combine(combined.reshape(1, -1)).relu().reshape(
            self.embedding_dim)
