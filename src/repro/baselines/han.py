"""HAN baseline (Wang et al. 2019): hierarchical attention on heterogeneous graphs.

HAN applies node-level attention within each neighbor type (a GAT over the
type's neighbors) and semantic-level attention across the per-type aggregated
embeddings, using a learnable semantic query vector.  The paper calls HAN the
most similar baseline to Zoomer — "the key difference is that HAN does not
consider dynamic user interests": its attention is static, not conditioned on
the focal (user, query) pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.sampling.base import NeighborSampler
from repro.sampling.uniform import UniformNeighborSampler


@register_model("HAN", accepts_sampler=True)
class HANModel(TreeAggregationModel):
    """Node-level + semantic-level hierarchical attention."""

    name = "HAN"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else UniformNeighborSampler(seed=seed))
        rng = np.random.default_rng(seed + 4)
        self.transform = Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.node_attention = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng), name="han_node_attention")
        self.semantic_projection = Linear(embedding_dim, embedding_dim, rng=rng)
        self.semantic_query = Parameter(
            xavier_uniform((embedding_dim, 1), rng), name="han_semantic_query")

    def _node_level(self, ego_vector: Tensor, neighbors: Tensor) -> Tensor:
        """GAT-style attention within one neighbor type."""
        k = neighbors.shape[0]
        transformed_ego = self.transform(ego_vector.reshape(1, -1))
        transformed_neighbors = self.transform(neighbors)
        ones = Tensor(np.ones((k, 1)))
        ego_tiled = ones @ transformed_ego
        concatenated = Tensor.concat([ego_tiled, transformed_neighbors], axis=-1)
        scores = (concatenated @ self.node_attention).reshape(k).leaky_relu()
        weights = scores.softmax(axis=-1)
        return weights @ transformed_neighbors

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        per_type = [self._node_level(ego_vector, matrix)
                    for matrix, _ in children_by_type.values()]
        if len(per_type) == 1:
            semantic = per_type[0]
        else:
            stacked = Tensor.stack(per_type, axis=0)            # (T, d)
            projected = self.semantic_projection(stacked).tanh()  # (T, d)
            scores = (projected @ self.semantic_query).reshape(len(per_type))
            weights = scores.softmax(axis=-1)                    # (T,)
            semantic = weights @ stacked
        return (ego_vector + semantic).relu()
