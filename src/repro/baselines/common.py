"""Shared infrastructure for the baseline models.

:class:`GraphRetrievalModel` handles everything a baseline does not care
about: node encoding, the twin-tower head, batching, the retrieval-embedding
interface and neighborhood caching.  :class:`TreeAggregationModel` adds the
generic "sample a neighborhood tree around the user and query ego nodes and
aggregate it bottom-up" pattern; concrete baselines only override the sampler
choice and the per-node aggregation rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.models.base import RetrievalModel, resolve_node_roles
from repro.models.encoders import HeteroNodeEncoder, TwinTowerHead
from repro.ndarray.tensor import Tensor, no_grad
from repro.sampling.base import NeighborSampler, SampledNode
from repro.sampling.uniform import UniformNeighborSampler


class GraphRetrievalModel(RetrievalModel):
    """Base class: twin towers over a heterogeneous graph."""

    name = "graph-baseline"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0):
        super().__init__(graph)
        self.embedding_dim = embedding_dim
        self.fanouts = tuple(fanouts)
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.user_type, self.query_type, self.item_type = resolve_node_roles(graph)
        self.encoder = HeteroNodeEncoder(graph, embedding_dim, rng=rng)
        self.head = TwinTowerHead(2 * embedding_dim, embedding_dim,
                                  tower_hidden, embedding_dim, rng=rng)
        self._rng = rng

    # ------------------------------------------------------------------ #
    # To be provided by subclasses
    # ------------------------------------------------------------------ #
    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        """Return the (2 * embedding_dim,) request-side representation."""
        raise NotImplementedError

    def item_representation(self, item_ids: Sequence[int]) -> Tensor:
        """Item-side inputs; default is the slot-averaged node vectors."""
        return self.encoder.mean_vectors(self.item_type, item_ids)

    # ------------------------------------------------------------------ #
    # RetrievalModel interface
    # ------------------------------------------------------------------ #
    def forward_batch(self, user_ids: np.ndarray, query_ids: np.ndarray,
                      item_ids: np.ndarray) -> Tensor:
        user_ids = np.asarray(user_ids, dtype=np.int64)
        query_ids = np.asarray(query_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        request_vectors = [self.request_representation(int(u), int(q))
                           for u, q in zip(user_ids, query_ids)]
        request_matrix = Tensor.stack(request_vectors, axis=0)
        request_out = self.head.request(request_matrix)
        item_out = self.head.item(self.item_representation(item_ids))
        logits = (request_out * item_out).sum(axis=-1)
        return logits.sigmoid()

    def request_embedding(self, user_id: int, query_id: int) -> np.ndarray:
        with no_grad():
            representation = self.request_representation(user_id, query_id)
            output = self.head.request(representation.reshape(1, -1))
        return output.numpy().reshape(-1).copy()

    def item_embedding(self, item_id: int) -> np.ndarray:
        with no_grad():
            output = self.head.item(self.item_representation([int(item_id)]))
        return output.numpy().reshape(-1).copy()

    def item_embeddings(self, item_ids: Optional[Sequence[int]] = None) -> np.ndarray:
        if item_ids is None:
            item_ids = range(self.graph.num_nodes[self.item_type])
        item_ids = list(item_ids)
        with no_grad():
            output = self.head.item(self.item_representation(item_ids))
        return output.numpy().copy()

    # ------------------------------------------------------------------ #
    # Streaming updates
    # ------------------------------------------------------------------ #
    def on_graph_update(self, delta, rng=None) -> None:
        """Grow the id-embedding tables for nodes a streaming update added.

        Baselines read the graph live (neighbor histories, sampled trees),
        so beyond covering new node ids with fresh embeddings there is no
        global state to rebuild; subclasses with per-node caches refine
        this to drop exactly the touched entries.
        """
        self.encoder.sync_with_graph(rng=rng)

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def node_vector(self, node_type: str, node_id: int) -> Tensor:
        """Slot-averaged vector of one node, shape ``(embedding_dim,)``."""
        return self.encoder.mean_vectors(node_type, [node_id]).reshape(
            self.embedding_dim)

    def node_vectors(self, node_type: str, node_ids: Sequence[int]) -> Tensor:
        """Slot-averaged vectors of several same-type nodes, ``(n, d)``."""
        return self.encoder.mean_vectors(node_type, node_ids)

    def neighbor_history(self, node_type: str, node_id: int, target_type: str,
                         limit: int = 20) -> Tuple[np.ndarray, np.ndarray]:
        """The node's highest-weight neighbors of ``target_type``.

        Used by session-style baselines (STAMP, FGNN, MCCF) that consume a
        user's or query's clicked-item history rather than a sampled tree.
        Returns ``(ids, weights)`` sorted by descending weight.
        """
        ids: List[int] = []
        weights: List[float] = []
        for spec, neighbor_ids, edge_weights in self.graph.neighbors(node_type,
                                                                     node_id):
            if spec.dst_type != target_type:
                continue
            ids.extend(int(i) for i in neighbor_ids)
            weights.extend(float(w) for w in edge_weights)
        if not ids:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        order = np.argsort(-np.asarray(weights))[:limit]
        return (np.asarray(ids, dtype=np.int64)[order],
                np.asarray(weights)[order])


class TreeAggregationModel(GraphRetrievalModel):
    """Baselines that sample a neighborhood tree and aggregate it bottom-up."""

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed)
        self.sampler = sampler if sampler is not None \
            else UniformNeighborSampler(seed=seed)
        self._tree_cache: Dict[Tuple[str, int], SampledNode] = {}

    # ------------------------------------------------------------------ #
    # Extension point
    # ------------------------------------------------------------------ #
    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        """Combine the ego vector with its typed child matrices.

        ``children_by_type`` maps node type to ``(stacked_vectors, weights)``
        where ``stacked_vectors`` has shape ``(k, d)`` and ``weights`` are the
        sampled edge weights.  Must return a ``(d,)`` tensor.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Streaming updates
    # ------------------------------------------------------------------ #
    def on_graph_update(self, delta, rng=None) -> None:
        """Grow embeddings and drop exactly the touched cached ego trees.

        A cached tree is dropped when its root's neighborhood changed; the
        next ``sampled_tree`` call re-samples it from the updated graph.
        Trees rooted at untouched nodes are kept even when a deeper hop
        could reach a touched node — bounded staleness, matching the
        paper's asynchronous cache refresh semantics.
        """
        super().on_graph_update(delta, rng=rng)
        touched = {node_type: set(ids.tolist())
                   for node_type, ids in delta.touched.items()}
        stale = [key for key in self._tree_cache
                 if int(key[1]) in touched.get(key[0], ())]
        for key in stale:
            del self._tree_cache[key]

    # ------------------------------------------------------------------ #
    # Shared machinery
    # ------------------------------------------------------------------ #
    def sampled_tree(self, node_type: str, node_id: int) -> SampledNode:
        """Sample (and cache) the neighborhood tree of an ego node."""
        key = (node_type, int(node_id))
        tree = self._tree_cache.get(key)
        if tree is None:
            tree = self.sampler.sample(self.graph, node_type, node_id, self.fanouts)
            self._tree_cache[key] = tree
        return tree

    def prime_trees(self, node_type: str, node_ids: Sequence[int]) -> None:
        """Sample every uncached ego tree of one type with one batched call.

        Engine-backed samplers expand the whole frontier vectorized;
        per-node samplers fall back to their looped ``sample_batch``.
        """
        unique_ids = np.unique(np.asarray(node_ids, dtype=np.int64))
        missing = [int(node_id) for node_id in unique_ids
                   if (node_type, int(node_id)) not in self._tree_cache]
        if not missing:
            return
        trees = self.sampler.sample_batch(self.graph, node_type, missing,
                                          self.fanouts)
        for node_id, tree in zip(missing, trees):
            self._tree_cache[(node_type, node_id)] = tree

    def prime_sampled_trees(self, user_trees: Dict[int, SampledNode],
                            query_trees: Dict[int, SampledNode]) -> None:
        """Adopt pre-sampled ego trees (e.g. from the training dataloader).

        The dataloader's batched presampling emits sub-graphs in the
        engine's layout; installing them here means ``sampled_tree`` never
        falls back to a per-node sampling call during the forward pass.
        """
        for node_id, tree in user_trees.items():
            self._tree_cache[(self.user_type, int(node_id))] = tree
        for node_id, tree in query_trees.items():
            self._tree_cache[(self.query_type, int(node_id))] = tree

    def forward_batch(self, user_ids: np.ndarray, query_ids: np.ndarray,
                      item_ids: np.ndarray) -> Tensor:
        self.prime_trees(self.user_type, user_ids)
        self.prime_trees(self.query_type, query_ids)
        return super().forward_batch(user_ids, query_ids, item_ids)

    def clear_tree_cache(self) -> None:
        """Drop cached neighborhood trees."""
        self._tree_cache.clear()

    def tree_representation(self, node_type: str, node_id: int) -> Tensor:
        """Aggregate the ego node's sampled tree into a ``(d,)`` vector."""
        tree = self.sampled_tree(node_type, node_id)
        return self._aggregate_node(tree)

    def _aggregate_node(self, node: SampledNode) -> Tensor:
        ego_vector = self.node_vector(node.node_type, node.node_id)
        groups = node.children_by_type()
        if not groups:
            return ego_vector
        children_by_type: Dict[str, Tuple[Tensor, np.ndarray]] = {}
        for node_type, members in groups.items():
            child_vectors = [self._aggregate_node(child) for child, _ in members]
            weights = np.asarray([w for _, w in members], dtype=np.float64)
            children_by_type[node_type] = (Tensor.stack(child_vectors, axis=0),
                                           weights)
        return self.aggregate(ego_vector, children_by_type)

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        user_repr = self.tree_representation(self.user_type, user_id)
        query_repr = self.tree_representation(self.query_type, query_id)
        return Tensor.concat([user_repr, query_repr], axis=-1)


def merge_children(children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                   ) -> Tuple[Tensor, np.ndarray]:
    """Merge per-type child matrices into one ``(k_total, d)`` matrix."""
    matrices = [matrix for matrix, _ in children_by_type.values()]
    weights = np.concatenate([w for _, w in children_by_type.values()])
    if len(matrices) == 1:
        return matrices[0], weights
    return Tensor.concat(matrices, axis=0), weights
