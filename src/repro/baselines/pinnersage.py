"""PinnerSage baseline (Pal et al. 2020).

PinnerSage models each user with *multiple* embeddings obtained by clustering
their interacted items, so that distinct interest modes are preserved instead
of being averaged away.  Here the cluster-based sampler groups an ego node's
neighbors by feature similarity; each cluster is mean-pooled into a mode
embedding, and the modes are combined with an attention softmax against the
ego representation (the strongest mode dominates, weak ones are retained).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.sampling.base import NeighborSampler
from repro.sampling.cluster import ClusterNeighborSampler


@register_model("PinnerSage", accepts_sampler=True)
class PinnerSageModel(TreeAggregationModel):
    """Cluster-based multi-interest sampling with mode attention."""

    name = "PinnerSage"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 num_modes: int = 3,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else ClusterNeighborSampler(seed=seed,
                                                     num_clusters=num_modes))
        rng = np.random.default_rng(seed + 6)
        self.num_modes = num_modes
        self.mode_transform = Linear(embedding_dim, embedding_dim, rng=rng)
        self.combine = Linear(2 * embedding_dim, embedding_dim, rng=rng)
        self._mode_rng = np.random.default_rng(seed + 60)

    def _mode_embeddings(self, merged: Tensor) -> Tensor:
        """Split the merged neighbors into interest modes and mean-pool each."""
        count = merged.shape[0]
        modes = min(self.num_modes, count)
        # Deterministic round-robin assignment keeps the op count small while
        # still producing multiple modes; the cluster sampler already grouped
        # similar neighbors adjacently.
        mode_vectors = []
        for mode in range(modes):
            indices = np.arange(mode, count, modes)
            mode_vectors.append(merged[indices].mean(axis=0))
        return Tensor.stack(mode_vectors, axis=0)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, _ = merge_children(children_by_type)
        modes = self.mode_transform(self._mode_embeddings(merged)).relu()
        scores = (modes @ ego_vector.reshape(self.embedding_dim, 1)).reshape(
            modes.shape[0])
        weights = scores.softmax(axis=-1)
        pooled = weights @ modes
        combined = Tensor.concat([ego_vector, pooled], axis=-1)
        return self.combine(combined.reshape(1, -1)).relu().reshape(
            self.embedding_dim)
