"""GAT baseline (Velickovic et al. 2018; paper Section III-A, Eq. 3).

Edge weights are pairwise attention scores
``LeakyReLU(a^T [W h_v || W h_j])`` normalised with a softmax over the
neighborhood.  The attention depends only on the two endpoints, so — as the
paper points out — "the weight of each edge in graphs is still fixed across
different queries and users": it is static, not focal-oriented.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.sampling.base import NeighborSampler
from repro.sampling.uniform import UniformNeighborSampler


@register_model("GAT", accepts_sampler=True)
class GATModel(TreeAggregationModel):
    """Static pairwise edge attention over sampled neighborhoods."""

    name = "GAT"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else UniformNeighborSampler(seed=seed))
        rng = np.random.default_rng(seed + 3)
        self.transform = Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.attention_vector = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng), name="gat_attention")

    def edge_attention(self, ego_vector: Tensor, neighbors: Tensor) -> Tensor:
        """Pairwise attention weights (softmax over the neighborhood)."""
        k = neighbors.shape[0]
        transformed_ego = self.transform(ego_vector.reshape(1, -1))
        transformed_neighbors = self.transform(neighbors)
        ones = Tensor(np.ones((k, 1)))
        ego_tiled = ones @ transformed_ego
        concatenated = Tensor.concat([ego_tiled, transformed_neighbors], axis=-1)
        scores = (concatenated @ self.attention_vector).reshape(k).leaky_relu()
        return scores.softmax(axis=-1)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, _ = merge_children(children_by_type)
        weights = self.edge_attention(ego_vector, merged)
        aggregated = weights @ self.transform(merged)
        return (ego_vector + aggregated).relu()
