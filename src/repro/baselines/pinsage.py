"""PinSage baseline (Ying et al. 2018).

PinSage combines importance-based neighbor sampling (neighbors are chosen
proportionally to their importance, estimated via random-walk visit counts —
here, the accumulated interaction weights) with *importance pooling*: the
sampled neighbors are aggregated as a weighted mean using the same importance
scores, then concatenated with the ego representation and transformed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.sampling.base import NeighborSampler
from repro.sampling.importance import ImportanceNeighborSampler


@register_model("PinSage", accepts_sampler=True)
class PinSageModel(TreeAggregationModel):
    """Importance sampling + importance pooling + concat transform."""

    name = "PinSage"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else ImportanceNeighborSampler(seed=seed))
        rng = np.random.default_rng(seed + 5)
        self.neighbor_transform = Linear(embedding_dim, embedding_dim, rng=rng)
        self.combine = Linear(2 * embedding_dim, embedding_dim, rng=rng)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, weights = merge_children(children_by_type)
        transformed = self.neighbor_transform(merged).relu()
        total = weights.sum()
        normalised = weights / total if total > 0 else \
            np.full_like(weights, 1.0 / max(len(weights), 1))
        pooled = Tensor(normalised) @ transformed      # importance pooling
        combined = Tensor.concat([ego_vector, pooled], axis=-1)
        return self.combine(combined.reshape(1, -1)).relu().reshape(
            self.embedding_dim)
