"""Plain GCN baseline (Kipf & Welling 2016; paper Section III-A, Eq. 2).

Neighbors are mean-pooled irrespective of type, added to the ego (the
self-connection of ``A + I``), and passed through a per-layer linear
transform with a ReLU.  Every neighbor has the same, fixed weight — exactly
the behaviour the paper's Fig. 1 criticises.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import TreeAggregationModel, merge_children
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.layers import Linear
from repro.sampling.base import NeighborSampler
from repro.sampling.uniform import UniformNeighborSampler


@register_model("GCN", accepts_sampler=True)
class GCNModel(TreeAggregationModel):
    """Mean-pooling graph convolution over sampled neighborhoods."""

    name = "GCN"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 sampler: Optional[NeighborSampler] = None):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed,
                         sampler if sampler is not None
                         else UniformNeighborSampler(seed=seed))
        rng = np.random.default_rng(seed + 1)
        self.transform = Linear(embedding_dim, embedding_dim, rng=rng)

    def aggregate(self, ego_vector: Tensor,
                  children_by_type: Dict[str, Tuple[Tensor, np.ndarray]]
                  ) -> Tensor:
        merged, _ = merge_children(children_by_type)
        pooled = merged.mean(axis=0)
        combined = ego_vector + pooled
        return self.transform(combined.reshape(1, -1)).relu().reshape(
            self.embedding_dim)
