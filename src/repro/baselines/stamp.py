"""STAMP baseline (Liu et al. 2018): Short-Term Attention/Memory Priority.

STAMP is a session-based (non-GNN) model: the user's *general interest* is
the mean of their historical clicks, the *current interest* is the most
recent signal (here, the posed query), and an attention mechanism re-weights
the history with respect to both before two small MLPs produce the final
representation.  It captures "both users' general interests and current
interests" without using graph structure beyond the click history.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import GraphRetrievalModel
from repro.graph.hetero_graph import HeteroGraph
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter


@register_model("STAMP")
class STAMPModel(GraphRetrievalModel):
    """Attention over the user's click history, keyed by the current query."""

    name = "STAMP"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 history_length: int = 15):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed)
        rng = np.random.default_rng(seed + 8)
        self.history_length = history_length
        self.attention_history = Linear(embedding_dim, embedding_dim,
                                        bias=False, rng=rng)
        self.attention_current = Linear(embedding_dim, embedding_dim,
                                        bias=False, rng=rng)
        self.attention_general = Linear(embedding_dim, embedding_dim,
                                        bias=False, rng=rng)
        self.attention_vector = Parameter(
            xavier_uniform((embedding_dim, 1), rng), name="stamp_attention")
        self.general_mlp = Linear(embedding_dim, embedding_dim, rng=rng)
        self.current_mlp = Linear(embedding_dim, embedding_dim, rng=rng)

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        query_vector = self.node_vector(self.query_type, query_id)
        history_ids, _ = self.neighbor_history(
            self.user_type, user_id, self.item_type, self.history_length)
        if history_ids.size == 0:
            # Cold user: fall back to the user's own features.
            general = self.node_vector(self.user_type, user_id)
        else:
            history = self.node_vectors(self.item_type, history_ids)   # (k, d)
            general_interest = history.mean(axis=0)
            # STAMP attention: score each history item against the current
            # interest (the query) and the general interest.
            k = history.shape[0]
            ones = Tensor(np.ones((k, 1)))
            scores_input = (self.attention_history(history)
                            + ones @ self.attention_current(
                                query_vector.reshape(1, -1))
                            + ones @ self.attention_general(
                                general_interest.reshape(1, -1))).sigmoid()
            scores = (scores_input @ self.attention_vector).reshape(k)
            weights = scores.softmax(axis=-1)
            general = weights @ history
        general_out = self.general_mlp(general.reshape(1, -1)).tanh().reshape(
            self.embedding_dim)
        current_out = self.current_mlp(query_vector.reshape(1, -1)).tanh().reshape(
            self.embedding_dim)
        return Tensor.concat([general_out, current_out], axis=-1)
