"""GCE-GNN baseline (Wang et al. 2020): Global Context Enhanced GNN.

GCE-GNN models session-based recommendation with two channels: a *local*
(session-level) graph of item transitions and a *global* graph of item
co-occurrence across sessions.  Both channels are aggregated with attention
towards the session's interest and then summed.  In this reproduction the
local channel aggregates interaction-edge neighbors (click / session /
search edges) and the global channel aggregates similarity-edge neighbors;
both are attention-pooled against the query representation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.api.registry import register_model
from repro.baselines.common import GraphRetrievalModel
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import EdgeType
from repro.ndarray.tensor import Tensor
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter

#: Edge types treated as the session-local channel.
LOCAL_EDGE_TYPES = (EdgeType.CLICK, EdgeType.SESSION, EdgeType.QUERY_CLICK,
                    EdgeType.SEARCH, EdgeType.RATING)
#: Edge types treated as the global-context channel.
GLOBAL_EDGE_TYPES = (EdgeType.SIMILARITY, EdgeType.RELEVANCE)


@register_model("GCE-GNN", aliases=("GCEGNN",))
class GCEGNNModel(GraphRetrievalModel):
    """Two-channel (session-local + global-context) attention aggregation."""

    name = "GCE-GNN"

    def __init__(self, graph: HeteroGraph, embedding_dim: int = 32,
                 tower_hidden: Sequence[int] = (64, 32),
                 fanouts: Sequence[int] = (10, 5), seed: int = 0,
                 neighbor_limit: int = 15):
        super().__init__(graph, embedding_dim, tower_hidden, fanouts, seed)
        rng = np.random.default_rng(seed + 9)
        self.neighbor_limit = neighbor_limit
        self.local_attention = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng), name="gce_local_attention")
        self.global_attention = Parameter(
            xavier_uniform((2 * embedding_dim, 1), rng), name="gce_global_attention")
        self.combine = Linear(2 * embedding_dim, embedding_dim, rng=rng)

    def _channel_neighbors(self, node_type: str, node_id: int,
                           edge_types: Tuple[str, ...]
                           ) -> List[Tuple[str, int, float]]:
        neighbors: List[Tuple[str, int, float]] = []
        for spec, ids, weights in self.graph.neighbors(node_type, node_id):
            if spec.edge_type not in edge_types:
                continue
            neighbors.extend((spec.dst_type, int(i), float(w))
                             for i, w in zip(ids, weights))
        neighbors.sort(key=lambda entry: -entry[2])
        return neighbors[:self.neighbor_limit]

    def _channel_aggregate(self, target: Tensor,
                           neighbors: List[Tuple[str, int, float]],
                           attention: Parameter) -> Tensor:
        if not neighbors:
            return target
        vectors = [self.node_vector(node_type, node_id)
                   for node_type, node_id, _ in neighbors]
        matrix = Tensor.stack(vectors, axis=0)                     # (k, d)
        k = matrix.shape[0]
        ones = Tensor(np.ones((k, 1)))
        target_tiled = ones @ target.reshape(1, -1)
        concatenated = Tensor.concat([target_tiled, matrix], axis=-1)
        scores = (concatenated @ attention).reshape(k).leaky_relu()
        weights = scores.softmax(axis=-1)
        return weights @ matrix

    def request_representation(self, user_id: int, query_id: int) -> Tensor:
        query_vector = self.node_vector(self.query_type, query_id)
        user_vector = self.node_vector(self.user_type, user_id)
        # Local channel around the user (session interest), keyed by the query.
        local = self._channel_aggregate(
            query_vector,
            self._channel_neighbors(self.user_type, user_id, LOCAL_EDGE_TYPES),
            self.local_attention)
        # Global channel around the query (co-occurrence / similarity context).
        global_context = self._channel_aggregate(
            query_vector,
            self._channel_neighbors(self.query_type, query_id, GLOBAL_EDGE_TYPES)
            or self._channel_neighbors(self.query_type, query_id, LOCAL_EDGE_TYPES),
            self.global_attention)
        session_repr = self.combine(
            Tensor.concat([local + user_vector, global_context + query_vector],
                          axis=-1).reshape(1, -1)).relu().reshape(self.embedding_dim)
        return Tensor.concat([session_repr, query_vector], axis=-1)
