"""Baseline recommendation models compared against Zoomer in the paper.

Section VII-A lists nine baselines; together with plain GCN that gives the
model zoo below.  Each baseline is implemented on the same substrate as
Zoomer (the :mod:`repro.ndarray` engine, :class:`~repro.models.encoders.
HeteroNodeEncoder` node encoders and the twin-tower head) so differences in
the comparison isolate the sampling and aggregation strategies — which is
exactly what the paper's Tables II/III and Figs. 11/12 study.

* :class:`GCNModel` — mean-pooling graph convolution (Kipf & Welling).
* :class:`GraphSAGEModel` — uniform neighbor sampling + concat aggregation.
* :class:`GATModel` — static pairwise edge attention.
* :class:`HANModel` — hierarchical (node-level + semantic-level) attention.
* :class:`PinSageModel` — importance-based sampling + importance pooling.
* :class:`PinnerSageModel` — cluster-based multi-interest sampling.
* :class:`PixieModel` — biased random-walk sampling with visit counts.
* :class:`GCEGNNModel` — session-local + global-context aggregation.
* :class:`FGNNModel` — weighted session-graph attention with readout.
* :class:`STAMPModel` — short-term attention/memory priority (non-GNN).
* :class:`MCCFModel` — multi-component decomposed aggregation.
"""

from repro.baselines.common import GraphRetrievalModel, TreeAggregationModel
from repro.baselines.gcn import GCNModel
from repro.baselines.graphsage import GraphSAGEModel
from repro.baselines.gat import GATModel
from repro.baselines.han import HANModel
from repro.baselines.pinsage import PinSageModel
from repro.baselines.pinnersage import PinnerSageModel
from repro.baselines.pixie import PixieModel
from repro.baselines.gce_gnn import GCEGNNModel
from repro.baselines.fgnn import FGNNModel
from repro.baselines.stamp import STAMPModel
from repro.baselines.mccf import MCCFModel

#: Baselines that own a graph-downscaling sampler (used by Figs. 11 and 12).
SAMPLER_BASELINES = {
    "GraphSage": GraphSAGEModel,
    "PinSage": PinSageModel,
    "PinnerSage": PinnerSageModel,
    "Pixie": PixieModel,
}

#: The baselines used in the MovieLens comparison (Table II).
MOVIELENS_BASELINES = {
    "GCE-GNN": GCEGNNModel,
    "FGNN": FGNNModel,
    "STAMP": STAMPModel,
    "MCCF": MCCFModel,
    "HAN": HANModel,
}

#: The full baseline zoo used in the Taobao comparison (Table III).
ALL_BASELINES = {
    "GCE-GNN": GCEGNNModel,
    "FGNN": FGNNModel,
    "STAMP": STAMPModel,
    "MCCF": MCCFModel,
    "HAN": HANModel,
    "PinSage": PinSageModel,
    "GraphSage": GraphSAGEModel,
    "PinnerSage": PinnerSageModel,
    "Pixie": PixieModel,
}

__all__ = [
    "GraphRetrievalModel",
    "TreeAggregationModel",
    "GCNModel",
    "GraphSAGEModel",
    "GATModel",
    "HANModel",
    "PinSageModel",
    "PinnerSageModel",
    "PixieModel",
    "GCEGNNModel",
    "FGNNModel",
    "STAMPModel",
    "MCCFModel",
    "SAMPLER_BASELINES",
    "MOVIELENS_BASELINES",
    "ALL_BASELINES",
]
