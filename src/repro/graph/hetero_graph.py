"""In-memory heterogeneous graph with CSR adjacency per typed relation.

This is the laptop-scale stand-in for the paper's distributed Euler graph
engine: nodes are typed (user / query / item ...), each relation
``(src_type, edge_type, dst_type)`` is stored as a CSR adjacency with edge
weights, and per-node alias tables give constant-time weighted neighbor
sampling (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.alias import BatchedAliasTable
from repro.graph.batch import (
    PAD_NODE,
    NeighborBatch,
    SubgraphBatch,
    SubgraphLayer,
    row_chunks,
    segment_offsets,
    sequence_from,
)
from repro.graph.schema import GraphSchema, RelationSpec
from repro.graph.update import GraphDelta, GraphUpdate


@dataclass
class _EdgeBuffer:
    """Append-only COO buffer used while the graph is being built."""

    src: List[int] = field(default_factory=list)
    dst: List[int] = field(default_factory=list)
    weight: List[float] = field(default_factory=list)


def _csr_sample_positions(indptr: np.ndarray, nodes: np.ndarray, k: int,
                          rng: np.random.Generator, weighted: bool,
                          replace: bool,
                          alias: BatchedAliasTable
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-row sampling over a CSR adjacency.

    Returns ``(positions, counts)`` where ``positions`` is an ``(N, K)``
    block of *flat edge indices* into the CSR arrays (left-aligned, padded
    with 0 beyond ``counts[i]``; mask before gathering anything sensitive).

    Row semantics match the historical single-node path: rows with no more
    than ``k`` neighbors keep all of them (when sampling without
    replacement), weighted rows draw from the row's alias table and
    deduplicate, uniform rows draw a k-subset.  The random-draw protocol
    consumes a fixed per-row block from ``rng``, so a batch of ``N`` rows
    reads the stream exactly as ``N`` successive batch-of-one calls — the
    invariant that makes batched and sequential sampling bit-identical
    under a fixed seed.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    n = nodes.size
    starts = indptr[nodes]
    degrees = indptr[nodes + 1] - starts
    positions = np.zeros((n, k), dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)

    if replace:
        keep_rows = np.zeros(n, dtype=bool)
    else:
        keep_rows = (degrees > 0) & (degrees <= k)
    draw_rows = (degrees > 0) & ~keep_rows

    keep_index = np.nonzero(keep_rows)[0]
    if keep_index.size:
        lengths = degrees[keep_index]
        rows, cols = segment_offsets(lengths)
        positions[keep_index[rows], cols] = np.repeat(starts[keep_index],
                                                      lengths) + cols
        counts[keep_index] = lengths

    draw_index = np.nonzero(draw_rows)[0]
    if draw_index.size and k > 0:
        draw_starts = starts[draw_index]
        draw_degrees = degrees[draw_index]
        if weighted:
            local = alias.sample(nodes[draw_index], k, rng)
            if replace:
                positions[draw_index] = draw_starts[:, None] + local
                counts[draw_index] = k
            else:
                local = np.sort(local, axis=1)
                fresh = np.ones_like(local, dtype=bool)
                fresh[:, 1:] = local[:, 1:] != local[:, :-1]
                order = np.argsort(~fresh, axis=1, kind="stable")
                local = np.take_along_axis(local, order, axis=1)
                kept = fresh.sum(axis=1)
                valid = np.arange(k)[None, :] < kept[:, None]
                positions[draw_index] = np.where(
                    valid, draw_starts[:, None] + local, 0)
                counts[draw_index] = kept
        elif replace:
            draws = rng.random((draw_index.size, k))
            local = (draws * draw_degrees[:, None]).astype(np.int64)
            np.minimum(local, draw_degrees[:, None] - 1, out=local)
            positions[draw_index] = draw_starts[:, None] + local
            counts[draw_index] = k
        else:
            # Uniform k-subset via random keys: every row consumes exactly
            # ``degree`` draws, preserving the batch/sequential stream
            # match.  Keys are drawn in one flat pass (the stream contract)
            # and ranked per row-chunk so a hub row cannot inflate the
            # padded block to frontier_size * max_degree.
            keys_flat = rng.random(int(draw_degrees.sum()))
            offsets = np.cumsum(draw_degrees) - draw_degrees
            for chunk_start, chunk_stop in row_chunks(draw_degrees):
                chunk_degrees = draw_degrees[chunk_start:chunk_stop]
                width = int(chunk_degrees.max(initial=0))
                rows, cols = segment_offsets(chunk_degrees)
                keys = np.full((chunk_stop - chunk_start, width), np.inf)
                flat_lo = offsets[chunk_start]
                keys[rows, cols] = keys_flat[flat_lo:
                                             flat_lo + int(chunk_degrees.sum())]
                # Draw rows all have degree > k, so the k smallest keys
                # are always real entries.
                local = np.argsort(keys, axis=1, kind="stable")[:, :k]
                positions[draw_index[chunk_start:chunk_stop]] = \
                    draw_starts[chunk_start:chunk_stop, None] + local
            counts[draw_index] = k
    return positions, counts


class Relation:
    """CSR adjacency for a single typed relation."""

    def __init__(self, spec: RelationSpec, num_src: int,
                 src: np.ndarray, dst: np.ndarray, weight: np.ndarray):
        self.spec = spec
        self.num_src = num_src
        order = np.argsort(src, kind="stable")
        src = src[order]
        self.indices = dst[order]
        self.weights = weight[order]
        counts = np.bincount(src, minlength=num_src)
        self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self._alias_batch: Optional[BatchedAliasTable] = None

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def neighbors(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, edge_weights)`` for ``node_id``."""
        start, stop = self.indptr[node_id], self.indptr[node_id + 1]
        return self.indices[start:stop], self.weights[start:stop]

    def degree(self, node_id: int) -> int:
        """Out-degree of ``node_id`` under this relation."""
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def degrees(self) -> np.ndarray:
        """Out-degrees of every source node."""
        return np.diff(self.indptr)

    def alias_sampler(self) -> BatchedAliasTable:
        """The relation-wide batched alias table (built lazily, cached)."""
        if self._alias_batch is None:
            self._alias_batch = BatchedAliasTable(self.indptr, self.weights)
        return self._alias_batch

    def apply_updates(self, src: np.ndarray, dst: np.ndarray,
                      weights: np.ndarray,
                      num_src: Optional[int] = None,
                      executor=None) -> np.ndarray:
        """Absorb edges (and optionally grow the row space) in one re-pack.

        An incoming edge whose ``(src, dst)`` pair already exists in the
        CSR **accumulates onto the existing edge's weight** — matching the
        offline :class:`~repro.graph.builder.GraphBuilder`, where repeated
        interactions strengthen one edge rather than stacking parallel
        edges (parallel edges would also fill the serving caches' top-k
        slots with duplicates).  Genuinely new pairs land at the end of
        their row's segment via a single vectorized copy, so the result is
        bit-identical to constructing the relation from the accumulated
        edge list with the new pairs appended to the input.  The cached
        :class:`BatchedAliasTable` is rebuilt scoped to the touched rows
        only (:meth:`BatchedAliasTable.rebuilt`), which is what makes
        streaming micro-batches cheap on large relations; an ``executor``
        (a worker pool's ``map`` interface) additionally fans that scoped
        construction out across cores, bit-identically.

        Returns the sorted unique source rows whose edges changed.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if src.shape != dst.shape or src.shape != weights.shape:
            raise ValueError("src, dst and weights must have the same length")
        num_src = self.num_src if num_src is None else int(num_src)
        if num_src < self.num_src:
            raise ValueError("num_src cannot shrink")
        if src.size == 0:
            if num_src > self.num_src:   # pure row growth (new nodes, no edges)
                pad = np.full(num_src - self.num_src, self.indptr[-1],
                              dtype=np.int64)
                self.indptr = np.concatenate([self.indptr, pad])
                self.num_src = num_src
                if self._alias_batch is not None:
                    self._alias_batch = self._alias_batch.rebuilt(
                        self.indptr, self.weights,
                        np.empty(0, dtype=np.int64), executor=executor)
            return np.empty(0, dtype=np.int64)
        if src.min() < 0 or src.max() >= num_src:
            raise IndexError("src node id out of range")

        # Fold edges whose (src, dst) already exists into weight bumps; the
        # per-row scans only visit the touched rows' segments, keeping the
        # cost proportional to the update.
        order = np.argsort(src, kind="stable")
        src, dst, weights = src[order], dst[order], weights[order]
        touched = np.unique(src)
        bumped = self.weights.copy() if self.indices.size else self.weights
        append = np.ones(src.size, dtype=bool)
        for row in touched:
            if row < self.num_src:
                start, stop = self.indptr[row], self.indptr[row + 1]
                existing = {int(d): start + offset for offset, d
                            in enumerate(self.indices[start:stop])}
            else:
                existing = {}
            first_new: Dict[int, int] = {}
            lo = np.searchsorted(src, row, side="left")
            hi = np.searchsorted(src, row, side="right")
            for index in range(lo, hi):
                pair_dst = int(dst[index])
                slot = existing.get(pair_dst)
                if slot is not None:
                    bumped[slot] += weights[index]
                    append[index] = False
                elif pair_dst in first_new:
                    weights[first_new[pair_dst]] += weights[index]
                    append[index] = False
                else:
                    first_new[pair_dst] = index

        src, dst, weights = src[append], dst[append], weights[append]
        old_degrees = np.diff(self.indptr)
        if num_src > self.num_src:
            old_degrees = np.concatenate(
                [old_degrees, np.zeros(num_src - self.num_src, dtype=np.int64)])
        added = np.bincount(src, minlength=num_src)
        new_indptr = np.concatenate(
            ([0], np.cumsum(old_degrees + added))).astype(np.int64)
        new_indices = np.empty(int(new_indptr[-1]), dtype=np.int64)
        new_weights = np.empty(int(new_indptr[-1]))
        if self.indices.size:
            rows, cols = segment_offsets(old_degrees)
            slots = new_indptr[rows] + cols
            new_indices[slots] = self.indices
            new_weights[slots] = bumped
        rows, cols = segment_offsets(added)
        slots = new_indptr[rows] + old_degrees[rows] + cols
        new_indices[slots] = dst
        new_weights[slots] = weights

        old_alias = self._alias_batch
        self.indptr = new_indptr
        self.indices = new_indices
        self.weights = new_weights
        self.num_src = num_src
        if old_alias is not None:
            self._alias_batch = old_alias.rebuilt(new_indptr, new_weights,
                                                  touched, executor=executor)
        return touched

    def scale_weights(self, factor: float) -> None:
        """Multiply every edge weight by ``factor`` in place (time decay).

        The cached :class:`BatchedAliasTable` stays valid **without a
        rebuild**: alias tables normalise each row's weights to
        probabilities, so a uniform scale divides straight back out —
        sampling is bit-identical before and after.  This is what makes
        exponential decay O(E) array arithmetic instead of an O(E) alias
        reconstruction.
        """
        self.weights *= float(factor)

    def removal_keep_mask(self, src: np.ndarray,
                          dst: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over the CSR edges dropping the given pairs.

        Pairs not present in the relation are ignored (idempotent
        removal).  Only the named rows' segments are scanned, keeping the
        cost proportional to the removal batch.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        keep = np.ones(self.indices.size, dtype=bool)
        if src.size == 0:
            return keep
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        for row in np.unique(src):
            if row < 0 or row >= self.num_src:
                continue
            start, stop = self.indptr[row], self.indptr[row + 1]
            lo = np.searchsorted(src, row, side="left")
            hi = np.searchsorted(src, row, side="right")
            keep[start:stop] &= ~np.isin(self.indices[start:stop],
                                         dst[lo:hi])
        return keep

    def filter_edges(self, keep: np.ndarray, executor=None) -> np.ndarray:
        """Drop every edge whose ``keep`` entry is False, in one re-pack.

        The shrink twin of :meth:`apply_updates`: the CSR arrays are
        compacted with one boolean gather, and the cached alias tables are
        rebuilt **scoped to the rows that lost edges** — untouched rows'
        finished slices are carried over by
        :meth:`BatchedAliasTable.rebuilt` exactly as on the append path.
        Returns the sorted rows whose edges changed.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self.indices.shape:
            raise ValueError("keep mask must have one entry per edge")
        removed = np.nonzero(~keep)[0]
        if removed.size == 0:
            return np.empty(0, dtype=np.int64)
        rows = np.searchsorted(self.indptr, removed, side="right") - 1
        touched = np.unique(rows)
        new_counts = np.diff(self.indptr) \
            - np.bincount(rows, minlength=self.num_src)
        old_alias = self._alias_batch
        self.indptr = np.concatenate(
            ([0], np.cumsum(new_counts))).astype(np.int64)
        self.indices = self.indices[keep]
        self.weights = self.weights[keep]
        if old_alias is not None:
            self._alias_batch = old_alias.rebuilt(
                self.indptr, self.weights, touched, executor=executor)
        return touched

    def sample_neighbors_batch(self, node_ids: Sequence[int], k: int,
                               rng: Optional[np.random.Generator] = None,
                               weighted: bool = True,
                               replace: bool = False) -> NeighborBatch:
        """Sample up to ``k`` neighbors for a whole frontier of nodes.

        One vectorized pass over the relation's CSR arrays and alias tables
        — no per-node Python loop.  Nodes with at most ``k`` neighbors keep
        all of them (when ``replace`` is False); weighted rows draw from the
        paper's constant-time alias tables.
        """
        # repro: allow[RNG002] -- ad-hoc exploration default; engine paths thread a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        nodes = sequence_from(node_ids)
        if self.indices.size == 0 or k == 0:
            return NeighborBatch(
                ids=np.full((nodes.size, k), PAD_NODE, dtype=np.int64),
                weights=np.zeros((nodes.size, k)),
                counts=np.zeros(nodes.size, dtype=np.int64))
        alias = self.alias_sampler() if weighted else None
        positions, counts = _csr_sample_positions(
            self.indptr, nodes, k, rng, weighted, replace, alias)
        valid = np.arange(k)[None, :] < counts[:, None]
        ids = np.where(valid, self.indices[positions], PAD_NODE)
        weights = np.where(valid, self.weights[positions], 0.0)
        return NeighborBatch(ids=ids, weights=weights, counts=counts)

    def sample_neighbors(self, node_id: int, k: int,
                         rng: Optional[np.random.Generator] = None,
                         weighted: bool = True,
                         replace: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Sample up to ``k`` neighbors of ``node_id``.

        Batch-of-one wrapper over :meth:`sample_neighbors_batch`; a loop of
        single calls and one batched call read the same random stream, so
        both paths return identical samples under a fixed seed.
        """
        batch = self.sample_neighbors_batch(
            np.asarray([node_id], dtype=np.int64), k, rng=rng,
            weighted=weighted, replace=replace)
        return batch.row(0)


def expand_subgraph_batch(graph: "HeteroGraph", ego_type: str,
                          ego_ids: Sequence[int], fanouts: Sequence[int],
                          pick_group) -> SubgraphBatch:
    """Hop-major frontier expansion shared by every batched tree sampler.

    Per hop, the frontier is grouped by node type (schema order) and each
    group's edges are chosen by ``pick_group(node_type, adjacency, nodes,
    tree_indices, k)``, which returns ``(positions, weights, counts)`` —
    an ``(M, k)`` block of flat edge indices into the group's
    :class:`TypedAdjacency` (left-aligned, mask beyond ``counts``), the
    per-edge tree weights, and the per-row valid counts — or ``None`` when
    the group has nothing to expand.  The random engine and the
    deterministic focal top-k both plug in here, so layer layout and
    early-break semantics cannot diverge between them.
    """
    if any(k <= 0 for k in fanouts):
        raise ValueError("fanouts must be positive")
    egos = sequence_from(ego_ids)
    specs = graph.spec_list
    spec_ids = {spec: index for index, spec in enumerate(specs)}
    type_names = graph.schema.node_types
    spec_dst = np.array([type_names.index(spec.dst_type) for spec in specs],
                        dtype=np.int64)
    batch = SubgraphBatch(ego_type=ego_type, ego_ids=egos, specs=specs)
    frontier_ids = egos
    frontier_codes = np.full(egos.size, type_names.index(ego_type),
                             dtype=np.int64)
    frontier_tree = np.arange(egos.size)
    for k in fanouts:
        parents_parts: List[np.ndarray] = []
        rel_parts: List[np.ndarray] = []
        id_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        for code, node_type in enumerate(type_names):
            selected = np.nonzero(frontier_codes == code)[0]
            if selected.size == 0:
                continue
            adjacency = graph.typed_adjacency(node_type)
            picked = pick_group(node_type, adjacency, frontier_ids[selected],
                                frontier_tree[selected], k)
            if picked is None:
                continue
            positions, weights, counts = picked
            valid = np.arange(k)[None, :] < counts[:, None]
            flat_positions = positions[valid]
            if flat_positions.size == 0:
                continue
            local_to_global = np.array(
                [spec_ids[spec] for spec in adjacency.specs], dtype=np.int64)
            parents_parts.append(
                selected[np.repeat(np.arange(selected.size), counts)])
            rel_parts.append(
                local_to_global[adjacency.rel_local[flat_positions]])
            id_parts.append(adjacency.indices[flat_positions])
            weight_parts.append(weights[valid])
        if not id_parts:
            break
        layer = SubgraphLayer(
            parents=np.concatenate(parents_parts),
            rel_ids=np.concatenate(rel_parts),
            node_ids=np.concatenate(id_parts),
            weights=np.concatenate(weight_parts))
        batch.layers.append(layer)
        frontier_tree = frontier_tree[layer.parents]
        frontier_ids = layer.node_ids
        frontier_codes = spec_dst[layer.rel_ids]
    return batch


def engine_sample_subgraph_batch(graph_like, ego_type: str,
                                 ego_ids: Sequence[int],
                                 fanouts: Sequence[int],
                                 rng: np.random.Generator,
                                 weighted: bool = True,
                                 replace: bool = False) -> SubgraphBatch:
    """The random sampling engine's tree expansion over any graph facade.

    ``graph_like`` needs ``spec_list``, ``schema.node_types`` and
    ``typed_adjacency(node_type)`` — satisfied by :class:`HeteroGraph` and by
    the zero-copy shared-memory views the parallel subsystem hands to worker
    processes, so in-process and worker-side sampling execute the very same
    code path.
    """

    def engine_pick(node_type: str, adjacency: "TypedAdjacency",
                    nodes: np.ndarray, tree_indices: np.ndarray, k: int):
        if adjacency.indices.size == 0:
            return None
        alias = adjacency.alias_sampler() if weighted else None
        positions, counts = _csr_sample_positions(
            adjacency.indptr, nodes, k, rng, weighted, replace, alias)
        valid = np.arange(k)[None, :] < counts[:, None]
        weights = np.where(valid, adjacency.weights[positions], 0.0)
        return positions, weights, counts

    return expand_subgraph_batch(graph_like, ego_type, ego_ids, fanouts,
                                 engine_pick)


class TypedAdjacency:
    """Union CSR over every relation whose source is one node type.

    Concatenates the per-relation CSR segments of each source node (in
    relation-registration order, matching :meth:`HeteroGraph.neighbors`)
    so that heterogeneous "sample k from the union of all typed neighbor
    lists" queries run as one vectorized CSR pass.  ``rel_local[e]`` maps
    edge ``e`` back to its position in :attr:`specs`.
    """

    def __init__(self, specs: List[RelationSpec], relations: List["Relation"],
                 num_src: int):
        self.specs = specs
        self.num_src = num_src
        per_rel_degrees = [np.diff(rel.indptr) for rel in relations]
        total_degrees = (np.sum(per_rel_degrees, axis=0)
                         if per_rel_degrees else np.zeros(num_src, dtype=np.int64))
        self.indptr = np.concatenate(
            ([0], np.cumsum(total_degrees))).astype(np.int64)
        num_edges = int(self.indptr[-1])
        self.indices = np.empty(num_edges, dtype=np.int64)
        self.weights = np.empty(num_edges)
        self.rel_local = np.empty(num_edges, dtype=np.int64)
        consumed = np.zeros(num_src, dtype=np.int64)
        for rel_index, (rel, degrees) in enumerate(
                zip(relations, per_rel_degrees)):
            rows, cols = segment_offsets(degrees)
            slots = self.indptr[rows] + consumed[rows] + cols
            self.indices[slots] = rel.indices
            self.weights[slots] = rel.weights
            self.rel_local[slots] = rel_index
            consumed += degrees
        self._alias_batch: Optional[BatchedAliasTable] = None

    def alias_sampler(self) -> BatchedAliasTable:
        """The union-wide batched alias table (built lazily, cached)."""
        if self._alias_batch is None:
            self._alias_batch = BatchedAliasTable(self.indptr, self.weights)
        return self._alias_batch

    def degrees(self, nodes: np.ndarray) -> np.ndarray:
        """Union out-degree of each node in ``nodes``."""
        nodes = sequence_from(nodes)
        return self.indptr[nodes + 1] - self.indptr[nodes]


class HeteroGraph:
    """Typed heterogeneous graph with per-type features and CSR relations."""

    def __init__(self, schema: GraphSchema):
        schema.validate()
        self.schema = schema
        self.num_nodes: Dict[str, int] = {t: 0 for t in schema.node_types}
        self.features: Dict[str, np.ndarray] = {
            t: np.zeros((0, schema.feature_dims[t])) for t in schema.node_types
        }
        self._buffers: Dict[RelationSpec, _EdgeBuffer] = {}
        self.relations: Dict[RelationSpec, Relation] = {}
        self._typed_adjacency_cache: Dict[str, TypedAdjacency] = {}
        #: Superseded union adjacencies kept for scoped alias carry-over:
        #: node_type -> (old adjacency, touched rows accumulated since it
        #: was built).  Consumed lazily by :meth:`typed_adjacency`.
        self._typed_adjacency_stale: Dict[str,
                                          Tuple[TypedAdjacency,
                                                np.ndarray]] = {}
        self._finalized = False
        #: Monotonic update stamp; bumped by every non-empty apply_updates
        #: call so downstream caches can detect (and scope) staleness.
        self.version = 0
        #: Optional multi-core executor (a worker pool's ``map`` interface,
        #: see :mod:`repro.parallel`); when set, scoped alias rebuilds on
        #: the streaming write path fan out across its slots.  Results are
        #: bit-identical with or without it.
        self.parallel_executor = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_nodes(self, node_type: str, features: np.ndarray) -> np.ndarray:
        """Append nodes of ``node_type`` with dense ``features``.

        Returns the local ids assigned to the new nodes.
        """
        if node_type not in self.schema.node_types:
            raise KeyError(f"unknown node type {node_type!r}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array (num_nodes, feature_dim)")
        expected = self.schema.feature_dims[node_type]
        if features.shape[1] != expected:
            raise ValueError(
                f"feature dim mismatch for {node_type!r}: "
                f"{features.shape[1]} != {expected}"
            )
        start = self.num_nodes[node_type]
        self.features[node_type] = np.vstack([self.features[node_type], features])
        self.num_nodes[node_type] += features.shape[0]
        return np.arange(start, start + features.shape[0])

    def add_edges(self, spec: RelationSpec, src: Sequence[int], dst: Sequence[int],
                  weights: Optional[Sequence[float]] = None,
                  symmetric: bool = False) -> None:
        """Append edges for relation ``spec``; call :meth:`finalize` afterwards.

        With ``symmetric=True`` the reversed edges are also added under the
        reversed relation spec (registering it in the schema if needed).
        """
        if self._finalized:
            raise RuntimeError("graph already finalized; cannot add edges")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if weights is None:
            weights = np.ones(src.shape[0])
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must have the same length as src/dst")
        self._validate_ids(spec.src_type, src)
        self._validate_ids(spec.dst_type, dst)
        if spec not in [r for r in self.schema.relations]:
            self.schema.add_relation(spec.src_type, spec.edge_type, spec.dst_type)
        buffer = self._buffers.setdefault(spec, _EdgeBuffer())
        buffer.src.extend(src.tolist())
        buffer.dst.extend(dst.tolist())
        buffer.weight.extend(weights.tolist())
        if symmetric:
            self.add_edges(spec.reverse(), dst, src, weights, symmetric=False)

    def finalize(self) -> "HeteroGraph":
        """Convert all COO buffers into CSR relations; idempotent."""
        for spec, buffer in self._buffers.items():
            self.relations[spec] = Relation(
                spec,
                self.num_nodes[spec.src_type],
                np.asarray(buffer.src, dtype=np.int64),
                np.asarray(buffer.dst, dtype=np.int64),
                np.asarray(buffer.weight, dtype=np.float64),
            )
        self._buffers.clear()
        self._typed_adjacency_cache.clear()
        self._typed_adjacency_stale.clear()
        self._finalized = True
        return self

    # ------------------------------------------------------------------ #
    # Streaming updates
    # ------------------------------------------------------------------ #
    def apply_updates(self, update: GraphUpdate) -> GraphDelta:
        """Absorb a micro-batch of changes — growth *and* shrink — atomically.

        The streaming write path, applied in a fixed order:

        1. **decay** — every relation's weights are rescaled in place; no
           alias rebuild (per-row normalisation cancels a uniform scale),
        2. **shrink** — evictions, explicit pair removals and
           weight-threshold pruning fold into one keep-mask filter per
           relation (:meth:`Relation.filter_edges`), which re-packs the
           CSR and rebuilds alias tables scoped to the rows that lost
           edges,
        3. **growth** — node features are appended and every affected
           relation re-packs with one vectorized copy
           (:meth:`Relation.apply_updates`; repeated ``(src, dst)`` pairs
           accumulate weight like the offline builder), alias construction
           again scoped to the touched rows only.

        Cached union adjacencies are not rebuilt here: the superseded
        adjacency is stashed and the next sampling access rebuilds it
        lazily with the untouched rows' alias slices carried over,
        amortizing the structural copy across a stream of micro-batches.
        An empty update is a strict no-op: no structure is rebuilt, the
        version stamp does not move, and sampling stays bit-identical.
        Validation runs before anything mutates, so a bad id in any part
        of the update leaves the graph untouched.

        Returns a :class:`GraphDelta` naming the new version, exactly
        which nodes had their out-neighborhoods changed (the invalidation
        set for the serving caches) and which nodes were tombstoned (the
        subset serving must drop rather than re-warm).
        """
        self._require_finalized()
        if update.is_empty():
            return GraphDelta(version=self.version)
        self._validate_update(update)

        touched: Dict[str, np.ndarray] = {}

        def _touch(node_type: str, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            existing = touched.get(node_type)
            touched[node_type] = np.unique(rows) if existing is None \
                else np.union1d(existing, rows)

        # Lifecycle phase 1 — decay: one uniform in-place rescale of every
        # relation's weights.  Alias tables normalise per row, so the scale
        # divides back out and **no alias rebuild happens**; cached union
        # adjacencies (live and stashed) are rescaled in place so their
        # sampled weight values stay consistent with the relations.
        decay = float(update.decay)
        if decay != 1.0:
            for relation in self.relations.values():
                relation.scale_weights(decay)
            for adjacency in self._typed_adjacency_cache.values():
                adjacency.weights *= decay
            for old, _rows in self._typed_adjacency_stale.values():
                old.weights *= decay

        # Lifecycle phase 2 — shrink: evictions, explicit pair removals and
        # weight-threshold pruning combine into ONE keep-mask filter pass
        # per relation (one re-pack, one scoped alias rebuild).
        removed_edges = 0
        evicted = {node_type: np.unique(ids)
                   for node_type, ids in update.evictions.items() if ids.size}
        if evicted or update.removals or update.prune_below > 0.0:
            for spec, relation in self.relations.items():
                keep: Optional[np.ndarray] = None
                if update.prune_below > 0.0 and relation.num_edges:
                    keep = relation.weights >= update.prune_below
                dead_src = evicted.get(spec.src_type)
                if dead_src is not None:
                    rows = dead_src[dead_src < relation.num_src]
                    degrees = relation.indptr[rows + 1] - relation.indptr[rows]
                    if degrees.sum():
                        flat = np.repeat(relation.indptr[rows], degrees) \
                            + segment_offsets(degrees)[1]
                        if keep is None:
                            keep = np.ones(relation.num_edges, dtype=bool)
                        keep[flat] = False
                dead_dst = evicted.get(spec.dst_type)
                if dead_dst is not None and relation.num_edges:
                    alive = ~np.isin(relation.indices, dead_dst)
                    keep = alive if keep is None else keep & alive
                pairs = update.removals.get(spec)
                if pairs is not None:
                    mask = relation.removal_keep_mask(pairs[0], pairs[1])
                    keep = mask if keep is None else keep & mask
                if keep is None or keep.all():
                    continue
                edges_before = relation.num_edges
                rows = relation.filter_edges(keep,
                                             executor=self.parallel_executor)
                removed_edges += edges_before - relation.num_edges
                _touch(spec.src_type, rows)
            # Evicted nodes are touched by definition — their neighborhoods
            # are now empty — even when they had no out-edges left, so the
            # serving layer drops their cache entries and postings.
            for node_type, ids in evicted.items():
                _touch(node_type, ids)

        added_nodes: Dict[str, np.ndarray] = {}
        for node_type, features in update.nodes.items():
            if features.shape[0]:
                added_nodes[node_type] = self.add_nodes(node_type, features)

        num_new_edges = 0
        for spec, (src, dst, weights) in update.edges.items():
            if spec not in self.relations:
                if spec not in self.schema.relations:
                    self.schema.add_relation(spec.src_type, spec.edge_type,
                                             spec.dst_type)
                self.relations[spec] = Relation(
                    spec, self.num_nodes[spec.src_type],
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                    np.empty(0))
            relation = self.relations[spec]
            edges_before = relation.num_edges
            rows = relation.apply_updates(
                src, dst, weights, num_src=self.num_nodes[spec.src_type],
                executor=self.parallel_executor)
            # Count genuinely appended edges; incoming edges folded into
            # weight bumps on existing pairs reconcile with total_edges.
            num_new_edges += relation.num_edges - edges_before
            _touch(spec.src_type, rows)

        # Grow the row space of relations whose source type gained nodes but
        # received no edges (their indptr must still cover the new ids).
        for spec, relation in self.relations.items():
            if relation.num_src < self.num_nodes[spec.src_type]:
                relation.apply_updates(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                    np.empty(0), num_src=self.num_nodes[spec.src_type],
                    executor=self.parallel_executor)

        # Invalidate cached union adjacencies for the affected source types
        # without paying their O(all edges of the type) reconstruction per
        # micro-batch: the superseded adjacency is stashed (with the rows
        # touched since it was built) and the next sampling access rebuilds
        # the union lazily, carrying over the untouched rows' finished
        # alias slices.  Consecutive updates just extend the stash's
        # touched set, amortizing the copy across the stream.
        for node_type in set(touched) | set(added_nodes):
            rows = touched.get(node_type, np.empty(0, dtype=np.int64))
            old = self._typed_adjacency_cache.pop(node_type, None)
            stale = self._typed_adjacency_stale.get(node_type)
            if stale is not None:
                self._typed_adjacency_stale[node_type] = \
                    (stale[0], np.union1d(stale[1], rows))
            elif old is not None and old._alias_batch is not None:
                self._typed_adjacency_stale[node_type] = (old, rows)

        self.version += 1
        return GraphDelta(version=self.version, touched=touched,
                          added_nodes=added_nodes,
                          num_new_edges=num_new_edges,
                          removed_edges=removed_edges,
                          evicted=evicted, decay=decay)

    def _validate_update(self, update: GraphUpdate) -> None:
        """Reject an invalid update before anything is mutated.

        ``apply_updates`` is atomic: every node-feature block and every
        edge array (validated against the node counts the update *will*
        produce) is checked here first, so a bad id in the last relation
        cannot leave earlier relations mutated behind an unmoved version
        stamp and stale adjacency caches.
        """
        if not (update.decay > 0.0) or not np.isfinite(update.decay):
            raise ValueError("update.decay must be positive and finite")
        if update.prune_below < 0.0 or not np.isfinite(update.prune_below):
            raise ValueError(
                "update.prune_below must be non-negative and finite")
        for node_type, ids in update.evictions.items():
            if node_type not in self.schema.node_types:
                raise KeyError(f"unknown node type {node_type!r} in evictions")
            if ids.ndim != 1:
                raise ValueError(
                    f"eviction ids for {node_type!r} must be 1-D")
            if ids.size and (ids.min() < 0
                             or ids.max() >= self.num_nodes[node_type]):
                raise IndexError(
                    f"eviction id out of range for {node_type!r}: "
                    f"max={ids.max()}, num_nodes={self.num_nodes[node_type]}")
        for spec, (src, dst) in update.removals.items():
            for node_type in (spec.src_type, spec.dst_type):
                if node_type not in self.schema.node_types:
                    raise KeyError(f"unknown node type {node_type!r} in "
                                   f"removal relation {spec}")
            if src.ndim != 1 or src.shape != dst.shape:
                raise ValueError(
                    f"removal src/dst must be 1-D arrays of equal length "
                    f"for relation {spec}")
        prospective = dict(self.num_nodes)
        for node_type, features in update.nodes.items():
            if node_type not in self.schema.node_types:
                raise KeyError(f"unknown node type {node_type!r}")
            expected = self.schema.feature_dims[node_type]
            if features.ndim != 2 or features.shape[1] != expected:
                raise ValueError(
                    f"feature dim mismatch for {node_type!r}: "
                    f"{features.shape} vs (*, {expected})")
            prospective[node_type] += features.shape[0]
        for spec, (src, dst, weights) in update.edges.items():
            for node_type in (spec.src_type, spec.dst_type):
                if node_type not in self.schema.node_types:
                    raise KeyError(f"unknown node type {node_type!r} in "
                                   f"relation {spec}")
            if src.shape != dst.shape or src.shape != weights.shape:
                raise ValueError(
                    f"src/dst/weights length mismatch for relation {spec}")
            if src.size == 0:
                continue
            if src.min() < 0 or src.max() >= prospective[spec.src_type]:
                raise IndexError(
                    f"src node id out of range for relation {spec}: "
                    f"max={src.max()}, num_nodes={prospective[spec.src_type]}")
            if dst.min() < 0 or dst.max() >= prospective[spec.dst_type]:
                raise IndexError(
                    f"dst node id out of range for relation {spec}: "
                    f"max={dst.max()}, num_nodes={prospective[spec.dst_type]}")

    def _validate_ids(self, node_type: str, ids: np.ndarray) -> None:
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.num_nodes[node_type]:
            raise IndexError(
                f"node id out of range for type {node_type!r}: "
                f"max={ids.max()}, num_nodes={self.num_nodes[node_type]}"
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def total_nodes(self) -> int:
        return sum(self.num_nodes.values())

    @property
    def total_edges(self) -> int:
        self._require_finalized()
        return sum(rel.num_edges for rel in self.relations.values())

    def node_feature(self, node_type: str, node_id: int) -> np.ndarray:
        """Dense feature vector of one node."""
        return self.features[node_type][node_id]

    def node_features(self, node_type: str, node_ids: Sequence[int]) -> np.ndarray:
        """Dense feature matrix for a batch of nodes of one type."""
        return self.features[node_type][np.asarray(node_ids, dtype=np.int64)]

    def relation(self, spec: RelationSpec) -> Relation:
        """Return the CSR relation for ``spec``."""
        self._require_finalized()
        return self.relations[spec]

    def relations_from(self, node_type: str) -> List[Relation]:
        """All finalized relations whose source type is ``node_type``."""
        self._require_finalized()
        return [rel for spec, rel in self.relations.items()
                if spec.src_type == node_type]

    def neighbors(self, node_type: str, node_id: int
                  ) -> List[Tuple[RelationSpec, np.ndarray, np.ndarray]]:
        """All typed neighbor lists of a node: ``[(spec, ids, weights), ...]``."""
        self._require_finalized()
        result = []
        for spec, rel in self.relations.items():
            if spec.src_type != node_type:
                continue
            ids, weights = rel.neighbors(node_id)
            if ids.size:
                result.append((spec, ids, weights))
        return result

    def degree(self, node_type: str, node_id: int) -> int:
        """Total out-degree of a node across all relations."""
        return sum(rel.degree(node_id) for rel in self.relations_from(node_type)
                   if node_id < rel.num_src)

    # ------------------------------------------------------------------ #
    # Batch-first sampling engine
    # ------------------------------------------------------------------ #
    @property
    def spec_list(self) -> List[RelationSpec]:
        """Finalized relations in registration order (stable spec ids)."""
        self._require_finalized()
        return list(self.relations.keys())

    def typed_adjacency(self, node_type: str) -> TypedAdjacency:
        """Union CSR over all relations out of ``node_type`` (cached).

        After streaming updates the union is rebuilt lazily here; a
        superseded adjacency stashed by :meth:`apply_updates` donates the
        finished alias slices of every row untouched since it was built,
        so only the touched rows pay alias construction.
        """
        self._require_finalized()
        adjacency = self._typed_adjacency_cache.get(node_type)
        if adjacency is None:
            specs = [spec for spec in self.relations if spec.src_type == node_type]
            adjacency = TypedAdjacency(specs,
                                       [self.relations[s] for s in specs],
                                       self.num_nodes[node_type])
            stale = self._typed_adjacency_stale.pop(node_type, None)
            if stale is not None:
                old, rows = stale
                adjacency._alias_batch = old._alias_batch.rebuilt(
                    adjacency.indptr, adjacency.weights, rows,
                    executor=self.parallel_executor)
            self._typed_adjacency_cache[node_type] = adjacency
        return adjacency

    def sample_neighbors_batch(self, source: Union[str, RelationSpec],
                               node_ids: Sequence[int], k: int,
                               rng: Optional[np.random.Generator] = None,
                               weighted: bool = True,
                               replace: bool = False) -> NeighborBatch:
        """Sample ``k`` neighbors for a whole frontier in one vectorized pass.

        ``source`` is either a :class:`RelationSpec` (sample within one typed
        relation) or a node-type name (sample from the union of all typed
        neighbor lists, the regime the tree samplers use).  Union results
        carry per-sample ``rel_ids`` into :attr:`spec_list`.
        """
        self._require_finalized()
        if isinstance(source, RelationSpec):
            return self.relations[source].sample_neighbors_batch(
                node_ids, k, rng=rng, weighted=weighted, replace=replace)
        # repro: allow[RNG002] -- ad-hoc exploration default; engine paths thread a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        nodes = sequence_from(node_ids)
        adjacency = self.typed_adjacency(source)
        if adjacency.indices.size == 0 or k == 0:
            return NeighborBatch(
                ids=np.full((nodes.size, k), PAD_NODE, dtype=np.int64),
                weights=np.zeros((nodes.size, k)),
                counts=np.zeros(nodes.size, dtype=np.int64),
                rel_ids=np.full((nodes.size, k), -1, dtype=np.int64),
                specs=adjacency.specs)
        alias = adjacency.alias_sampler() if weighted else None
        positions, counts = _csr_sample_positions(
            adjacency.indptr, nodes, k, rng, weighted, replace, alias)
        valid = np.arange(k)[None, :] < counts[:, None]
        spec_ids = {spec: index for index, spec in enumerate(self.relations)}
        local_to_global = np.array(
            [spec_ids[spec] for spec in adjacency.specs], dtype=np.int64)
        ids = np.where(valid, adjacency.indices[positions], PAD_NODE)
        weights = np.where(valid, adjacency.weights[positions], 0.0)
        rel_ids = np.where(valid,
                           local_to_global[adjacency.rel_local[positions]], -1)
        return NeighborBatch(ids=ids, weights=weights, counts=counts,
                             rel_ids=rel_ids, specs=self.spec_list)

    def sample_subgraph_batch(self, ego_type: str, ego_ids: Sequence[int],
                              fanouts: Sequence[int],
                              rng: Optional[np.random.Generator] = None,
                              weighted: bool = True,
                              replace: bool = False) -> SubgraphBatch:
        """Expand full fanout trees over a node array, hop by hop.

        Per hop, the frontier is grouped by node type (schema order) and
        each group is sampled with one union-CSR batch call — no per-node
        Python loop anywhere on the expansion path.  Random draws are
        consumed hop-major across the whole batch (hop 1 of every ego,
        then hop 2, ...), so a batch of one ego is stream-identical to the
        single-ego path while larger batches interleave differently than
        an ego-by-ego loop.  The returned :class:`SubgraphBatch` keeps the
        layered array form; call ``to_trees()`` for
        :class:`~repro.sampling.base.SampledNode` trees.
        """
        self._require_finalized()
        # repro: allow[RNG002] -- ad-hoc exploration default; engine paths thread a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        return engine_sample_subgraph_batch(self, ego_type, ego_ids, fanouts,
                                            rng, weighted=weighted,
                                            replace=replace)

    def memory_bytes(self, include_alias: bool = False) -> int:
        """Approximate resident size of features + adjacency (for Fig. 4a).

        ``include_alias=True`` also counts the built per-row alias tables
        (relation-level and cached unions) — the accounting the lifecycle
        benchmark uses to pin bounded steady-state memory, since alias
        storage scales with the edge count too.
        """
        total = sum(feat.nbytes for feat in self.features.values())
        for rel in self.relations.values():
            total += rel.indptr.nbytes + rel.indices.nbytes + rel.weights.nbytes
            if include_alias and rel._alias_batch is not None:
                total += rel._alias_batch._prob.nbytes \
                    + rel._alias_batch._alias.nbytes
        if include_alias:
            for adjacency in self._typed_adjacency_cache.values():
                total += adjacency.indptr.nbytes + adjacency.indices.nbytes \
                    + adjacency.weights.nbytes + adjacency.rel_local.nbytes
                if adjacency._alias_batch is not None:
                    total += adjacency._alias_batch._prob.nbytes \
                        + adjacency._alias_batch._alias.nbytes
        return total

    def summary(self) -> Dict[str, object]:
        """Human-readable statistics used by DESIGN/EXPERIMENTS reporting."""
        self._require_finalized()
        return {
            "num_nodes": dict(self.num_nodes),
            "total_nodes": self.total_nodes,
            "total_edges": self.total_edges,
            "relations": {str(spec): rel.num_edges
                          for spec, rel in self.relations.items()},
            "memory_bytes": self.memory_bytes(),
        }

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before querying the graph")
