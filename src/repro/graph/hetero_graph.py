"""In-memory heterogeneous graph with CSR adjacency per typed relation.

This is the laptop-scale stand-in for the paper's distributed Euler graph
engine: nodes are typed (user / query / item ...), each relation
``(src_type, edge_type, dst_type)`` is stored as a CSR adjacency with edge
weights, and per-node alias tables give constant-time weighted neighbor
sampling (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.alias import AliasTable
from repro.graph.schema import GraphSchema, RelationSpec


@dataclass
class _EdgeBuffer:
    """Append-only COO buffer used while the graph is being built."""

    src: List[int] = field(default_factory=list)
    dst: List[int] = field(default_factory=list)
    weight: List[float] = field(default_factory=list)


class Relation:
    """CSR adjacency for a single typed relation."""

    def __init__(self, spec: RelationSpec, num_src: int,
                 src: np.ndarray, dst: np.ndarray, weight: np.ndarray):
        self.spec = spec
        self.num_src = num_src
        order = np.argsort(src, kind="stable")
        src = src[order]
        self.indices = dst[order]
        self.weights = weight[order]
        counts = np.bincount(src, minlength=num_src)
        self.indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self._alias_cache: Dict[int, AliasTable] = {}

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def neighbors(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, edge_weights)`` for ``node_id``."""
        start, stop = self.indptr[node_id], self.indptr[node_id + 1]
        return self.indices[start:stop], self.weights[start:stop]

    def degree(self, node_id: int) -> int:
        """Out-degree of ``node_id`` under this relation."""
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def degrees(self) -> np.ndarray:
        """Out-degrees of every source node."""
        return np.diff(self.indptr)

    def sample_neighbors(self, node_id: int, k: int,
                         rng: Optional[np.random.Generator] = None,
                         weighted: bool = True,
                         replace: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Sample up to ``k`` neighbors of ``node_id``.

        Weighted sampling uses a cached per-node alias table, matching the
        constant-time sampling design of the paper's graph engine.  When the
        node has at most ``k`` neighbors and ``replace`` is False, all
        neighbors are returned.
        """
        rng = rng if rng is not None else np.random.default_rng()
        ids, weights = self.neighbors(node_id)
        if ids.size == 0:
            return ids, weights
        if not replace and ids.size <= k:
            return ids, weights
        if weighted:
            table = self._alias_cache.get(node_id)
            if table is None:
                table = AliasTable(weights)
                self._alias_cache[node_id] = table
            positions = table.sample(k, rng)
            if not replace:
                positions = np.unique(positions)
        else:
            positions = rng.choice(ids.size, size=min(k, ids.size), replace=replace)
        return ids[positions], weights[positions]


class HeteroGraph:
    """Typed heterogeneous graph with per-type features and CSR relations."""

    def __init__(self, schema: GraphSchema):
        schema.validate()
        self.schema = schema
        self.num_nodes: Dict[str, int] = {t: 0 for t in schema.node_types}
        self.features: Dict[str, np.ndarray] = {
            t: np.zeros((0, schema.feature_dims[t])) for t in schema.node_types
        }
        self._buffers: Dict[RelationSpec, _EdgeBuffer] = {}
        self.relations: Dict[RelationSpec, Relation] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_nodes(self, node_type: str, features: np.ndarray) -> np.ndarray:
        """Append nodes of ``node_type`` with dense ``features``.

        Returns the local ids assigned to the new nodes.
        """
        if node_type not in self.schema.node_types:
            raise KeyError(f"unknown node type {node_type!r}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array (num_nodes, feature_dim)")
        expected = self.schema.feature_dims[node_type]
        if features.shape[1] != expected:
            raise ValueError(
                f"feature dim mismatch for {node_type!r}: "
                f"{features.shape[1]} != {expected}"
            )
        start = self.num_nodes[node_type]
        self.features[node_type] = np.vstack([self.features[node_type], features])
        self.num_nodes[node_type] += features.shape[0]
        return np.arange(start, start + features.shape[0])

    def add_edges(self, spec: RelationSpec, src: Sequence[int], dst: Sequence[int],
                  weights: Optional[Sequence[float]] = None,
                  symmetric: bool = False) -> None:
        """Append edges for relation ``spec``; call :meth:`finalize` afterwards.

        With ``symmetric=True`` the reversed edges are also added under the
        reversed relation spec (registering it in the schema if needed).
        """
        if self._finalized:
            raise RuntimeError("graph already finalized; cannot add edges")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if weights is None:
            weights = np.ones(src.shape[0])
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must have the same length as src/dst")
        self._validate_ids(spec.src_type, src)
        self._validate_ids(spec.dst_type, dst)
        if spec not in [r for r in self.schema.relations]:
            self.schema.add_relation(spec.src_type, spec.edge_type, spec.dst_type)
        buffer = self._buffers.setdefault(spec, _EdgeBuffer())
        buffer.src.extend(src.tolist())
        buffer.dst.extend(dst.tolist())
        buffer.weight.extend(weights.tolist())
        if symmetric:
            self.add_edges(spec.reverse(), dst, src, weights, symmetric=False)

    def finalize(self) -> "HeteroGraph":
        """Convert all COO buffers into CSR relations; idempotent."""
        for spec, buffer in self._buffers.items():
            self.relations[spec] = Relation(
                spec,
                self.num_nodes[spec.src_type],
                np.asarray(buffer.src, dtype=np.int64),
                np.asarray(buffer.dst, dtype=np.int64),
                np.asarray(buffer.weight, dtype=np.float64),
            )
        self._buffers.clear()
        self._finalized = True
        return self

    def _validate_ids(self, node_type: str, ids: np.ndarray) -> None:
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.num_nodes[node_type]:
            raise IndexError(
                f"node id out of range for type {node_type!r}: "
                f"max={ids.max()}, num_nodes={self.num_nodes[node_type]}"
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def total_nodes(self) -> int:
        return sum(self.num_nodes.values())

    @property
    def total_edges(self) -> int:
        self._require_finalized()
        return sum(rel.num_edges for rel in self.relations.values())

    def node_feature(self, node_type: str, node_id: int) -> np.ndarray:
        """Dense feature vector of one node."""
        return self.features[node_type][node_id]

    def node_features(self, node_type: str, node_ids: Sequence[int]) -> np.ndarray:
        """Dense feature matrix for a batch of nodes of one type."""
        return self.features[node_type][np.asarray(node_ids, dtype=np.int64)]

    def relation(self, spec: RelationSpec) -> Relation:
        """Return the CSR relation for ``spec``."""
        self._require_finalized()
        return self.relations[spec]

    def relations_from(self, node_type: str) -> List[Relation]:
        """All finalized relations whose source type is ``node_type``."""
        self._require_finalized()
        return [rel for spec, rel in self.relations.items()
                if spec.src_type == node_type]

    def neighbors(self, node_type: str, node_id: int
                  ) -> List[Tuple[RelationSpec, np.ndarray, np.ndarray]]:
        """All typed neighbor lists of a node: ``[(spec, ids, weights), ...]``."""
        self._require_finalized()
        result = []
        for spec, rel in self.relations.items():
            if spec.src_type != node_type:
                continue
            ids, weights = rel.neighbors(node_id)
            if ids.size:
                result.append((spec, ids, weights))
        return result

    def degree(self, node_type: str, node_id: int) -> int:
        """Total out-degree of a node across all relations."""
        return sum(rel.degree(node_id) for rel in self.relations_from(node_type)
                   if node_id < rel.num_src)

    def memory_bytes(self) -> int:
        """Approximate resident size of features + adjacency (for Fig. 4a)."""
        total = sum(feat.nbytes for feat in self.features.values())
        for rel in self.relations.values():
            total += rel.indptr.nbytes + rel.indices.nbytes + rel.weights.nbytes
        return total

    def summary(self) -> Dict[str, object]:
        """Human-readable statistics used by DESIGN/EXPERIMENTS reporting."""
        self._require_finalized()
        return {
            "num_nodes": dict(self.num_nodes),
            "total_nodes": self.total_nodes,
            "total_edges": self.total_edges,
            "relations": {str(spec): rel.num_edges
                          for spec, rel in self.relations.items()},
            "memory_bytes": self.memory_bytes(),
        }

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before querying the graph")
