"""Node-type / edge-type schema for heterogeneous retrieval graphs.

The paper's retrieval graph ``G = {U, Q, I, E}`` has user, query and item
nodes, interaction edges (click / session) and similarity edges (Section II,
Table I).  The schema here is kept generic so the same engine also hosts the
MovieLens-like graph (user / tag / movie) used in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class NodeType:
    """Canonical node-type names used by the Taobao-style retrieval graph."""

    USER = "user"
    QUERY = "query"
    ITEM = "item"
    # MovieLens-style graph (Table II).
    MOVIE = "movie"
    TAG = "tag"


class EdgeType:
    """Canonical edge-type names.

    Interaction edges come from the behavior logs; similarity edges come from
    MinHash Jaccard similarity over title terms (Section II).
    """

    CLICK = "click"            # user -> item under a query
    SESSION = "session"        # adjacently clicked items in one session
    QUERY_CLICK = "query_click"  # query -> clicked item
    SEARCH = "search"          # user -> query they posed
    SIMILARITY = "similarity"  # content similarity (MinHash Jaccard)
    RATING = "rating"          # MovieLens user -> movie
    RELEVANCE = "relevance"    # MovieLens movie -> tag


@dataclass(frozen=True)
class RelationSpec:
    """A typed relation ``(source type, edge type, destination type)``."""

    src_type: str
    edge_type: str
    dst_type: str

    def reverse(self) -> "RelationSpec":
        """Return the reversed relation (same edge type, swapped endpoints)."""
        return RelationSpec(self.dst_type, self.edge_type, self.src_type)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src_type}-[{self.edge_type}]->{self.dst_type}"


@dataclass
class GraphSchema:
    """Registry of node types, per-type feature dimensions and relations."""

    node_types: List[str] = field(default_factory=list)
    feature_dims: Dict[str, int] = field(default_factory=dict)
    relations: List[RelationSpec] = field(default_factory=list)

    def add_node_type(self, node_type: str, feature_dim: int) -> "GraphSchema":
        """Register a node type with its dense feature dimensionality."""
        if node_type in self.node_types:
            raise ValueError(f"node type {node_type!r} already registered")
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        self.node_types.append(node_type)
        self.feature_dims[node_type] = feature_dim
        return self

    def add_relation(self, src_type: str, edge_type: str,
                     dst_type: str) -> RelationSpec:
        """Register a relation; both endpoint types must already exist."""
        for node_type in (src_type, dst_type):
            if node_type not in self.node_types:
                raise KeyError(f"unknown node type {node_type!r}")
        spec = RelationSpec(src_type, edge_type, dst_type)
        if spec not in self.relations:
            self.relations.append(spec)
        return spec

    def relations_from(self, src_type: str) -> List[RelationSpec]:
        """All registered relations whose source is ``src_type``."""
        return [rel for rel in self.relations if rel.src_type == src_type]

    def relations_to(self, dst_type: str) -> List[RelationSpec]:
        """All registered relations whose destination is ``dst_type``."""
        return [rel for rel in self.relations if rel.dst_type == dst_type]

    def validate(self) -> None:
        """Sanity-check the schema; raises ``ValueError`` on inconsistency."""
        if not self.node_types:
            raise ValueError("schema has no node types")
        for rel in self.relations:
            if rel.src_type not in self.node_types or rel.dst_type not in self.node_types:
                raise ValueError(f"relation {rel} references unknown node type")


def iter_session_edges(user_id: int, query_id: int, clicked_items):
    """Yield one search session's interaction edges (Section II rules).

    The single source of the session-to-edge translation, shared by the
    offline :class:`~repro.graph.builder.GraphBuilder` and the streaming
    :class:`~repro.graph.update.GraphMutator` so batch-built and
    streamed-in graphs can never follow diverging rules.  Yields
    ``(src_type, edge_type, dst_type, src, dst)`` in the forward direction
    only; callers add the reversed edges.
    """
    yield (NodeType.USER, EdgeType.SEARCH, NodeType.QUERY, user_id, query_id)
    previous_item = None
    for item_id in clicked_items:
        yield (NodeType.USER, EdgeType.CLICK, NodeType.ITEM, user_id, item_id)
        yield (NodeType.QUERY, EdgeType.QUERY_CLICK, NodeType.ITEM,
               query_id, item_id)
        if previous_item is not None and previous_item != item_id:
            yield (NodeType.ITEM, EdgeType.SESSION, NodeType.ITEM,
                   previous_item, item_id)
        previous_item = item_id


def taobao_schema(feature_dim: int = 16) -> GraphSchema:
    """Schema for the Taobao-style user-query-item retrieval graph."""
    schema = GraphSchema()
    schema.add_node_type(NodeType.USER, feature_dim)
    schema.add_node_type(NodeType.QUERY, feature_dim)
    schema.add_node_type(NodeType.ITEM, feature_dim)
    schema.add_relation(NodeType.USER, EdgeType.SEARCH, NodeType.QUERY)
    schema.add_relation(NodeType.QUERY, EdgeType.SEARCH, NodeType.USER)
    schema.add_relation(NodeType.USER, EdgeType.CLICK, NodeType.ITEM)
    schema.add_relation(NodeType.ITEM, EdgeType.CLICK, NodeType.USER)
    schema.add_relation(NodeType.QUERY, EdgeType.QUERY_CLICK, NodeType.ITEM)
    schema.add_relation(NodeType.ITEM, EdgeType.QUERY_CLICK, NodeType.QUERY)
    schema.add_relation(NodeType.ITEM, EdgeType.SESSION, NodeType.ITEM)
    schema.add_relation(NodeType.QUERY, EdgeType.SIMILARITY, NodeType.ITEM)
    schema.add_relation(NodeType.ITEM, EdgeType.SIMILARITY, NodeType.QUERY)
    schema.add_relation(NodeType.ITEM, EdgeType.SIMILARITY, NodeType.ITEM)
    return schema


def movielens_schema(feature_dim: int = 16) -> GraphSchema:
    """Schema for the MovieLens-style user-tag-movie graph (Table II)."""
    schema = GraphSchema()
    schema.add_node_type(NodeType.USER, feature_dim)
    schema.add_node_type(NodeType.TAG, feature_dim)
    schema.add_node_type(NodeType.MOVIE, feature_dim)
    schema.add_relation(NodeType.USER, EdgeType.RATING, NodeType.MOVIE)
    schema.add_relation(NodeType.MOVIE, EdgeType.RATING, NodeType.USER)
    schema.add_relation(NodeType.MOVIE, EdgeType.RELEVANCE, NodeType.TAG)
    schema.add_relation(NodeType.TAG, EdgeType.RELEVANCE, NodeType.MOVIE)
    return schema
