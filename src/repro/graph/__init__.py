"""Heterogeneous graph engine (the Euler-like substrate of the paper).

The paper stores Taobao's user-query-item graph in a distributed graph engine
(Euler) with alias-table sampling and compact per-type feature storage.  This
package provides the laptop-scale equivalent:

* :class:`~repro.graph.schema.GraphSchema` — node-type and edge-type registry.
* :class:`~repro.graph.hetero_graph.HeteroGraph` — in-memory heterogeneous
  graph with per-relation CSR adjacency and per-type feature matrices.
* :class:`~repro.graph.alias.AliasTable` — constant-time weighted sampling.
* :class:`~repro.graph.alias.BatchedAliasTable` — flattened per-row alias
  tables over a CSR adjacency for ``(N, K)`` frontier draws in one pass.
* :mod:`~repro.graph.batch` — padded batch layouts (:class:`NeighborBatch`,
  :class:`SubgraphBatch`) produced by the vectorized sampling engine.
* :class:`~repro.graph.minhash.MinHasher` — MinHash / Jaccard similarity used
  to create similarity-based edges (cold-start handling in Section II).
* :class:`~repro.graph.builder.GraphBuilder` — constructs the heterogeneous
  graph from behavior logs following the paper's edge rules.
* :class:`~repro.graph.partition.ShardedGraphStore` — hash-partitioned,
  replicated storage that mimics the distributed graph engine.
* :class:`~repro.graph.features.FeatureStore` — typed node feature storage.
* :mod:`~repro.graph.update` — the streaming write path:
  :class:`GraphUpdate` / :class:`GraphDelta` micro-batches applied through
  :meth:`HeteroGraph.apply_updates` with alias rebuilds scoped to the
  touched rows, and :class:`GraphMutator` turning raw sessions into updates.
* :mod:`~repro.graph.lifecycle` — the shrink side of streaming:
  :class:`GraphCompactor` turns the spec's decay / TTL / memory-budget
  knobs into windowed compaction updates, so a continuously fed graph
  stays bounded instead of growing forever.
"""

from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.graph.hetero_graph import HeteroGraph, Relation, TypedAdjacency
from repro.graph.alias import AliasTable, BatchedAliasTable
from repro.graph.batch import NeighborBatch, SubgraphBatch, SubgraphLayer
from repro.graph.minhash import MinHasher, jaccard_similarity
from repro.graph.builder import GraphBuilder
from repro.graph.partition import HashPartitioner, ShardedGraphStore
from repro.graph.features import FeatureStore
from repro.graph.update import GraphDelta, GraphMutator, GraphUpdate
from repro.graph.lifecycle import GraphCompactor

__all__ = [
    "NodeType",
    "EdgeType",
    "GraphSchema",
    "HeteroGraph",
    "Relation",
    "TypedAdjacency",
    "AliasTable",
    "BatchedAliasTable",
    "NeighborBatch",
    "SubgraphBatch",
    "SubgraphLayer",
    "MinHasher",
    "jaccard_similarity",
    "GraphBuilder",
    "HashPartitioner",
    "ShardedGraphStore",
    "FeatureStore",
    "GraphDelta",
    "GraphMutator",
    "GraphUpdate",
    "GraphCompactor",
]
