"""Alias-table sampling (Walker's alias method).

The paper's graph engine implements adjacency lists with an Alias Table "to
achieve constant-time graph sampling independent of the graph size"
(Section VI).  This module provides that structure: after an O(n) build,
drawing a weighted sample costs O(1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

SampleShape = Union[int, Tuple[int, ...]]


class AliasTable:
    """Constant-time sampling from a discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights; they do not need to be normalised.  An all-zero
        weight vector falls back to the uniform distribution.
    """

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if weights.size == 0:
            raise ValueError("cannot build an alias table over zero outcomes")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            weights = np.ones_like(weights)
            total = weights.sum()
        self.n = weights.size
        self.probabilities = weights / total
        self._prob, self._alias = _build_alias_arrays(self.probabilities * self.n)

    def sample(self, size: SampleShape = 1,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw indices in O(size), independent of table size.

        ``size`` may be an int or a shape tuple — e.g. ``(N, K)`` draws ``K``
        samples for each of ``N`` frontier rows in one vectorized call.
        """
        shape = (size,) if np.isscalar(size) else tuple(size)
        if any(s < 0 for s in shape):
            raise ValueError("size must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        columns = rng.integers(0, self.n, size=shape)
        coins = rng.random(shape)
        use_primary = coins < self._prob[columns]
        return np.where(use_primary, columns, self._alias[columns])

    def sample_one(self, rng: Optional[np.random.Generator] = None) -> int:
        """Draw a single index."""
        return int(self.sample(1, rng)[0])


def _build_alias_arrays(scaled: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Classic two-stack alias construction for one scaled distribution.

    ``scaled`` must be the probabilities multiplied by their count (mean 1).
    Returns ``(prob, alias)`` with ``alias`` holding *local* column indices.
    """
    n = scaled.size
    prob = np.zeros(n)
    alias = np.zeros(n, dtype=np.int64)
    scaled = scaled.copy()
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = scaled[l] - (1.0 - scaled[s])
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for index in large + small:
        prob[index] = 1.0
        alias[index] = index
    return prob, alias


class BatchedAliasTable:
    """Alias tables for every row of a CSR adjacency, sampled in bulk.

    The per-row tables are stored flattened in edge order (aligned with the
    CSR ``indices`` array), so drawing ``(N, K)`` weighted samples for a
    frontier of ``N`` rows costs one vectorized pass — no per-node Python
    loop.  Construction is a one-time O(E) cost, cached by the graph engine.

    Rows whose weights sum to zero fall back to the uniform distribution,
    matching :class:`AliasTable`.
    """

    def __init__(self, indptr: np.ndarray, weights: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if weights.ndim != 1 or weights.size != int(indptr[-1]):
            raise ValueError("weights must be 1-D with indptr[-1] entries")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self.indptr = indptr
        self.num_rows = indptr.size - 1
        degrees = np.diff(indptr)

        cumulative = np.concatenate(([0.0], np.cumsum(weights)))
        totals = cumulative[indptr[1:]] - cumulative[indptr[:-1]]
        effective = weights.copy()
        degenerate = (totals <= 0) & (degrees > 0)
        if np.any(degenerate):
            uniform_rows = np.repeat(degenerate, degrees)
            effective[uniform_rows] = 1.0
            totals = totals.copy()
            totals[degenerate] = degrees[degenerate]
        scaled = effective * np.repeat(
            np.divide(degrees, totals, out=np.zeros_like(totals),
                      where=totals > 0),
            degrees)

        self._prob = np.ones(weights.size)
        self._alias = np.zeros(weights.size, dtype=np.int64)
        # Constant-weight rows are already served by the initialised arrays
        # (prob 1 accepts the uniformly drawn column), so the Python build
        # loop only visits rows with genuinely non-uniform weights —
        # unweighted relations build in O(1) rather than O(E).
        if weights.size:
            firsts = effective[np.minimum(indptr[:-1], weights.size - 1)]
            deviates = (effective != np.repeat(firsts, degrees)).astype(np.int64)
            deviation_cum = np.concatenate(([0], np.cumsum(deviates)))
            varied = (deviation_cum[indptr[1:]]
                      - deviation_cum[indptr[:-1]]) > 0
        else:
            varied = np.zeros(self.num_rows, dtype=bool)
        for row in np.nonzero((degrees > 1) & varied)[0]:
            start, stop = indptr[row], indptr[row + 1]
            prob, alias = _build_alias_arrays(scaled[start:stop])
            self._prob[start:stop] = prob
            self._alias[start:stop] = alias

    def degrees(self, rows: np.ndarray) -> np.ndarray:
        """Row degrees (number of outcomes per row)."""
        rows = np.asarray(rows, dtype=np.int64)
        return self.indptr[rows + 1] - self.indptr[rows]

    def sample(self, rows: np.ndarray, k: int,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``(len(rows), k)`` local column positions with replacement.

        Every row must have at least one outcome.  The draw protocol consumes
        exactly ``rng.random((len(rows), 2, k))``, so a batch of ``N`` rows
        reads the same random stream as ``N`` successive batch-of-one calls —
        the property the batched-vs-sequential equivalence tests pin down.
        """
        rng = rng if rng is not None else np.random.default_rng()
        rows = np.asarray(rows, dtype=np.int64)
        degrees = self.degrees(rows)
        if np.any(degrees <= 0):
            raise ValueError("cannot sample from empty rows")
        draws = rng.random((rows.size, 2, k))
        columns = (draws[:, 0, :] * degrees[:, None]).astype(np.int64)
        np.minimum(columns, degrees[:, None] - 1, out=columns)
        flat = self.indptr[rows][:, None] + columns
        accept = draws[:, 1, :] < self._prob[flat]
        return np.where(accept, columns, self._alias[flat])
