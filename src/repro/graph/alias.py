"""Alias-table sampling (Walker's alias method).

The paper's graph engine implements adjacency lists with an Alias Table "to
achieve constant-time graph sampling independent of the graph size"
(Section VI).  This module provides that structure: after an O(n) build,
drawing a weighted sample costs O(1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class AliasTable:
    """Constant-time sampling from a discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights; they do not need to be normalised.  An all-zero
        weight vector falls back to the uniform distribution.
    """

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if weights.size == 0:
            raise ValueError("cannot build an alias table over zero outcomes")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            weights = np.ones_like(weights)
            total = weights.sum()
        self.n = weights.size
        self.probabilities = weights / total

        scaled = self.probabilities * self.n
        self._prob = np.zeros(self.n)
        self._alias = np.zeros(self.n, dtype=np.int64)

        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for index in large + small:
            self._prob[index] = 1.0
            self._alias[index] = index

    def sample(self, size: int = 1,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` indices in O(size), independent of table size."""
        if size < 0:
            raise ValueError("size must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        columns = rng.integers(0, self.n, size=size)
        coins = rng.random(size)
        use_primary = coins < self._prob[columns]
        return np.where(use_primary, columns, self._alias[columns])

    def sample_one(self, rng: Optional[np.random.Generator] = None) -> int:
        """Draw a single index."""
        return int(self.sample(1, rng)[0])
