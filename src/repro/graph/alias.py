"""Alias-table sampling (Walker's alias method).

The paper's graph engine implements adjacency lists with an Alias Table "to
achieve constant-time graph sampling independent of the graph size"
(Section VI).  This module provides that structure: after an O(n) build,
drawing a weighted sample costs O(1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.batch import segment_offsets

SampleShape = Union[int, Tuple[int, ...]]

#: Below this many touched rows a scoped rebuild stays in-process even when
#: an executor is supplied — the per-task dispatch overhead would exceed the
#: alias construction it parallelizes.
MIN_PARALLEL_REBUILD_ROWS = 256


class AliasTable:
    """Constant-time sampling from a discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights; they do not need to be normalised.  An all-zero
        weight vector falls back to the uniform distribution.
    """

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if weights.size == 0:
            raise ValueError("cannot build an alias table over zero outcomes")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            weights = np.ones_like(weights)
            total = weights.sum()
        self.n = weights.size
        self.probabilities = weights / total
        self._prob, self._alias = _build_alias_arrays(self.probabilities * self.n)

    def sample(self, size: SampleShape = 1,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw indices in O(size), independent of table size.

        ``size`` may be an int or a shape tuple — e.g. ``(N, K)`` draws ``K``
        samples for each of ``N`` frontier rows in one vectorized call.
        """
        shape = (size,) if np.isscalar(size) else tuple(size)
        if any(s < 0 for s in shape):
            raise ValueError("size must be non-negative")
        # repro: allow[RNG002] -- ad-hoc exploration default; engine paths thread a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        columns = rng.integers(0, self.n, size=shape)
        coins = rng.random(shape)
        use_primary = coins < self._prob[columns]
        return np.where(use_primary, columns, self._alias[columns])

    def sample_one(self, rng: Optional[np.random.Generator] = None) -> int:
        """Draw a single index."""
        return int(self.sample(1, rng)[0])


def _build_alias_arrays(scaled: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Classic two-stack alias construction for one scaled distribution.

    ``scaled`` must be the probabilities multiplied by their count (mean 1).
    Returns ``(prob, alias)`` with ``alias`` holding *local* column indices.
    """
    n = scaled.size
    prob = np.zeros(n)
    alias = np.zeros(n, dtype=np.int64)
    scaled = scaled.copy()
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = scaled[l] - (1.0 - scaled[s])
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for index in large + small:
        prob[index] = 1.0
        alias[index] = index
    return prob, alias


def _validate_csr_weights(indptr: np.ndarray, weights: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a ``(indptr, weights)`` CSR pair; returns the cast arrays."""
    indptr = np.asarray(indptr, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if indptr.ndim != 1 or indptr.size == 0:
        raise ValueError("indptr must be a non-empty 1-D array")
    if weights.ndim != 1 or weights.size != int(indptr[-1]):
        raise ValueError("weights must be 1-D with indptr[-1] entries")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    return indptr, weights


class BatchedAliasTable:
    """Alias tables for every row of a CSR adjacency, sampled in bulk.

    The per-row tables are stored flattened in edge order (aligned with the
    CSR ``indices`` array), so drawing ``(N, K)`` weighted samples for a
    frontier of ``N`` rows costs one vectorized pass — no per-node Python
    loop.  Construction is a one-time O(E) cost, cached by the graph engine.

    Rows whose weights sum to zero fall back to the uniform distribution,
    matching :class:`AliasTable`.
    """

    def __init__(self, indptr: np.ndarray, weights: np.ndarray):
        indptr, weights = _validate_csr_weights(indptr, weights)
        self.indptr = indptr
        self.num_rows = indptr.size - 1
        self._prob = np.ones(weights.size)
        self._alias = np.zeros(weights.size, dtype=np.int64)
        self._build_rows(np.arange(self.num_rows, dtype=np.int64), weights)

    def _build_rows(self, rows: np.ndarray, weights: np.ndarray) -> None:
        """Build the per-row alias tables of ``rows`` in place.

        ``weights`` is the full flat weight array aligned with
        :attr:`indptr`; only the segments belonging to ``rows`` are read.
        Constant-weight rows are already served by the default arrays
        (prob 1 accepts the uniformly drawn column), so the Python build
        loop only visits rows with genuinely non-uniform weights —
        unweighted relations build in O(1) rather than O(E).
        """
        indptr = self.indptr
        degrees = indptr[rows + 1] - indptr[rows]
        active = rows[degrees > 0]
        if active.size == 0:
            return
        degrees = indptr[active + 1] - indptr[active]
        flat = np.repeat(indptr[active], degrees) + segment_offsets(degrees)[1]
        effective = weights[flat]
        boundaries = np.cumsum(degrees) - degrees
        totals = np.add.reduceat(effective, boundaries)
        degenerate = totals <= 0
        if np.any(degenerate):
            effective[np.repeat(degenerate, degrees)] = 1.0
            totals = totals.copy()
            totals[degenerate] = degrees[degenerate]
        scaled = effective * np.repeat(degrees / totals, degrees)

        self._prob[flat] = 1.0
        self._alias[flat] = 0
        firsts = effective[boundaries]
        deviates = (effective != np.repeat(firsts, degrees)).astype(np.int64)
        deviation_cum = np.cumsum(deviates)
        varied = deviation_cum[boundaries + degrees - 1] \
            - (deviation_cum[boundaries] - deviates[boundaries]) > 0
        for index in np.nonzero((degrees > 1) & varied)[0]:
            lo = boundaries[index]
            hi = lo + degrees[index]
            prob, alias = _build_alias_arrays(scaled[lo:hi])
            start = indptr[active[index]]
            self._prob[start:start + degrees[index]] = prob
            self._alias[start:start + degrees[index]] = alias

    def _build_rows_scoped(self, rows: np.ndarray, weights: np.ndarray,
                           executor=None) -> None:
        """Build ``rows`` in place, fanning chunks out through ``executor``.

        ``executor`` is anything with the pool's ``map(name, payloads)``
        interface and a ``num_slots`` width (a
        :class:`~repro.parallel.pool.WorkerPool` or the serial executor).
        Alias construction is row-local, so chunked building is bit-identical
        to :meth:`_build_rows`; small row sets
        (< :data:`MIN_PARALLEL_REBUILD_ROWS`) skip the dispatch overhead.
        """
        slots = getattr(executor, "num_slots", 1) if executor is not None else 1
        if slots <= 1 or rows.size < MIN_PARALLEL_REBUILD_ROWS:
            self._build_rows(rows, weights)
            return
        payloads = []
        scatter = []
        for chunk in np.array_split(rows, slots):
            if chunk.size == 0:
                continue
            degrees = self.indptr[chunk + 1] - self.indptr[chunk]
            flat = np.repeat(self.indptr[chunk], degrees) \
                + segment_offsets(degrees)[1]
            payloads.append({"degrees": degrees, "weights": weights[flat]})
            scatter.append(flat)
        for flat, (prob, alias) in zip(scatter,
                                       executor.map("alias_build_rows",
                                                    payloads)):
            self._prob[flat] = prob
            self._alias[flat] = alias

    def rebuilt(self, indptr: np.ndarray, weights: np.ndarray,
                touched_rows: np.ndarray,
                executor=None) -> "BatchedAliasTable":
        """A new table for an updated CSR, rebuilding only ``touched_rows``.

        This is the incremental-update path of the streaming subsystem:
        after edges are appended to a CSR adjacency, only the rows that
        received new edges (plus any rows added beyond the old row count,
        which are touched implicitly) pay the alias-construction cost; the
        finished ``(prob, alias)`` slices of every untouched row are copied
        over in one vectorized pass.  Untouched rows must carry exactly the
        same weight slice as in this table's CSR — the contract
        :meth:`repro.graph.hetero_graph.Relation.apply_updates` maintains —
        and a degree change on a row not listed in ``touched_rows`` raises.

        The result is bit-identical to ``BatchedAliasTable(indptr,
        weights)`` built from scratch (pinned by tests), at a fraction of
        the cost when few rows are touched (pinned >=5x by
        ``benchmarks/bench_streaming_ingest.py``).  With an ``executor``
        the touched rows' construction additionally fans out across worker
        slots (see :meth:`_build_rows_scoped`) — same bits, more cores.
        """
        indptr, weights = _validate_csr_weights(indptr, weights)
        if indptr.size - 1 < self.num_rows:
            raise ValueError("rebuilt() cannot shrink the row space")
        table = object.__new__(BatchedAliasTable)
        table.indptr = indptr
        table.num_rows = indptr.size - 1
        table._prob = np.ones(weights.size)
        table._alias = np.zeros(weights.size, dtype=np.int64)

        touched = np.zeros(table.num_rows, dtype=bool)
        touched_rows = np.asarray(touched_rows, dtype=np.int64)
        if touched_rows.size and (touched_rows.min() < 0
                                  or touched_rows.max() >= table.num_rows):
            raise IndexError("touched_rows out of range")
        touched[touched_rows] = True
        touched[self.num_rows:] = True   # rows beyond the old table are new
        untouched = np.nonzero(~touched)[0]
        old_degrees = self.indptr[untouched + 1] - self.indptr[untouched]
        new_degrees = indptr[untouched + 1] - indptr[untouched]
        if np.any(old_degrees != new_degrees):
            raise ValueError(
                "rows changed degree without being listed in touched_rows")
        copy = untouched[old_degrees > 0]
        if copy.size:
            degrees = new_degrees[old_degrees > 0]
            offsets = segment_offsets(degrees)[1]
            new_flat = np.repeat(indptr[copy], degrees) + offsets
            old_flat = np.repeat(self.indptr[copy], degrees) + offsets
            table._prob[new_flat] = self._prob[old_flat]
            table._alias[new_flat] = self._alias[old_flat]
        table._build_rows_scoped(np.nonzero(touched)[0], weights,
                                 executor=executor)
        return table

    def degrees(self, rows: np.ndarray) -> np.ndarray:
        """Row degrees (number of outcomes per row)."""
        rows = np.asarray(rows, dtype=np.int64)
        return self.indptr[rows + 1] - self.indptr[rows]

    def sample(self, rows: np.ndarray, k: int,
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``(len(rows), k)`` local column positions with replacement.

        Every row must have at least one outcome.  The draw protocol consumes
        exactly ``rng.random((len(rows), 2, k))``, so a batch of ``N`` rows
        reads the same random stream as ``N`` successive batch-of-one calls —
        the property the batched-vs-sequential equivalence tests pin down.
        """
        # repro: allow[RNG002] -- ad-hoc exploration default; engine paths thread a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        rows = np.asarray(rows, dtype=np.int64)
        degrees = self.degrees(rows)
        if np.any(degrees <= 0):
            raise ValueError("cannot sample from empty rows")
        draws = rng.random((rows.size, 2, k))
        columns = (draws[:, 0, :] * degrees[:, None]).astype(np.int64)
        np.minimum(columns, degrees[:, None] - 1, out=columns)
        flat = self.indptr[rows][:, None] + columns
        accept = draws[:, 1, :] < self._prob[flat]
        return np.where(accept, columns, self._alias[flat])
