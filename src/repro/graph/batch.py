"""Batch-first result layouts for the vectorized graph sampling engine.

The sampling engine works on node *arrays* instead of single nodes: a
one-hop call returns a :class:`NeighborBatch` (padded ``(N, K)`` blocks plus
per-row counts), and a multi-hop call returns a :class:`SubgraphBatch` —
layered frontier arrays with parent pointers that describe the full fanout
trees of every ego node at once.  Both layouts are plain numpy and can be
consumed without per-node Python loops; ``to_trees()`` materializes the
classic :class:`~repro.sampling.base.SampledNode` trees for the model layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import RelationSpec

#: Padding value used in the ``ids`` block for rows with fewer than K samples.
PAD_NODE = -1


@dataclass
class NeighborBatch:
    """One-hop sampling result for a frontier of ``N`` nodes.

    ``ids`` and ``weights`` are ``(N, K)`` blocks; row ``i`` holds
    ``counts[i]`` valid entries left-aligned and is padded with
    ``(PAD_NODE, 0.0)`` on the right.  ``rel_ids`` (present for union
    sampling across relations) indexes into ``specs`` per valid entry.
    """

    ids: np.ndarray
    weights: np.ndarray
    counts: np.ndarray
    rel_ids: Optional[np.ndarray] = None
    specs: Optional[List[RelationSpec]] = None

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def valid_mask(self) -> np.ndarray:
        """Boolean ``(N, K)`` mask of valid (non-padding) entries."""
        k = self.ids.shape[1]
        return np.arange(k)[None, :] < self.counts[:, None]

    def row(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, weights)`` of one row with the padding trimmed."""
        count = int(self.counts[index])
        return self.ids[index, :count], self.weights[index, :count]

    def flatten(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_index, ids, weights)`` of all valid entries, row-major."""
        mask = self.valid_mask
        rows = np.repeat(np.arange(len(self)), self.counts)
        return rows, self.ids[mask], self.weights[mask]


@dataclass
class SubgraphLayer:
    """One hop of a :class:`SubgraphBatch`.

    Entry ``j`` is a sampled edge: ``parents[j]`` indexes the previous
    layer's flattened nodes (layer 0's parents index the ego array),
    ``rel_ids[j]`` indexes the batch's ``specs`` list, and ``node_ids[j]`` /
    ``weights[j]`` are the sampled neighbor and its edge weight.
    """

    parents: np.ndarray
    rel_ids: np.ndarray
    node_ids: np.ndarray
    weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.node_ids.size)


@dataclass
class SubgraphBatch:
    """Fanout trees for a whole batch of ego nodes, in layered array form."""

    ego_type: str
    ego_ids: np.ndarray
    specs: List[RelationSpec]
    layers: List[SubgraphLayer] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.ego_ids.size)

    def num_nodes(self) -> int:
        """Total sampled nodes including the egos (the sampling cost)."""
        return int(self.ego_ids.size) + self.num_edges()

    def num_edges(self) -> int:
        """Total sampled edges across all hops."""
        return sum(layer.num_edges for layer in self.layers)

    def layer_types(self, layer_index: int) -> List[str]:
        """Destination node type of each edge in one layer."""
        layer = self.layers[layer_index]
        return [self.specs[r].dst_type for r in layer.rel_ids]

    def nodes_by_type(self) -> Dict[str, np.ndarray]:
        """Unique node ids per node type over egos and all hops."""
        grouped: Dict[str, List[np.ndarray]] = {self.ego_type: [self.ego_ids]}
        for layer in self.layers:
            if layer.num_edges == 0:
                continue
            dst_types = np.array([self.specs[r].dst_type
                                  for r in layer.rel_ids])
            for node_type in np.unique(dst_types):
                grouped.setdefault(str(node_type), []).append(
                    layer.node_ids[dst_types == node_type])
        return {node_type: np.unique(np.concatenate(chunks))
                for node_type, chunks in grouped.items()}

    def to_trees(self) -> List["SampledNode"]:
        """Materialize one :class:`SampledNode` tree per ego node."""
        from repro.sampling.base import SampledNode

        roots = [SampledNode(self.ego_type, int(ego)) for ego in self.ego_ids]
        previous: List[SampledNode] = roots
        for layer in self.layers:
            current: List[SampledNode] = []
            for parent, rel_id, node_id, weight in zip(
                    layer.parents, layer.rel_ids, layer.node_ids,
                    layer.weights):
                spec = self.specs[rel_id]
                child = SampledNode(spec.dst_type, int(node_id))
                previous[parent].add_child(spec, child, float(weight))
                current.append(child)
            previous = current
        return roots


def segment_offsets(lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row and within-row column index for flattened variable-length rows.

    Given per-row ``lengths``, returns ``(rows, cols)`` such that entry ``t``
    of the flattened concatenation belongs to row ``rows[t]`` at local
    position ``cols[t]`` — the scatter pattern used to place ragged CSR
    segments into padded ``(N, K)`` blocks without a Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    rows = np.repeat(np.arange(lengths.size), lengths)
    starts = np.cumsum(lengths) - lengths
    cols = np.arange(total) - np.repeat(starts, lengths)
    return rows, cols


def row_chunks(degrees: np.ndarray,
               max_cells: int = 4_194_304) -> Iterator[Tuple[int, int]]:
    """Contiguous row ranges whose padded block stays under ``max_cells``.

    Segmented operations that pad ragged rows into a dense
    ``(rows, max_degree)`` block use this to bound peak memory: one hub row
    shrinks the chunk size instead of inflating a frontier-sized block
    (``max_cells`` of float64 is ~32 MB).
    """
    num_rows = int(degrees.size)
    widest = int(degrees.max(initial=0))
    step = max(1, max_cells // max(widest, 1))
    for start in range(0, num_rows, step):
        yield start, min(start + step, num_rows)


def sequence_from(sequence: Sequence[int]) -> np.ndarray:
    """Coerce a node-id sequence into a 1-D int64 array."""
    array = np.asarray(sequence, dtype=np.int64)
    if array.ndim != 1:
        raise ValueError("node ids must form a 1-D sequence")
    return array
