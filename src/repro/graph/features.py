"""Typed node feature storage.

The paper's nodes carry categorical features (Table I: user ID / gender /
membership level; query category / title terms; item ID / category / title
terms / brand / shop).  The :class:`FeatureStore` keeps those categorical
fields per node type and can materialise dense feature vectors by hashing
each field into a small embedding-like subvector — the dense vectors are what
the focal-biased sampler's relevance score (Eq. 5) and the models consume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class FeatureStore:
    """Per-type categorical feature columns with dense projection.

    Each node type owns a set of named fields; each field is an integer array
    with one value per node (categorical id) or a list of token lists for
    text-like fields (title terms).
    """

    def __init__(self, dense_dim: int = 16, seed: int = 13):
        if dense_dim <= 0:
            raise ValueError("dense_dim must be positive")
        self.dense_dim = dense_dim
        self._seed = seed
        self._categorical: Dict[str, Dict[str, np.ndarray]] = {}
        self._tokens: Dict[str, Dict[str, List[Sequence[int]]]] = {}
        self._num_nodes: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_categorical(self, node_type: str, field: str,
                        values: Sequence[int]) -> None:
        """Register a categorical column (one integer id per node)."""
        values = np.asarray(values, dtype=np.int64)
        self._check_length(node_type, values.shape[0])
        self._categorical.setdefault(node_type, {})[field] = values

    def add_tokens(self, node_type: str, field: str,
                   token_lists: Sequence[Sequence[int]]) -> None:
        """Register a token-list column (e.g. title terms)."""
        self._check_length(node_type, len(token_lists))
        self._tokens.setdefault(node_type, {})[field] = [list(t) for t in token_lists]

    def _check_length(self, node_type: str, length: int) -> None:
        existing = self._num_nodes.get(node_type)
        if existing is None:
            self._num_nodes[node_type] = length
        elif existing != length:
            raise ValueError(
                f"field length {length} does not match existing node count "
                f"{existing} for type {node_type!r}"
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def num_nodes(self, node_type: str) -> int:
        """Number of nodes registered for ``node_type``."""
        return self._num_nodes.get(node_type, 0)

    def fields(self, node_type: str) -> List[str]:
        """Names of all fields registered for ``node_type``."""
        cats = list(self._categorical.get(node_type, {}))
        toks = list(self._tokens.get(node_type, {}))
        return cats + toks

    def categorical(self, node_type: str, field: str) -> np.ndarray:
        """Raw categorical column."""
        return self._categorical[node_type][field]

    def tokens(self, node_type: str, field: str, node_id: int) -> Sequence[int]:
        """Token list of one node for a text-like field."""
        return self._tokens[node_type][field][node_id]

    # ------------------------------------------------------------------ #
    # Dense projection
    # ------------------------------------------------------------------ #
    def dense_features(self, node_type: str) -> np.ndarray:
        """Materialise an ``(n, dense_dim)`` matrix from all fields.

        Each field value is hashed into a deterministic pseudo-random unit
        vector (per field), and a node's vector is the L2-normalised sum over
        its fields.  This mimics how feature hashing + embedding lookup gives
        each node a content-dependent position in feature space without
        training, which is exactly what the focal-relevance sampler needs
        before any model has been trained.
        """
        count = self.num_nodes(node_type)
        out = np.zeros((count, self.dense_dim))
        for field, values in self._categorical.get(node_type, {}).items():
            out += self._hash_vectors(field, values)
        for field, token_lists in self._tokens.get(node_type, {}).items():
            for node_id, token_list in enumerate(token_lists):
                if token_list:
                    out[node_id] += self._hash_vectors(
                        field, np.asarray(token_list, dtype=np.int64)
                    ).mean(axis=0)
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return out / norms

    def _hash_vectors(self, field: str, values: np.ndarray) -> np.ndarray:
        """Deterministic unit vectors for ``values`` within ``field``."""
        field_seed = (hash((field, self._seed)) & 0x7FFFFFFF)
        vectors = np.empty((values.shape[0], self.dense_dim))
        # Vectorised per unique value to keep this cheap for large columns.
        unique, inverse = np.unique(values, return_inverse=True)
        unique_vectors = np.empty((unique.shape[0], self.dense_dim))
        for position, value in enumerate(unique):
            rng = np.random.default_rng((field_seed * 1_000_003 + int(value)) & 0xFFFFFFFF)
            vec = rng.normal(size=self.dense_dim)
            unique_vectors[position] = vec / np.linalg.norm(vec)
        vectors = unique_vectors[inverse]
        return vectors
