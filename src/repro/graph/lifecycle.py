"""Graph lifecycle: time decay, TTL eviction and windowed compaction.

The paper's deployment serves a *continuously fed* behavior graph.  Append-only
streaming (the PR 4/5 write path) makes that graph grow without bound: memory
rises monotonically and long-dead edges keep their full weight in the alias
tables, distorting neighbor sampling forever.  This module closes the loop —
:class:`GraphCompactor` watches the ingest stream's timestamps and, on the
cadence :class:`~repro.api.spec.LifecycleSpec` declares, emits one shrinking
:class:`~repro.graph.update.GraphUpdate` that

* **decays** every edge weight by ``0.5 ** (elapsed / half_life)`` — an O(E)
  in-place multiply; per-row alias normalisation means *zero* alias rebuilds;
* **prunes** edges whose decayed weight fell under the spec's
  :meth:`~repro.api.spec.LifecycleSpec.weight_floor` (the edge-TTL contract:
  an edge not reinforced for one TTL has decayed past the floor);
* **tombstones** nodes idle longer than ``node_ttl`` — and, under a
  ``max_memory_bytes`` budget, the longest-idle nodes beyond it — keeping
  their feature/embedding rows so id-aligned trained state stays valid;
* returns the applied :class:`~repro.graph.update.GraphDelta` so the caller
  can merge it into the stream's pending delta and the serving layer can
  drop exactly the evicted postings/cache entries/ANN rows.

Time is whatever unit the session ``timestamp`` fields use; sessions without
timestamps leave the clock alone, so purely logical streams only ever compact
under an explicit memory budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

import numpy as np

from repro.graph.update import GraphDelta, GraphUpdate

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.api.spec import LifecycleSpec
    from repro.graph.hetero_graph import HeteroGraph

#: Largest fraction of a node type evicted by one budget-pressure pass.
#: Bounds the serving-layer churn a single compaction can cause.
MAX_PRESSURE_EVICT_FRACTION = 0.25


def _session_timestamp(session) -> float:
    """Best-effort timestamp of one session (objects or raw tuples)."""
    ts = getattr(session, "timestamp", None)
    if ts is None and isinstance(session, (tuple, list)) and len(session) > 3:
        ts = session[3]
    try:
        return float(ts) if ts is not None else 0.0
    except (TypeError, ValueError):
        return 0.0


class GraphCompactor:
    """Tracks per-node activity and emits windowed compaction updates.

    One compactor is bound to one live :class:`HeteroGraph` (the pipeline
    creates it lazily when ``spec.lifecycle.enabled``).  Feed it every
    applied micro-batch through :meth:`observe`; call :meth:`compact` on
    the spec's cadence.  The compactor never mutates the graph outside
    :meth:`compact`, and a pass that finds nothing to do returns ``None``
    without bumping the graph version — the strict no-op contract the
    bit-identity tests pin.
    """

    def __init__(self, graph: "HeteroGraph", spec: "LifecycleSpec",
                 now: float = 0.0):
        self.graph = graph
        self.spec = spec
        #: The stream clock: the largest session timestamp observed.
        self.now = float(now)
        #: Clock value the last decay pass brought the weights up to.
        self._decay_anchor = float(now)
        # node_type -> last-active timestamp per node id (grown lazily).
        self._last_active: Dict[str, np.ndarray] = {
            node_type: np.full(count, self.now)
            for node_type, count in graph.num_nodes.items()}
        # node_type -> "currently tombstoned" flag per node id.  Guards
        # against re-evicting an already-empty node every pass.
        self._evicted: Dict[str, np.ndarray] = {
            node_type: np.zeros(count, dtype=bool)
            for node_type, count in graph.num_nodes.items()}

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _grow_to_graph(self) -> None:
        """Extend the per-node books to the graph's current node counts."""
        for node_type, count in self.graph.num_nodes.items():
            active = self._last_active.get(
                node_type, np.empty(0, dtype=np.float64))
            if active.size < count:
                grown = np.full(count, self.now)
                grown[:active.size] = active
                self._last_active[node_type] = grown
            evicted = self._evicted.get(node_type, np.empty(0, dtype=bool))
            if evicted.size < count:
                grown_mask = np.zeros(count, dtype=bool)
                grown_mask[:evicted.size] = evicted
                self._evicted[node_type] = grown_mask

    def observe(self, sessions: Iterable, delta: GraphDelta) -> None:
        """Record one applied micro-batch: advance the clock, mark activity.

        ``sessions`` is the micro-batch that produced ``delta`` (used only
        for its timestamps); ``delta`` names the nodes whose neighborhoods
        changed.  Touched and appended nodes become active *now*, and any
        previously tombstoned node among them is alive again.
        """
        for session in sessions:
            ts = _session_timestamp(session)
            if ts > self.now:
                self.now = ts
        self._grow_to_graph()
        for node_type in set(delta.touched) | set(delta.added_nodes):
            ids = np.union1d(delta.touched_ids(node_type),
                             delta.added_ids(node_type))
            ids = ids[ids < self._last_active[node_type].size]
            self._last_active[node_type][ids] = self.now
            self._evicted[node_type][ids] = False

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def _ttl_evictions(self) -> Dict[str, np.ndarray]:
        """Node ids per type whose idle time exceeds ``node_ttl``."""
        if self.spec.node_ttl <= 0.0:
            return {}
        out: Dict[str, np.ndarray] = {}
        for node_type, active in self._last_active.items():
            idle = self.now - active
            dead = np.nonzero((idle > self.spec.node_ttl)
                              & ~self._evicted[node_type])[0]
            if dead.size:
                out[node_type] = dead
        return out

    def _pressure_evictions(self, already: Dict[str, np.ndarray]
                            ) -> Dict[str, np.ndarray]:
        """Longest-idle nodes to evict when the memory budget is exceeded.

        The budget is soft: the pass evicts up to
        :data:`MAX_PRESSURE_EVICT_FRACTION` of each type's *live* nodes,
        proportional to how far over budget the graph is, oldest-idle
        first.  Repeated passes converge instead of one pass mass-evicting.
        """
        budget = self.spec.max_memory_bytes
        if budget <= 0:
            return {}
        used = self.graph.memory_bytes(include_alias=True)
        if used <= budget:
            return {}
        fraction = min(MAX_PRESSURE_EVICT_FRACTION, 1.0 - budget / used)
        out: Dict[str, np.ndarray] = {}
        for node_type, active in self._last_active.items():
            live = ~self._evicted[node_type]
            taken = already.get(node_type)
            if taken is not None and taken.size:
                live = live.copy()
                live[taken] = False
            live_ids = np.nonzero(live)[0]
            count = int(live_ids.size * fraction)
            if count <= 0:
                continue
            idle_order = np.argsort(active[live_ids], kind="stable")
            out[node_type] = np.sort(live_ids[idle_order[:count]])
        return out

    def build_update(self) -> GraphUpdate:
        """The compaction :class:`GraphUpdate` one pass would apply now."""
        self._grow_to_graph()
        update = GraphUpdate()
        if self.spec.half_life > 0.0 and self.now > self._decay_anchor:
            elapsed = self.now - self._decay_anchor
            update.scale_weights(0.5 ** (elapsed / self.spec.half_life))
        floor = self.spec.weight_floor()
        if floor > 0.0:
            update.prune_edges_below(floor)
        evictions = self._ttl_evictions()
        for node_type, ids in self._pressure_evictions(evictions).items():
            taken = evictions.get(node_type)
            evictions[node_type] = ids if taken is None \
                else np.union1d(taken, ids)
        for node_type, ids in evictions.items():
            update.evict_nodes(node_type, ids)
        return update

    def compact(self) -> Optional[GraphDelta]:
        """Run one compaction pass; ``None`` when there is nothing to do.

        Applies the built update through
        :meth:`HeteroGraph.apply_updates
        <repro.graph.hetero_graph.HeteroGraph.apply_updates>` (scoped alias
        rebuilds only), advances the decay anchor and flags the evicted
        nodes so they are not re-evicted while tombstoned.
        """
        update = self.build_update()
        if update.is_empty():
            return None
        delta = self.graph.apply_updates(update)
        if update.decay != 1.0:
            self._decay_anchor = self.now
        for node_type, ids in delta.evicted.items():
            self._evicted[node_type][ids] = True
        return delta

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def evicted_counts(self) -> Dict[str, int]:
        """node_type -> number of currently tombstoned nodes."""
        return {node_type: int(mask.sum())
                for node_type, mask in self._evicted.items() if mask.any()}

    def idle_seconds(self, node_type: str,
                     node_ids: Sequence[int]) -> np.ndarray:
        """Idle time (now - last activity) for the given nodes."""
        self._grow_to_graph()
        ids = np.asarray(node_ids, dtype=np.int64)
        return self.now - self._last_active[node_type][ids]
