"""Streaming graph updates: micro-batched edge/node ingestion for live graphs.

The paper's deployment continuously feeds the web-scale behavior graph from
user interaction logs; a graph served online must absorb new edges without a
full rebuild.  This module is the write path of that streaming subsystem:

* :class:`GraphUpdate` — one micro-batch of changes (new nodes per type, new
  weighted edges per relation, plus the shrink side of the lifecycle: edge
  removals, node evictions, uniform weight decay and weight-threshold
  pruning), the unit
  :meth:`~repro.graph.hetero_graph.HeteroGraph.apply_updates` consumes.
* :class:`GraphDelta` — the receipt of an applied update: the graph's new
  version stamp plus exactly which source nodes had their out-neighborhoods
  changed.  The serving layer uses it to invalidate precisely the affected
  :class:`~repro.serving.cache.NeighborCache` keys and inverted-index
  postings, nothing else.
* :class:`GraphMutator` — translates raw search sessions ``{u, q, (i...)}``
  into :class:`GraphUpdate` batches following the same Section II edge rules
  as the offline :class:`~repro.graph.builder.GraphBuilder` (search / click /
  query_click / session edges, both directions), creating unit-norm features
  for previously unseen nodes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import RelationSpec, iter_session_edges

if TYPE_CHECKING:   # pragma: no cover - typing only, avoids an import cycle
    from repro.graph.hetero_graph import HeteroGraph


def _as_edge_endpoints(src: Sequence[int], dst: Sequence[int]
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce and validate one ``(src, dst)`` endpoint pair.

    Rejects non-1-D input explicitly: a 2-D src/dst pair of matching shape
    would otherwise pass the length check and corrupt CSR packing
    downstream.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.ndim != 1 or dst.ndim != 1:
        raise ValueError(
            f"src and dst must be 1-D arrays of node ids, got shapes "
            f"{src.shape} and {dst.shape}")
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same length")
    return src, dst


@dataclass
class GraphUpdate:
    """One micro-batch of graph changes.

    An update can grow the graph (appended nodes and weighted edges) *and*
    shrink it: explicit ``(src, dst)`` edge removals, whole-node evictions
    (tombstoning — feature and embedding rows stay so trained state keeps
    its alignment, but every incident edge is dropped in both directions),
    a uniform multiplicative weight ``decay``, and a ``prune_below``
    threshold that drops edges whose decayed weight has fallen under it.
    :meth:`HeteroGraph.apply_updates <repro.graph.hetero_graph.HeteroGraph.apply_updates>`
    applies the pieces in a fixed order: decay -> prune / evict / remove
    (one combined filter pass per relation) -> node appends -> edge
    appends.  Removals therefore target the pre-append state, and edges
    appended by the same update are never decayed or pruned by it.
    """

    #: node_type -> ``(count, feature_dim)`` feature rows to append.
    nodes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: relation -> ``(src, dst, weight)`` arrays of edges to append.
    edges: Dict[RelationSpec, Tuple[np.ndarray, np.ndarray, np.ndarray]] = \
        field(default_factory=dict)
    #: relation -> ``(src, dst)`` arrays of existing edges to delete.
    removals: Dict[RelationSpec, Tuple[np.ndarray, np.ndarray]] = \
        field(default_factory=dict)
    #: node_type -> ids to tombstone (all incident edges removed).
    evictions: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Multiplicative factor applied to every existing edge weight (time
    #: decay).  ``1.0`` means no decay.
    decay: float = 1.0
    #: Edges whose (decayed) weight falls strictly below this are dropped.
    #: ``0.0`` disables pruning.
    prune_below: float = 0.0

    def add_nodes(self, node_type: str, features: np.ndarray) -> "GraphUpdate":
        """Queue new nodes of ``node_type`` with dense ``features``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (num_nodes, feature_dim)")
        existing = self.nodes.get(node_type)
        if existing is not None and existing.shape[1] != features.shape[1]:
            raise ValueError(
                f"feature width mismatch for {node_type!r}: queued blocks "
                f"have {existing.shape[1]} columns, got {features.shape[1]}")
        self.nodes[node_type] = features if existing is None \
            else np.vstack([existing, features])
        return self

    def add_edges(self, spec: RelationSpec, src: Sequence[int],
                  dst: Sequence[int],
                  weights: Optional[Sequence[float]] = None,
                  symmetric: bool = False) -> "GraphUpdate":
        """Queue new edges for ``spec`` (optionally also the reverse edges)."""
        src, dst = _as_edge_endpoints(src, dst)
        weights = np.ones(src.size) if weights is None \
            else np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must have the same length as src/dst")
        existing = self.edges.get(spec)
        if existing is None:
            self.edges[spec] = (src, dst, weights)
        else:
            self.edges[spec] = (np.concatenate([existing[0], src]),
                                np.concatenate([existing[1], dst]),
                                np.concatenate([existing[2], weights]))
        if symmetric:
            self.add_edges(spec.reverse(), dst, src, weights, symmetric=False)
        return self

    def remove_edges(self, spec: RelationSpec, src: Sequence[int],
                     dst: Sequence[int],
                     symmetric: bool = False) -> "GraphUpdate":
        """Queue existing ``(src, dst)`` pairs of ``spec`` for deletion.

        Removal is idempotent: pairs not present in the graph when the
        update is applied are silently skipped, so replaying a removal
        twice is safe.
        """
        src, dst = _as_edge_endpoints(src, dst)
        existing = self.removals.get(spec)
        if existing is None:
            self.removals[spec] = (src, dst)
        else:
            self.removals[spec] = (np.concatenate([existing[0], src]),
                                   np.concatenate([existing[1], dst]))
        if symmetric:
            self.remove_edges(spec.reverse(), dst, src, symmetric=False)
        return self

    def evict_nodes(self, node_type: str,
                    node_ids: Sequence[int]) -> "GraphUpdate":
        """Queue nodes for eviction (tombstoning).

        Every edge incident to an evicted node — its own out-edges and all
        in-edges pointing at it — is removed; the node's feature row (and
        any model embedding row) is kept so id-aligned trained state stays
        valid.  Appending edges to the id later revives the node.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.ndim != 1:
            raise ValueError("node_ids must be a 1-D array of node ids")
        existing = self.evictions.get(node_type)
        merged = node_ids if existing is None \
            else np.concatenate([existing, node_ids])
        self.evictions[node_type] = np.unique(merged)
        return self

    def scale_weights(self, factor: float) -> "GraphUpdate":
        """Queue a uniform weight decay (factors compose multiplicatively)."""
        factor = float(factor)
        if not (factor > 0.0) or not np.isfinite(factor):
            raise ValueError("decay factor must be positive and finite")
        self.decay *= factor
        return self

    def prune_edges_below(self, min_weight: float) -> "GraphUpdate":
        """Queue pruning of edges whose decayed weight is below ``min_weight``."""
        min_weight = float(min_weight)
        if min_weight < 0.0 or not np.isfinite(min_weight):
            raise ValueError("min_weight must be non-negative and finite")
        self.prune_below = max(self.prune_below, min_weight)
        return self

    @property
    def num_new_edges(self) -> int:
        """Total number of queued edges across all relations."""
        return sum(int(src.size) for src, _, _ in self.edges.values())

    def shrinks(self) -> bool:
        """True when the update can remove edges (removals/evictions/pruning)."""
        return bool(self.removals) \
            or any(ids.size for ids in self.evictions.values()) \
            or self.prune_below > 0.0

    def is_empty(self) -> bool:
        """True when the update changes nothing at all."""
        return not any(f.shape[0] for f in self.nodes.values()) \
            and self.num_new_edges == 0 and not self.shrinks() \
            and self.decay == 1.0


@dataclass(frozen=True)
class GraphDelta:
    """Receipt of one applied :class:`GraphUpdate`: what changed, when.

    ``touched`` names exactly the nodes whose out-neighborhoods changed —
    the keys the serving layer must invalidate; everything else is
    guaranteed untouched and may keep serving cached results.
    """

    #: The graph's version stamp after the update was applied.
    version: int
    #: node_type -> sorted node ids whose out-neighborhood changed.
    touched: Dict[str, np.ndarray] = field(default_factory=dict)
    #: node_type -> ids of nodes appended by the update.
    added_nodes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Total number of edges appended.
    num_new_edges: int = 0
    #: Total number of edges removed (explicit removals + pruning + the
    #: incident edges of evicted nodes).
    removed_edges: int = 0
    #: node_type -> sorted ids tombstoned by the update.  Evicted ids are
    #: also listed in ``touched`` (their neighborhoods changed to empty);
    #: this names the subset the serving layer must *drop* rather than
    #: re-warm.
    evicted: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Product of the uniform weight-decay factors the update applied.
    decay: float = 1.0

    def is_empty(self) -> bool:
        """True when nothing changed (the empty-update no-op case)."""
        return not self.touched and not self.added_nodes \
            and not self.evicted and self.num_new_edges == 0 \
            and self.removed_edges == 0 and self.decay == 1.0

    def touched_ids(self, node_type: str) -> np.ndarray:
        """Sorted ids of ``node_type`` whose out-neighborhood changed."""
        return self.touched.get(node_type, np.empty(0, dtype=np.int64))

    def added_ids(self, node_type: str) -> np.ndarray:
        """Ids of ``node_type`` nodes appended by this update."""
        return self.added_nodes.get(node_type, np.empty(0, dtype=np.int64))

    def evicted_ids(self, node_type: str) -> np.ndarray:
        """Sorted ids of ``node_type`` tombstoned by this update."""
        return self.evicted.get(node_type, np.empty(0, dtype=np.int64))

    def num_evicted(self) -> int:
        """Total nodes tombstoned across all types."""
        return sum(int(ids.size) for ids in self.evicted.values())

    def touched_keys(self) -> Iterable[Tuple[str, int]]:
        """Iterate the ``(node_type, node_id)`` cache keys to invalidate.

        Compatibility wrapper: consumers that can take whole id arrays
        should read :attr:`touched` per node type instead (see
        :meth:`repro.serving.cache.NeighborCache.invalidate_nodes`), which
        skips the per-id Python tuple this generator materialises.
        """
        for node_type, ids in self.touched.items():
            for node_id in ids:
                yield node_type, int(node_id)

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Combine two consecutive deltas into one (later version wins).

        Used by :meth:`repro.api.pipeline.Pipeline.ingest` to accumulate
        micro-batches between server refreshes.  ``other`` must be the
        *later* delta: a node evicted by ``self`` but touched or re-added
        by ``other`` is alive again and leaves the merged eviction set.
        """
        touched = dict(self.touched)
        for node_type, ids in other.touched.items():
            existing = touched.get(node_type)
            touched[node_type] = ids if existing is None \
                else np.union1d(existing, ids)
        added = dict(self.added_nodes)
        for node_type, ids in other.added_nodes.items():
            existing = added.get(node_type)
            added[node_type] = ids if existing is None \
                else np.concatenate([existing, ids])
        evicted = {}
        for node_type in set(self.evicted) | set(other.evicted):
            revived = np.union1d(other.touched_ids(node_type),
                                 other.added_ids(node_type))
            still_dead = np.setdiff1d(self.evicted_ids(node_type), revived)
            merged = np.union1d(still_dead, other.evicted_ids(node_type))
            if merged.size:
                evicted[node_type] = merged
        return GraphDelta(version=max(self.version, other.version),
                          touched=touched, added_nodes=added,
                          num_new_edges=self.num_new_edges
                          + other.num_new_edges,
                          removed_edges=self.removed_edges
                          + other.removed_edges,
                          evicted=evicted,
                          decay=self.decay * other.decay)


def _session_fields(session) -> Tuple[int, int, Tuple[int, ...]]:
    """Coerce a session object or ``(u, q, items[, timestamp])`` tuple."""
    if hasattr(session, "user_id"):
        return (int(session.user_id), int(session.query_id),
                tuple(int(i) for i in session.clicked_items))
    user_id, query_id, clicked = session[0], session[1], session[2]
    return int(user_id), int(query_id), tuple(int(i) for i in clicked)


class GraphMutator:
    """Streams interaction sessions into a live, finalized graph.

    Each :meth:`apply_sessions` call turns a micro-batch of search sessions
    into one :class:`GraphUpdate` — following the Section II edge rules the
    offline :class:`~repro.graph.builder.GraphBuilder` uses — and applies it
    through :meth:`HeteroGraph.apply_updates`.  Ids beyond the graph's
    current node counts become new nodes with random unit-norm features
    (mirroring the ``behavior-logs`` dataset's cold-start features), drawn
    from a seeded stream so replays are deterministic.
    """

    def __init__(self, graph: "HeteroGraph", seed: int = 0,
                 feature_fn=None):
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._feature_fn = feature_fn

    def _new_node_features(self, node_type: str, count: int) -> np.ndarray:
        if self._feature_fn is not None:
            return np.asarray(self._feature_fn(node_type, count),
                              dtype=np.float64)
        dim = self.graph.schema.feature_dims[node_type]
        features = self._rng.normal(size=(count, dim))
        return features / np.linalg.norm(features, axis=1, keepdims=True)

    def update_from_sessions(self, sessions: Iterable) -> GraphUpdate:
        """Translate a micro-batch of sessions into one :class:`GraphUpdate`.

        Repeated interactions accumulate onto one edge exactly as in the
        offline builder: within the batch they fold here, and an
        interaction repeating an edge that already exists in the graph is
        folded into a weight bump by
        :meth:`~repro.graph.hetero_graph.Relation.apply_updates` — so a
        log streamed in micro-batches produces the same graph as building
        it offline in one shot.
        """
        weights: Dict[RelationSpec, Dict[Tuple[int, int], float]] = \
            defaultdict(lambda: defaultdict(float))
        max_ids: Dict[str, int] = defaultdict(lambda: -1)

        for session in sessions:
            user_id, query_id, clicked = _session_fields(session)
            for src_type, edge_type, dst_type, src, dst in \
                    iter_session_edges(user_id, query_id, clicked):
                forward = RelationSpec(src_type, edge_type, dst_type)
                weights[forward][(src, dst)] += 1.0
                weights[forward.reverse()][(dst, src)] += 1.0
                max_ids[src_type] = max(max_ids[src_type], src)
                max_ids[dst_type] = max(max_ids[dst_type], dst)

        update = GraphUpdate()
        for node_type, max_id in max_ids.items():
            missing = max_id + 1 - self.graph.num_nodes.get(node_type, 0)
            if missing > 0:
                update.add_nodes(node_type,
                                 self._new_node_features(node_type, missing))
        for spec, pair_weights in weights.items():
            pairs = np.array(list(pair_weights.keys()), dtype=np.int64)
            values = np.array(list(pair_weights.values()), dtype=np.float64)
            update.add_edges(spec, pairs[:, 0], pairs[:, 1], values)
        return update

    def apply_sessions(self, sessions: Iterable) -> GraphDelta:
        """Build and apply the update for one micro-batch of sessions."""
        return self.graph.apply_updates(self.update_from_sessions(sessions))
