"""Streaming graph updates: micro-batched edge/node ingestion for live graphs.

The paper's deployment continuously feeds the web-scale behavior graph from
user interaction logs; a graph served online must absorb new edges without a
full rebuild.  This module is the write path of that streaming subsystem:

* :class:`GraphUpdate` — one micro-batch of changes (new nodes per type, new
  weighted edges per relation), the unit
  :meth:`~repro.graph.hetero_graph.HeteroGraph.apply_updates` consumes.
* :class:`GraphDelta` — the receipt of an applied update: the graph's new
  version stamp plus exactly which source nodes had their out-neighborhoods
  changed.  The serving layer uses it to invalidate precisely the affected
  :class:`~repro.serving.cache.NeighborCache` keys and inverted-index
  postings, nothing else.
* :class:`GraphMutator` — translates raw search sessions ``{u, q, (i...)}``
  into :class:`GraphUpdate` batches following the same Section II edge rules
  as the offline :class:`~repro.graph.builder.GraphBuilder` (search / click /
  query_click / session edges, both directions), creating unit-norm features
  for previously unseen nodes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import RelationSpec, iter_session_edges

if TYPE_CHECKING:   # pragma: no cover - typing only, avoids an import cycle
    from repro.graph.hetero_graph import HeteroGraph


@dataclass
class GraphUpdate:
    """One micro-batch of graph changes: appended nodes and weighted edges."""

    #: node_type -> ``(count, feature_dim)`` feature rows to append.
    nodes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: relation -> ``(src, dst, weight)`` arrays of edges to append.
    edges: Dict[RelationSpec, Tuple[np.ndarray, np.ndarray, np.ndarray]] = \
        field(default_factory=dict)

    def add_nodes(self, node_type: str, features: np.ndarray) -> "GraphUpdate":
        """Queue new nodes of ``node_type`` with dense ``features``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (num_nodes, feature_dim)")
        existing = self.nodes.get(node_type)
        self.nodes[node_type] = features if existing is None \
            else np.vstack([existing, features])
        return self

    def add_edges(self, spec: RelationSpec, src: Sequence[int],
                  dst: Sequence[int],
                  weights: Optional[Sequence[float]] = None,
                  symmetric: bool = False) -> "GraphUpdate":
        """Queue new edges for ``spec`` (optionally also the reverse edges)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        weights = np.ones(src.size) if weights is None \
            else np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must have the same length as src/dst")
        existing = self.edges.get(spec)
        if existing is None:
            self.edges[spec] = (src, dst, weights)
        else:
            self.edges[spec] = (np.concatenate([existing[0], src]),
                                np.concatenate([existing[1], dst]),
                                np.concatenate([existing[2], weights]))
        if symmetric:
            self.add_edges(spec.reverse(), dst, src, weights, symmetric=False)
        return self

    @property
    def num_new_edges(self) -> int:
        """Total number of queued edges across all relations."""
        return sum(int(src.size) for src, _, _ in self.edges.values())

    def is_empty(self) -> bool:
        """True when the update carries neither nodes nor edges."""
        return not any(f.shape[0] for f in self.nodes.values()) \
            and self.num_new_edges == 0


@dataclass(frozen=True)
class GraphDelta:
    """Receipt of one applied :class:`GraphUpdate`: what changed, when.

    ``touched`` names exactly the nodes whose out-neighborhoods changed —
    the keys the serving layer must invalidate; everything else is
    guaranteed untouched and may keep serving cached results.
    """

    #: The graph's version stamp after the update was applied.
    version: int
    #: node_type -> sorted node ids whose out-neighborhood changed.
    touched: Dict[str, np.ndarray] = field(default_factory=dict)
    #: node_type -> ids of nodes appended by the update.
    added_nodes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Total number of edges appended.
    num_new_edges: int = 0

    def is_empty(self) -> bool:
        """True when nothing changed (the empty-update no-op case)."""
        return not self.touched and not self.added_nodes \
            and self.num_new_edges == 0

    def touched_ids(self, node_type: str) -> np.ndarray:
        """Sorted ids of ``node_type`` whose out-neighborhood changed."""
        return self.touched.get(node_type, np.empty(0, dtype=np.int64))

    def added_ids(self, node_type: str) -> np.ndarray:
        """Ids of ``node_type`` nodes appended by this update."""
        return self.added_nodes.get(node_type, np.empty(0, dtype=np.int64))

    def touched_keys(self) -> Iterable[Tuple[str, int]]:
        """Iterate the ``(node_type, node_id)`` cache keys to invalidate."""
        for node_type, ids in self.touched.items():
            for node_id in ids:
                yield node_type, int(node_id)

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Combine two consecutive deltas into one (later version wins).

        Used by :meth:`repro.api.pipeline.Pipeline.ingest` to accumulate
        micro-batches between server refreshes.
        """
        touched = dict(self.touched)
        for node_type, ids in other.touched.items():
            existing = touched.get(node_type)
            touched[node_type] = ids if existing is None \
                else np.union1d(existing, ids)
        added = dict(self.added_nodes)
        for node_type, ids in other.added_nodes.items():
            existing = added.get(node_type)
            added[node_type] = ids if existing is None \
                else np.concatenate([existing, ids])
        return GraphDelta(version=max(self.version, other.version),
                          touched=touched, added_nodes=added,
                          num_new_edges=self.num_new_edges
                          + other.num_new_edges)


def _session_fields(session) -> Tuple[int, int, Tuple[int, ...]]:
    """Coerce a session object or ``(u, q, items[, timestamp])`` tuple."""
    if hasattr(session, "user_id"):
        return (int(session.user_id), int(session.query_id),
                tuple(int(i) for i in session.clicked_items))
    user_id, query_id, clicked = session[0], session[1], session[2]
    return int(user_id), int(query_id), tuple(int(i) for i in clicked)


class GraphMutator:
    """Streams interaction sessions into a live, finalized graph.

    Each :meth:`apply_sessions` call turns a micro-batch of search sessions
    into one :class:`GraphUpdate` — following the Section II edge rules the
    offline :class:`~repro.graph.builder.GraphBuilder` uses — and applies it
    through :meth:`HeteroGraph.apply_updates`.  Ids beyond the graph's
    current node counts become new nodes with random unit-norm features
    (mirroring the ``behavior-logs`` dataset's cold-start features), drawn
    from a seeded stream so replays are deterministic.
    """

    def __init__(self, graph: "HeteroGraph", seed: int = 0,
                 feature_fn=None):
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._feature_fn = feature_fn

    def _new_node_features(self, node_type: str, count: int) -> np.ndarray:
        if self._feature_fn is not None:
            return np.asarray(self._feature_fn(node_type, count),
                              dtype=np.float64)
        dim = self.graph.schema.feature_dims[node_type]
        features = self._rng.normal(size=(count, dim))
        return features / np.linalg.norm(features, axis=1, keepdims=True)

    def update_from_sessions(self, sessions: Iterable) -> GraphUpdate:
        """Translate a micro-batch of sessions into one :class:`GraphUpdate`.

        Repeated interactions accumulate onto one edge exactly as in the
        offline builder: within the batch they fold here, and an
        interaction repeating an edge that already exists in the graph is
        folded into a weight bump by
        :meth:`~repro.graph.hetero_graph.Relation.apply_updates` — so a
        log streamed in micro-batches produces the same graph as building
        it offline in one shot.
        """
        weights: Dict[RelationSpec, Dict[Tuple[int, int], float]] = \
            defaultdict(lambda: defaultdict(float))
        max_ids: Dict[str, int] = defaultdict(lambda: -1)

        for session in sessions:
            user_id, query_id, clicked = _session_fields(session)
            for src_type, edge_type, dst_type, src, dst in \
                    iter_session_edges(user_id, query_id, clicked):
                forward = RelationSpec(src_type, edge_type, dst_type)
                weights[forward][(src, dst)] += 1.0
                weights[forward.reverse()][(dst, src)] += 1.0
                max_ids[src_type] = max(max_ids[src_type], src)
                max_ids[dst_type] = max(max_ids[dst_type], dst)

        update = GraphUpdate()
        for node_type, max_id in max_ids.items():
            missing = max_id + 1 - self.graph.num_nodes.get(node_type, 0)
            if missing > 0:
                update.add_nodes(node_type,
                                 self._new_node_features(node_type, missing))
        for spec, pair_weights in weights.items():
            pairs = np.array(list(pair_weights.keys()), dtype=np.int64)
            values = np.array(list(pair_weights.values()), dtype=np.float64)
            update.add_edges(spec, pairs[:, 0], pairs[:, 1], values)
        return update

    def apply_sessions(self, sessions: Iterable) -> GraphDelta:
        """Build and apply the update for one micro-batch of sessions."""
        return self.graph.apply_updates(self.update_from_sessions(sessions))
