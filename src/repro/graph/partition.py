"""Sharded, replicated graph storage simulating the distributed graph engine.

Section VI: "a graph is partitioned into multiple shards for higher storage
capacity, and each shard is replicated onto multiple servers for higher
aggregate throughput."  :class:`ShardedGraphStore` reproduces that behaviour
at laptop scale: nodes are hash-partitioned into shards, each shard is owned
by one or more simulated servers, and every neighbor lookup is routed to a
replica (round-robin), with per-server request accounting so load balance can
be inspected and benchmarked.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.batch import NeighborBatch, SubgraphBatch, sequence_from
from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec


class HashPartitioner:
    """Deterministic hash partitioning of typed node ids into shards.

    Uses a splitmix64-style integer mix instead of Python's ``hash`` so the
    assignment is vectorizable, and stable across processes (``hash(str)``
    is salted per interpreter run).
    """

    def __init__(self, num_shards: int, seed: int = 17):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self._seed = seed

    def _type_salt(self, node_type: str) -> np.uint64:
        return np.uint64(zlib.crc32(node_type.encode("utf-8"))
                         ^ (self._seed * 0x9E3779B9 & 0xFFFFFFFF))

    def shard_of_batch(self, node_type: str,
                       node_ids: Sequence[int]) -> np.ndarray:
        """Vectorized shard assignment for an array of typed node ids."""
        ids = np.asarray(node_ids, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = (ids + self._type_salt(node_type)
                     + np.uint64(0x9E3779B97F4A7C15))
            mixed = (mixed ^ (mixed >> np.uint64(30))) \
                * np.uint64(0xBF58476D1CE4E5B9)
            mixed = (mixed ^ (mixed >> np.uint64(27))) \
                * np.uint64(0x94D049BB133111EB)
            mixed = mixed ^ (mixed >> np.uint64(31))
        return (mixed % np.uint64(self.num_shards)).astype(np.int64)

    def shard_of(self, node_type: str, node_id: int) -> int:
        """Return the shard owning ``(node_type, node_id)``."""
        return int(self.shard_of_batch(node_type, [int(node_id)])[0])

    def partition(self, node_type: str, num_nodes: int) -> Dict[int, np.ndarray]:
        """Partition all nodes of one type: ``{shard: node_ids}``."""
        shards = self.shard_of_batch(node_type, np.arange(num_nodes))
        return {int(shard): np.nonzero(shards == shard)[0].astype(np.int64)
                for shard in np.unique(shards)}


@dataclass
class ShardServerStats:
    """Request accounting for a single simulated graph server."""

    server_id: int
    shard_id: int
    requests: int = 0
    nodes_served: int = 0


class ShardedGraphStore:
    """Routes neighbor queries to shard replicas over a :class:`HeteroGraph`.

    The underlying graph is shared (this is a simulation, not a real cluster);
    what the store adds is partitioning metadata, replica routing and request
    accounting — enough to benchmark storage balance and aggregate throughput
    behaviour.
    """

    def __init__(self, graph: HeteroGraph, num_shards: int = 4,
                 replication_factor: int = 2, seed: int = 17):
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        self.graph = graph
        self.partitioner = HashPartitioner(num_shards, seed)
        self.num_shards = num_shards
        self.replication_factor = replication_factor
        self._servers: List[ShardServerStats] = []
        self._replicas: Dict[int, List[int]] = defaultdict(list)
        server_id = 0
        for shard in range(num_shards):
            for _ in range(replication_factor):
                self._servers.append(ShardServerStats(server_id, shard))
                self._replicas[shard].append(server_id)
                server_id += 1
        self._round_robin: Dict[int, int] = defaultdict(int)
        #: Optional multi-core engine; see :meth:`attach_parallel`.
        self._parallel = None
        # Precompute node->shard assignment sizes for storage accounting.
        self.shard_sizes: Dict[int, int] = defaultdict(int)
        for node_type, count in graph.num_nodes.items():
            shards = self.partitioner.shard_of_batch(node_type,
                                                     np.arange(count))
            for shard, size in zip(*np.unique(shards, return_counts=True)):
                self.shard_sizes[int(shard)] += int(size)

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    def route(self, node_type: str, node_id: int) -> int:
        """Pick the replica server that will serve this node's query."""
        shard = self.partitioner.shard_of(node_type, node_id)
        replicas = self._replicas[shard]
        index = self._round_robin[shard] % len(replicas)
        self._round_robin[shard] += 1
        return replicas[index]

    def route_batch(self, node_type: str, node_ids: Sequence[int],
                    count_nodes: bool = False) -> np.ndarray:
        """Round-robin replica assignment for a whole frontier at once.

        Returns the server id chosen for each node and records one request
        per node (plus one served node when ``count_nodes``).  Advances the
        same per-shard round-robin counters as :meth:`route`, so
        interleaving single and batched calls keeps accounting consistent.
        """
        nodes = sequence_from(node_ids)
        shards = self.partitioner.shard_of_batch(node_type, nodes)
        servers = np.empty(nodes.size, dtype=np.int64)
        for shard in np.unique(shards):
            members = np.nonzero(shards == shard)[0]
            replicas = self._replicas[int(shard)]
            offsets = (self._round_robin[int(shard)]
                       + np.arange(members.size)) % len(replicas)
            servers[members] = np.asarray(replicas)[offsets]
            self._round_robin[int(shard)] += int(members.size)
        for server, hits in zip(*np.unique(servers, return_counts=True)):
            stats = self._servers[int(server)]
            stats.requests += int(hits)
            if count_nodes:
                stats.nodes_served += int(hits)
        return servers

    def neighbors(self, node_type: str, node_id: int
                  ) -> List[Tuple[RelationSpec, np.ndarray, np.ndarray]]:
        """Neighbor lookup routed through a shard replica (with accounting)."""
        server_id = self.route(node_type, node_id)
        stats = self._servers[server_id]
        stats.requests += 1
        stats.nodes_served += 1
        return self.graph.neighbors(node_type, node_id)

    def sample_neighbors(self, spec: RelationSpec, node_id: int, k: int,
                         rng: Optional[np.random.Generator] = None,
                         weighted: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted neighbor sampling routed through a shard replica.

        Batch-of-one wrapper over :meth:`sample_neighbors_batch`; identical
        samples and accounting as the batched path under a fixed seed.
        """
        batch = self.sample_neighbors_batch(spec, [int(node_id)], k,
                                            rng=rng, weighted=weighted)
        return batch.row(0)

    def sample_neighbors_batch(self, spec: RelationSpec,
                               node_ids: Sequence[int], k: int,
                               rng: Optional[np.random.Generator] = None,
                               weighted: bool = True,
                               replace: bool = False) -> NeighborBatch:
        """Batched weighted sampling with per-replica request accounting.

        Routing is resolved for the whole frontier in one pass, then the
        shared underlying graph serves every row with one vectorized CSR
        sampling call (this is a simulation: shards add accounting, not
        separate storage).
        """
        self.route_batch(spec.src_type, node_ids)
        return self.graph.relation(spec).sample_neighbors_batch(
            node_ids, k, rng=rng, weighted=weighted, replace=replace)

    def attach_parallel(self, engine) -> "ShardedGraphStore":
        """Adopt a :class:`~repro.parallel.engine.ParallelEngine`.

        The engine must wrap this store's graph; ideally it is built with
        this store's partitioner (``ParallelEngine(graph,
        partitioner=store.partitioner, ...)``) so the engine's shard-keyed
        RNG streams align with the storage shards.  Once attached,
        :meth:`sample_subgraph_batch` calls that pass ``seed`` (and no
        ``rng``) fan each shard's draw out through the engine.
        """
        if engine.graph is not self.graph:
            raise ValueError("engine wraps a different graph than this store")
        self._parallel = engine
        return self

    def sample_subgraph_batch(self, ego_type: str, ego_ids: Sequence[int],
                              fanouts: Sequence[int],
                              rng: Optional[np.random.Generator] = None,
                              weighted: bool = True,
                              replace: bool = False,
                              seed: Optional[int] = None,
                              batch_id: int = 0) -> SubgraphBatch:
        """Batched multi-hop expansion with per-hop replica accounting.

        Every frontier node of every hop counts as one routed request,
        mirroring what a per-node expansion would have cost the cluster.

        Two sampling regimes share this entry point:

        * the sequential engine (default): draws come from ``rng`` exactly
          as :meth:`HeteroGraph.sample_subgraph_batch` consumes them;
        * the parallel engine (an attached
          :class:`~repro.parallel.engine.ParallelEngine`, ``seed`` given,
          no ``rng``): each shard's egos are drawn from a Philox stream
          keyed by ``(seed, shard, graph version, batch_id)`` — output is
          bit-identical whether the shards run serially or on the worker
          pool, regardless of scheduling order.
        """
        if self._parallel is not None and rng is None and seed is not None:
            batch = self._parallel.sample_subgraph_batch(
                ego_type, ego_ids, fanouts, seed=seed, batch_id=batch_id,
                weighted=weighted, replace=replace)
        else:
            batch = self.graph.sample_subgraph_batch(
                ego_type, ego_ids, fanouts, rng=rng, weighted=weighted,
                replace=replace)
        self.route_batch(ego_type, batch.ego_ids)
        for index in range(len(batch.layers) - 1):
            layer = batch.layers[index]
            dst_types = np.array(batch.layer_types(index))
            for node_type in np.unique(dst_types):
                self.route_batch(str(node_type),
                                 layer.node_ids[dst_types == node_type])
        return batch

    def apply_updates(self, update) -> "GraphDelta":  # noqa: F821 - doc type
        """Absorb a streaming :class:`~repro.graph.update.GraphUpdate`.

        Delegates the structural work to
        :meth:`HeteroGraph.apply_updates`, then extends the shard-size
        accounting for the nodes the update appended (the hash partitioner
        is stable, so existing nodes never move shards).
        """
        delta = self.graph.apply_updates(update)
        for node_type, ids in delta.added_nodes.items():
            shards = self.partitioner.shard_of_batch(node_type, ids)
            for shard, size in zip(*np.unique(shards, return_counts=True)):
                self.shard_sizes[int(shard)] += int(size)
        return delta

    def server_stats(self) -> List[ShardServerStats]:
        """Per-server request statistics."""
        return list(self._servers)

    def load_imbalance(self) -> float:
        """Max/mean request ratio across servers (1.0 = perfectly balanced)."""
        requests = np.array([s.requests for s in self._servers], dtype=np.float64)
        if requests.sum() == 0:
            return 1.0
        mean = requests.mean()
        if mean == 0:
            return 1.0
        return float(requests.max() / mean)

    def storage_imbalance(self) -> float:
        """Max/mean node-count ratio across shards."""
        sizes = np.array([self.shard_sizes.get(s, 0) for s in range(self.num_shards)],
                         dtype=np.float64)
        if sizes.sum() == 0:
            return 1.0
        return float(sizes.max() / sizes.mean())
