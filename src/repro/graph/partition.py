"""Sharded, replicated graph storage simulating the distributed graph engine.

Section VI: "a graph is partitioned into multiple shards for higher storage
capacity, and each shard is replicated onto multiple servers for higher
aggregate throughput."  :class:`ShardedGraphStore` reproduces that behaviour
at laptop scale: nodes are hash-partitioned into shards, each shard is owned
by one or more simulated servers, and every neighbor lookup is routed to a
replica (round-robin), with per-server request accounting so load balance can
be inspected and benchmarked.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.schema import RelationSpec


class HashPartitioner:
    """Deterministic hash partitioning of typed node ids into shards."""

    def __init__(self, num_shards: int, seed: int = 17):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self._seed = seed

    def shard_of(self, node_type: str, node_id: int) -> int:
        """Return the shard owning ``(node_type, node_id)``."""
        return (hash((node_type, int(node_id), self._seed)) & 0x7FFFFFFF) % self.num_shards

    def partition(self, node_type: str, num_nodes: int) -> Dict[int, np.ndarray]:
        """Partition all nodes of one type: ``{shard: node_ids}``."""
        assignment: Dict[int, List[int]] = defaultdict(list)
        for node_id in range(num_nodes):
            assignment[self.shard_of(node_type, node_id)].append(node_id)
        return {shard: np.asarray(ids, dtype=np.int64)
                for shard, ids in assignment.items()}


@dataclass
class ShardServerStats:
    """Request accounting for a single simulated graph server."""

    server_id: int
    shard_id: int
    requests: int = 0
    nodes_served: int = 0


class ShardedGraphStore:
    """Routes neighbor queries to shard replicas over a :class:`HeteroGraph`.

    The underlying graph is shared (this is a simulation, not a real cluster);
    what the store adds is partitioning metadata, replica routing and request
    accounting — enough to benchmark storage balance and aggregate throughput
    behaviour.
    """

    def __init__(self, graph: HeteroGraph, num_shards: int = 4,
                 replication_factor: int = 2, seed: int = 17):
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        self.graph = graph
        self.partitioner = HashPartitioner(num_shards, seed)
        self.num_shards = num_shards
        self.replication_factor = replication_factor
        self._servers: List[ShardServerStats] = []
        self._replicas: Dict[int, List[int]] = defaultdict(list)
        server_id = 0
        for shard in range(num_shards):
            for _ in range(replication_factor):
                self._servers.append(ShardServerStats(server_id, shard))
                self._replicas[shard].append(server_id)
                server_id += 1
        self._round_robin: Dict[int, int] = defaultdict(int)
        # Precompute node->shard assignment sizes for storage accounting.
        self.shard_sizes: Dict[int, int] = defaultdict(int)
        for node_type, count in graph.num_nodes.items():
            for node_id in range(count):
                self.shard_sizes[self.partitioner.shard_of(node_type, node_id)] += 1

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    def route(self, node_type: str, node_id: int) -> int:
        """Pick the replica server that will serve this node's query."""
        shard = self.partitioner.shard_of(node_type, node_id)
        replicas = self._replicas[shard]
        index = self._round_robin[shard] % len(replicas)
        self._round_robin[shard] += 1
        return replicas[index]

    def neighbors(self, node_type: str, node_id: int
                  ) -> List[Tuple[RelationSpec, np.ndarray, np.ndarray]]:
        """Neighbor lookup routed through a shard replica (with accounting)."""
        server_id = self.route(node_type, node_id)
        stats = self._servers[server_id]
        stats.requests += 1
        stats.nodes_served += 1
        return self.graph.neighbors(node_type, node_id)

    def sample_neighbors(self, spec: RelationSpec, node_id: int, k: int,
                         rng: Optional[np.random.Generator] = None,
                         weighted: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Weighted neighbor sampling routed through a shard replica."""
        server_id = self.route(spec.src_type, node_id)
        self._servers[server_id].requests += 1
        return self.graph.relation(spec).sample_neighbors(node_id, k, rng, weighted)

    def server_stats(self) -> List[ShardServerStats]:
        """Per-server request statistics."""
        return list(self._servers)

    def load_imbalance(self) -> float:
        """Max/mean request ratio across servers (1.0 = perfectly balanced)."""
        requests = np.array([s.requests for s in self._servers], dtype=np.float64)
        if requests.sum() == 0:
            return 1.0
        mean = requests.mean()
        if mean == 0:
            return 1.0
        return float(requests.max() / mean)

    def storage_imbalance(self) -> float:
        """Max/mean node-count ratio across shards."""
        sizes = np.array([self.shard_sizes.get(s, 0) for s in range(self.num_shards)],
                         dtype=np.float64)
        if sizes.sum() == 0:
            return 1.0
        return float(sizes.max() / sizes.mean())
