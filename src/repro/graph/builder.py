"""Graph builder: behavior logs -> heterogeneous retrieval graph.

This is the ODPS "graph generator" of the paper (Section VI), following the
edge-construction rules of Section II:

*Interaction edges* — for a click sequence ``s = (i1, ..., im)`` under user
``u``'s searched query ``q`` the builder creates

* a ``user -[search]-> query`` edge between ``u`` and ``q``,
* ``item -[session]-> item`` edges between adjacently clicked items,
* ``query -[query_click]-> item`` edges between ``q`` and every clicked item,
* ``user -[click]-> item`` edges between ``u`` and every clicked item.

*Similarity edges* — MinHash Jaccard similarity over title terms adds
``similarity`` edges between queries and items (and item-item), weighted by
the estimated similarity.  These help cold-start nodes.

All interaction edges are added in both directions so the CSR relations can be
traversed from either endpoint during sampling.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.graph.hetero_graph import HeteroGraph
from repro.graph.minhash import MinHasher
from repro.graph.schema import (
    EdgeType,
    GraphSchema,
    NodeType,
    RelationSpec,
    iter_session_edges,
    taobao_schema,
)


class GraphBuilder:
    """Incrementally accumulates sessions and emits a :class:`HeteroGraph`."""

    def __init__(self, feature_dim: int = 16,
                 schema: Optional[GraphSchema] = None):
        self.schema = schema if schema is not None else taobao_schema(feature_dim)
        self.feature_dim = feature_dim
        # Edge accumulators keyed by (src_type, edge_type, dst_type); values
        # are dicts (src, dst) -> accumulated weight so repeated interactions
        # strengthen the edge (click counts as weights).
        self._edge_weights: Dict[Tuple[str, str, str], Dict[Tuple[int, int], float]] = \
            defaultdict(lambda: defaultdict(float))
        self._node_features: Dict[str, Optional[np.ndarray]] = {
            t: None for t in self.schema.node_types
        }
        self._num_sessions = 0

    # ------------------------------------------------------------------ #
    # Node registration
    # ------------------------------------------------------------------ #
    def set_node_features(self, node_type: str, features: np.ndarray) -> None:
        """Provide the dense feature matrix for all nodes of ``node_type``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ValueError(
                f"features for {node_type!r} must be (n, {self.feature_dim})"
            )
        self._node_features[node_type] = features

    def num_nodes(self, node_type: str) -> int:
        """Number of nodes currently registered for ``node_type``."""
        features = self._node_features.get(node_type)
        return 0 if features is None else features.shape[0]

    # ------------------------------------------------------------------ #
    # Session ingestion (interaction edges)
    # ------------------------------------------------------------------ #
    def add_session(self, user_id: int, query_id: int,
                    clicked_items: Sequence[int], weight: float = 1.0) -> None:
        """Ingest one search session ``{u, q, (i1..im)}`` (Section II rules)."""
        if weight <= 0:
            raise ValueError("session weight must be positive")
        self._num_sessions += 1
        for src_type, edge_type, dst_type, src, dst in iter_session_edges(
                user_id, query_id, clicked_items):
            self._bump(src_type, edge_type, dst_type, src, dst, weight)

    def add_sessions(self, sessions: Iterable[Tuple[int, int, Sequence[int]]]) -> None:
        """Ingest an iterable of ``(user_id, query_id, clicked_items)`` tuples."""
        for user_id, query_id, clicked_items in sessions:
            self.add_session(user_id, query_id, clicked_items)

    def _bump(self, src_type: str, edge_type: str, dst_type: str,
              src: int, dst: int, weight: float) -> None:
        self._edge_weights[(src_type, edge_type, dst_type)][(src, dst)] += weight
        self._edge_weights[(dst_type, edge_type, src_type)][(dst, src)] += weight

    # ------------------------------------------------------------------ #
    # Similarity edges (MinHash)
    # ------------------------------------------------------------------ #
    def add_similarity_edges(self, query_terms: Mapping[int, Sequence[int]],
                             item_terms: Mapping[int, Sequence[int]],
                             threshold: float = 0.2,
                             hasher: Optional[MinHasher] = None) -> int:
        """Add query-item and item-item similarity edges from title terms.

        Returns the number of (undirected) similarity edges added.
        """
        hasher = hasher if hasher is not None else MinHasher()
        # Combine queries and items in one LSH pass.  Keys are offset so they
        # stay distinguishable: queries keep their id, items are offset.
        offset = (max(query_terms) + 1) if query_terms else 0
        corpora: Dict[int, Sequence[int]] = dict(query_terms)
        corpora.update({offset + item_id: terms for item_id, terms in item_terms.items()})
        added = 0
        for first, second, similarity in hasher.similarity_edges(corpora, threshold):
            first_is_query = first < offset
            second_is_query = second < offset
            if first_is_query and second_is_query:
                continue  # the paper only keeps query-item and item-item
            if first_is_query:
                self._bump(NodeType.QUERY, EdgeType.SIMILARITY, NodeType.ITEM,
                           first, second - offset, similarity)
            elif second_is_query:
                self._bump(NodeType.QUERY, EdgeType.SIMILARITY, NodeType.ITEM,
                           second, first - offset, similarity)
            else:
                self._bump(NodeType.ITEM, EdgeType.SIMILARITY, NodeType.ITEM,
                           first - offset, second - offset, similarity)
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # Generic edge injection (used by the MovieLens builder and tests)
    # ------------------------------------------------------------------ #
    def add_weighted_edges(self, src_type: str, edge_type: str, dst_type: str,
                           edges: Iterable[Tuple[int, int, float]],
                           symmetric: bool = True) -> None:
        """Add arbitrary weighted edges under a typed relation."""
        for src, dst, weight in edges:
            if symmetric:
                self._bump(src_type, edge_type, dst_type, src, dst, weight)
            else:
                self._edge_weights[(src_type, edge_type, dst_type)][(src, dst)] += weight

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def build(self) -> HeteroGraph:
        """Materialise the :class:`HeteroGraph` (CSR relations, finalized)."""
        graph = HeteroGraph(self.schema)
        for node_type in self.schema.node_types:
            features = self._node_features.get(node_type)
            if features is None:
                features = np.zeros((0, self.feature_dim))
            graph.add_nodes(node_type, features)
        for (src_type, edge_type, dst_type), weights in self._edge_weights.items():
            if not weights:
                continue
            pairs = np.array(list(weights.keys()), dtype=np.int64)
            values = np.array(list(weights.values()), dtype=np.float64)
            spec = RelationSpec(src_type, edge_type, dst_type)
            graph.add_edges(spec, pairs[:, 0], pairs[:, 1], values)
        graph.finalize()
        return graph

    @property
    def num_sessions(self) -> int:
        """Number of sessions ingested so far."""
        return self._num_sessions
