"""MinHash signatures and Jaccard similarity for similarity-based edges.

Section II of the paper: "we employ minHash to calculate Jaccard similarities
between queries and items and use the Jaccard similarities as weights to
establish similarity-based edges."  These edges matter for cold-start nodes
whose interaction edges are sparse.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Exact Jaccard similarity between two token sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    union = len(set_a | set_b)
    if union == 0:
        return 0.0
    return len(set_a & set_b) / union


class MinHasher:
    """MinHash signature generator with banded LSH candidate search.

    Parameters
    ----------
    num_perm:
        Number of hash permutations (signature length).
    num_bands:
        Number of LSH bands used by :meth:`candidate_pairs`; ``num_perm`` must
        be divisible by ``num_bands``.
    seed:
        Seed for the permutation coefficients, for reproducibility.
    """

    def __init__(self, num_perm: int = 64, num_bands: int = 16, seed: int = 7):
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        if num_perm % num_bands != 0:
            raise ValueError("num_perm must be divisible by num_bands")
        self.num_perm = num_perm
        self.num_bands = num_bands
        self.rows_per_band = num_perm // num_bands
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)

    def signature(self, tokens: Iterable) -> np.ndarray:
        """Compute the MinHash signature of a token set."""
        token_hashes = np.array(
            [hash(token) & _MAX_HASH for token in set(tokens)], dtype=np.uint64
        )
        if token_hashes.size == 0:
            return np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        # (num_perm, num_tokens) permuted hashes; take the min per permutation.
        permuted = (self._a[:, None] * token_hashes[None, :] + self._b[:, None]) \
            % _MERSENNE_PRIME % _MAX_HASH
        return permuted.min(axis=1)

    def estimate_similarity(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate Jaccard similarity from two signatures."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures must have the same length")
        return float(np.mean(sig_a == sig_b))

    def candidate_pairs(self, signatures: Dict[int, np.ndarray]) -> Set[Tuple[int, int]]:
        """Banded-LSH candidate pairs among ``{key: signature}``.

        Two keys become a candidate pair if they agree on all rows of at
        least one band — the standard LSH trick that avoids the O(n^2)
        all-pairs comparison on large vocabularies.
        """
        candidates: Set[Tuple[int, int]] = set()
        for band in range(self.num_bands):
            start = band * self.rows_per_band
            stop = start + self.rows_per_band
            buckets: Dict[bytes, List[int]] = {}
            for key, sig in signatures.items():
                bucket_key = sig[start:stop].tobytes()
                buckets.setdefault(bucket_key, []).append(key)
            for members in buckets.values():
                if len(members) < 2:
                    continue
                members = sorted(members)
                for i, first in enumerate(members):
                    for second in members[i + 1:]:
                        candidates.add((first, second))
        return candidates

    def similarity_edges(self, corpora: Dict[int, Sequence],
                         threshold: float = 0.2) -> List[Tuple[int, int, float]]:
        """Return ``(key_a, key_b, similarity)`` edges above ``threshold``.

        Uses banded LSH to find candidates, then the signature-based Jaccard
        estimate as the edge weight, mirroring the paper's construction of
        similarity-based edges.
        """
        signatures = {key: self.signature(tokens) for key, tokens in corpora.items()}
        edges = []
        for first, second in self.candidate_pairs(signatures):
            similarity = self.estimate_similarity(signatures[first], signatures[second])
            if similarity >= threshold:
                edges.append((first, second, similarity))
        return edges
