"""Deterministic fault injection: seeded chaos for the self-healing layers.

The paper's system serves heavy online traffic, where the failures that
matter are partial ones — a sampling worker dying mid-batch, an index
rebuild failing halfway, a connection stalling — not clean shutdowns.  This
package is the harness that *injects* those failures deterministically so
the recovery paths (worker-pool supervision, failure-atomic refresh,
crash-safe ingest, client retry/breaker) can be pinned by tests the same
way every other subsystem is: identical seeds replay identical fault
sequences, and identical recovery accounting.

Usage::

    from repro.faults import FaultPlan, arm, disarm

    plan = FaultPlan({"worker.crash": {"at": [2]}}, seed=7)
    with plan.armed():
        ...   # the 3rd worker-pool submit crashes its worker

Production code consults injection points through :func:`fault_point` /
:func:`active_plan`; with no plan armed both are a single ``None`` check,
so the hooks cost nothing on the hot path.
"""

from repro.faults.plan import (
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    disarm,
    fault_point,
)

__all__ = [
    "KNOWN_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "arm",
    "disarm",
    "fault_point",
]
