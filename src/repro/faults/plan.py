"""The :class:`FaultPlan`: named, seeded, replayable injection points.

Every injection point is a *site* registered by name in :data:`KNOWN_SITES`
(``worker.crash``, ``refresh.ann_fail``, ``net.stall``, ``net.drop``,
``ingest.crash``).  A plan maps sites to :class:`FaultRule` decisions —
an explicit occurrence schedule (``at``), a per-occurrence probability, or
both — and decides each occurrence from a Philox stream keyed by
``(seed, site, occurrence_index)``, the same counter-based discipline as
:func:`repro.parallel.rng.rng_stream`.  The decision therefore depends only
on the key, never on thread scheduling or on how many *other* sites fired
in between, so a fixed seed replays the identical fault sequence.

The plan also keeps the recovery ledger: :attr:`FaultPlan.fired` records
``(site, occurrence)`` in firing order and :meth:`FaultPlan.summary`
aggregates per-site counts — the "identical recovery accounting" half of
the replay pin.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

#: Injection-point catalog: site name -> where in the stack it fires.
KNOWN_SITES: Dict[str, str] = {
    "worker.crash": "WorkerPool.submit poisons the task; the worker process "
                    "hard-exits before running it",
    "refresh.ann_fail": "OnlineServer.refresh fails the side-built ANN/"
                        "postings stage before the swap commits",
    "net.stall": "ServingDaemon delays one framed response by the plan's "
                 "stall_ms",
    "net.drop": "ServingDaemon closes the connection instead of answering "
                "one frame",
    "ingest.crash": "Pipeline.ingest dies after journaling a micro-batch, "
                    "before applying it",
}


class InjectedFault(RuntimeError):
    """An error raised *by* the harness at an armed injection point."""


@dataclass(frozen=True)
class FaultRule:
    """When one site fires: an occurrence schedule and/or a probability."""

    #: Per-occurrence firing probability (decided by the site's Philox
    #: stream); ``0.0`` means schedule-only.
    probability: float = 0.0
    #: Explicit 0-based occurrence indices that always fire.
    at: Tuple[int, ...] = ()
    #: Cap on total fires for this site (``None`` = unlimited).
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if any(int(index) < 0 for index in self.at):
            raise ValueError(f"at indices must be non-negative, got {self.at}")
        object.__setattr__(self, "at", tuple(int(i) for i in self.at))
        if self.max_fires is not None and self.max_fires <= 0:
            raise ValueError("max_fires must be positive (or None)")
        if self.probability == 0.0 and not self.at:
            raise ValueError(
                "a fault rule needs a schedule ('at') or a probability")


def _rule_from(value: Union[FaultRule, Mapping[str, Any]]) -> FaultRule:
    """Coerce a mapping (the spec/CLI form) into a :class:`FaultRule`."""
    if isinstance(value, FaultRule):
        return value
    unknown = set(value) - {"probability", "at", "max_fires"}
    if unknown:
        raise ValueError(
            f"unknown fault-rule keys {sorted(unknown)}; expected "
            f"'probability', 'at', 'max_fires'")
    return FaultRule(probability=float(value.get("probability", 0.0)),
                     at=tuple(value.get("at", ())),
                     max_fires=value.get("max_fires"))


def _decision_stream(seed: int, site: str, index: int) -> np.random.Generator:
    """The Philox stream deciding one occurrence of one site."""
    sequence = np.random.SeedSequence(
        entropy=(int(seed) & 0xFFFFFFFFFFFFFFFF,
                 zlib.crc32(site.encode("utf-8")), int(index)))
    return np.random.Generator(np.random.Philox(seed=sequence))


class FaultPlan:
    """A seeded set of fault rules plus the ledger of what actually fired.

    ``rules`` maps site names (from :data:`KNOWN_SITES`) to
    :class:`FaultRule` objects or their mapping form.  The plan is
    stateful: each :meth:`fires` call consumes one occurrence of its site,
    so a plan instance represents *one run* — build a fresh plan (same
    arguments) to replay it.
    """

    def __init__(self, rules: Mapping[str, Union[FaultRule, Mapping[str, Any]]],
                 seed: int = 0, stall_ms: float = 20.0):
        unknown = set(rules) - set(KNOWN_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault sites {sorted(unknown)}; known sites: "
                f"{sorted(KNOWN_SITES)}")
        if stall_ms < 0:
            raise ValueError("stall_ms must be non-negative")
        self.rules: Dict[str, FaultRule] = {
            site: _rule_from(rule) for site, rule in rules.items()}
        self.seed = int(seed)
        #: Injected delay (milliseconds) for ``net.stall`` fires.
        self.stall_ms = float(stall_ms)
        self._occurrences: Dict[str, int] = {site: 0 for site in self.rules}
        self._fire_counts: Dict[str, int] = {site: 0 for site in self.rules}
        #: The ledger: ``(site, occurrence_index)`` in firing order.
        self.fired: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    # The decision point
    # ------------------------------------------------------------------ #
    def fires(self, site: str) -> bool:
        """Consume one occurrence of ``site``; True when the fault fires."""
        rule = self.rules.get(site)
        if rule is None:
            return False
        index = self._occurrences[site]
        self._occurrences[site] = index + 1
        if rule.max_fires is not None \
                and self._fire_counts[site] >= rule.max_fires:
            return False
        fire = index in rule.at
        if not fire and rule.probability > 0.0:
            fire = bool(_decision_stream(self.seed, site, index).random()
                        < rule.probability)
        if fire:
            self._fire_counts[site] += 1
            self.fired.append((site, index))
        return fire

    def raise_if_fires(self, site: str) -> None:
        """Raise :class:`InjectedFault` when ``site`` fires this occurrence."""
        if self.fires(site):
            raise InjectedFault(f"injected fault at {site} "
                                f"(occurrence {self._occurrences[site] - 1})")

    # ------------------------------------------------------------------ #
    # Recovery accounting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-site accounting: occurrences seen and faults fired."""
        return {site: {"occurrences": self._occurrences[site],
                       "fired": self._fire_counts[site]}
                for site in sorted(self.rules)}

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def armed(self) -> "_ArmedPlan":
        """Context manager that arms this plan globally for the block."""
        return _ArmedPlan(self)

    # ------------------------------------------------------------------ #
    # Wire form (CLI --fault-plan, FaultSpec)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; inverse of :meth:`from_dict`."""
        points: Dict[str, Any] = {}
        for site, rule in self.rules.items():
            entry: Dict[str, Any] = {}
            if rule.probability:
                entry["probability"] = rule.probability
            if rule.at:
                entry["at"] = list(rule.at)
            if rule.max_fires is not None:
                entry["max_fires"] = rule.max_fires
            points[site] = entry
        return {"points": points, "seed": self.seed, "stall_ms": self.stall_ms}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from its :meth:`to_dict` / CLI JSON form.

        Accepts both the wrapped form (``{"points": {...}, "seed": ...}``)
        and the bare site->rule mapping the CLI takes inline.
        """
        if "points" in payload:
            return cls(payload["points"], seed=int(payload.get("seed", 0)),
                       stall_ms=float(payload.get("stall_ms", 20.0)))
        return cls(payload)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a CLI ``--fault-plan`` argument (inline JSON)."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        return cls.from_dict(payload)


class _ArmedPlan:
    """``with plan.armed():`` — arm on entry, restore the old plan on exit."""

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = _STATE["active"]
        _STATE["active"] = self._plan
        return self._plan

    def __exit__(self, *exc_info) -> None:
        _STATE["active"] = self._previous


# One process-wide armed plan; a dict cell so closures and the context
# manager share the same mutable slot without ``global`` juggling.
_STATE: Dict[str, Optional[FaultPlan]] = {"active": None}


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; returns it for chaining."""
    _STATE["active"] = plan
    return plan


def disarm() -> None:
    """Disarm whatever plan is active (a no-op when none is)."""
    _STATE["active"] = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None`` — the zero-overhead unarmed check."""
    return _STATE["active"]


def fault_point(site: str) -> bool:
    """True when an armed plan fires ``site`` for this occurrence.

    The unarmed path is one dict read and a ``None`` compare — cheap
    enough to leave in production code paths permanently.
    """
    plan = _STATE["active"]
    if plan is None:
        return False
    return plan.fires(site)
