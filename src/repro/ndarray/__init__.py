"""A small reverse-mode automatic differentiation engine over numpy arrays.

This package is the numerical substrate for every model in the Zoomer
reproduction (the Zoomer model itself and all baselines).  It provides a
:class:`~repro.ndarray.tensor.Tensor` type supporting the operations GNN
recommenders need: dense matmul, broadcasting elementwise arithmetic,
reductions, embedding gather, softmax/log-softmax, concatenation and
nonlinearities.

The engine intentionally mirrors the shape of familiar frameworks (PyTorch /
TensorFlow eager) so that model code in :mod:`repro.core` and
:mod:`repro.baselines` reads naturally, while remaining pure numpy so it runs
anywhere.
"""

from repro.ndarray.tensor import Tensor, no_grad, is_grad_enabled
from repro.ndarray import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
