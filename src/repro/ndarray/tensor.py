"""Reverse-mode autodiff tensor built on top of numpy.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamically-built computation graph.  Calling
:meth:`Tensor.backward` on a scalar result propagates gradients back to every
tensor created with ``requires_grad=True``.

Only the operations needed by the Zoomer reproduction are implemented, but
they are implemented carefully: broadcasting is handled by summing gradients
over broadcast dimensions, embedding ``gather`` accumulates gradients with
``np.add.at`` so repeated indices are handled correctly, and numerically
sensitive ops (softmax, log, sigmoid) use stable formulations.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float, np.floating, np.integer]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used during evaluation and online serving where only the forward pass is
    needed; skipping graph construction roughly halves memory traffic.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that its shape matches ``shape``.

    Numpy broadcasting can expand dimensions during the forward pass; the
    corresponding backward pass must sum gradients over those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if is_grad_enabled() else ()
        self._backward = _backward if is_grad_enabled() else None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and is_grad_enabled():
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological ordering of the reachable graph.
        ordering: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordering.append(node)

        visit(self)

        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparison operators (no gradients; return plain numpy arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Matrix operations
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other_t.data
        data = a @ b

        def backward(grad: np.ndarray) -> None:
            # Four shape regimes: vector @ vector, vector @ matrix,
            # (batched) matrix @ vector, and (batched) matrix @ matrix.
            if self.requires_grad:
                if b.ndim == 1 and a.ndim == 1:
                    self._accumulate(grad * b)
                elif b.ndim == 1:
                    self._accumulate(np.expand_dims(grad, -1) * b)
                elif a.ndim == 1:
                    self._accumulate(grad @ np.swapaxes(b, -1, -2))
                else:
                    self._accumulate(grad @ np.swapaxes(b, -1, -2))
            if other_t.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    other_t._accumulate(grad * a)
                elif a.ndim == 1:
                    # (k,) @ (..., k, m) -> (..., m); d_b = outer(a, grad).
                    other_t._accumulate(np.einsum("k,...m->...km", a, grad))
                elif b.ndim == 1:
                    # (..., n, k) @ (k,) -> (..., n); d_b = sum over batch/rows.
                    contribution = a * np.expand_dims(grad, -1)
                    other_t._accumulate(
                        contribution.reshape(-1, a.shape[-1]).sum(axis=0))
                else:
                    other_t._accumulate(np.swapaxes(a, -1, -2) @ grad)

        return Tensor._make(data, (self, other_t), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
            data = self.data.T
        else:
            axes_tuple = tuple(axes)
            data = np.transpose(self.data, axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if axes_tuple is None:
                    self._accumulate(grad.T)
                else:
                    inverse = np.argsort(axes_tuple)
                    self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis] \
            if isinstance(axis, int) else int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (self.data == d).astype(self.data.dtype)
            # Split gradient equally among ties to keep it well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self, eps: float = 1e-12) -> "Tensor":
        clipped = np.maximum(self.data, eps)
        data = np.log(clipped)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / clipped)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0, 1.0, negative_slope)
                self._accumulate(grad * slope)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out = np.empty_like(self.data)
        positive = self.data >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-self.data[positive]))
        exp_x = np.exp(self.data[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out * (1.0 - out))

        return Tensor._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dot = (grad * out).sum(axis=axis, keepdims=True)
                self._accumulate(out * (grad - dot))

        return Tensor._make(out, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_sum
        softmax = np.exp(out)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                total = grad.sum(axis=axis, keepdims=True)
                self._accumulate(grad - softmax * total)

        return Tensor._make(out, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Indexing / gathering
    # ------------------------------------------------------------------ #
    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row-lookup (embedding gather); repeated indices accumulate grads."""
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape combinators
    # ------------------------------------------------------------------ #
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor of ``shape``."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    """Return a one-filled tensor of ``shape``."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)
