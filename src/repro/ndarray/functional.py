"""Functional helpers on top of :class:`repro.ndarray.Tensor`.

These are convenience wrappers used throughout the model code; keeping them
here keeps the Tensor class focused on primitive differentiable operations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ndarray.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU, the nonlinearity used by GAT-style attention scores."""
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (numerically stable)."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    return x.log_softmax(axis=axis)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    return Tensor.concat(tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    return Tensor.stack(tensors, axis=axis)


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot product of two ``(n, d)`` tensors -> ``(n,)`` tensor.

    This is the twin-tower scoring operation ``pctr = <q+u, i>`` used by the
    DSSM head in the paper (Fig. 5, Stage 2).
    """
    return (a * b).sum(axis=-1)


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Row-wise cosine similarity between two ``(n, d)`` tensors."""
    num = (a * b).sum(axis=-1)
    denom = ((a * a).sum(axis=-1) ** 0.5) * ((b * b).sum(axis=-1) ** 0.5) + eps
    return num / denom


def mean_pool(x: Tensor, axis: int = 0) -> Tensor:
    """Mean pooling, the aggregation used by plain GCN/GraphSAGE baselines."""
    return x.mean(axis=axis)


def binary_cross_entropy(probs: Tensor, targets: np.ndarray,
                         eps: float = 1e-7) -> Tensor:
    """Binary cross entropy between predicted probabilities and 0/1 targets."""
    targets = np.asarray(targets, dtype=np.float64)
    probs = probs.clip(eps, 1.0 - eps)
    loss = -(Tensor(targets) * probs.log() + Tensor(1.0 - targets) * (1.0 - probs).log())
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """BCE computed from raw logits (numerically stable)."""
    return binary_cross_entropy(logits.sigmoid(), targets)


def focal_cross_entropy(probs: Tensor, targets: np.ndarray, gamma: float = 2.0,
                        eps: float = 1e-7) -> Tensor:
    """Focal cross entropy loss.

    The paper trains Zoomer with a "focal cross-entropy loss" with focal
    weight 2 (Section VII-A).  Focal loss down-weights well-classified
    examples so the model concentrates on hard ones.
    """
    targets = np.asarray(targets, dtype=np.float64)
    probs = probs.clip(eps, 1.0 - eps)
    t = Tensor(targets)
    pt = t * probs + (Tensor(1.0) - t) * (Tensor(1.0) - probs)
    weight = (Tensor(1.0) - pt) ** gamma
    loss = -(weight * pt.log())
    return loss.mean()


def l2_regularization(params: Sequence[Tensor], weight: float) -> Tensor:
    """Sum of squared parameter values scaled by ``weight``.

    The paper uses a small "regulation loss weight" (1e-6 for Zoomer,
    5e-7 for MCCF/FGNN).
    """
    total: Optional[Tensor] = None
    for param in params:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight
