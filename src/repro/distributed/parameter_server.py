"""Simulated worker / parameter-server training (paper Section VI).

Zoomer "partitions and stores the model parameters and the embeddings on
multiple parameter servers ... the workers retrieve and update parameters
asynchronously to improve training efficiency on large models".  The classes
below reproduce that protocol functionally: parameters are hash-partitioned
across :class:`ParameterServer` shards, workers pull (possibly stale) values
before computing gradients and push updates back, and the cluster accounts
for traffic, update conflicts and staleness so the distributed behaviour can
be unit-tested and benchmarked without real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.logs import ImpressionRecord
from repro.models.base import RetrievalModel
from repro.ndarray import functional as F
from repro.training.dataloader import ImpressionDataLoader


@dataclass
class PushPullStats:
    """Traffic accounting for one parameter server."""

    pulls: int = 0
    pushes: int = 0
    bytes_pulled: int = 0
    bytes_pushed: int = 0
    updates_applied: int = 0


class ParameterServer:
    """One parameter-server shard: owns a subset of named parameters."""

    def __init__(self, server_id: int, learning_rate: float = 0.05):
        self.server_id = server_id
        self.learning_rate = learning_rate
        self._store: Dict[str, np.ndarray] = {}
        self._versions: Dict[str, int] = {}
        self.stats = PushPullStats()

    def register(self, name: str, value: np.ndarray) -> None:
        """Host a parameter on this server."""
        self._store[name] = np.array(value, dtype=np.float64, copy=True)
        self._versions[name] = 0

    def owns(self, name: str) -> bool:
        return name in self._store

    def pull(self, name: str) -> Tuple[np.ndarray, int]:
        """Return the current value and version of a parameter."""
        value = self._store[name]
        self.stats.pulls += 1
        self.stats.bytes_pulled += value.nbytes
        return value.copy(), self._versions[name]

    def push(self, name: str, gradient: np.ndarray) -> int:
        """Apply an SGD update with the pushed gradient; returns new version."""
        value = self._store[name]
        if gradient.shape != value.shape:
            raise ValueError(f"gradient shape mismatch for {name}: "
                             f"{gradient.shape} vs {value.shape}")
        value -= self.learning_rate * gradient
        self._versions[name] += 1
        self.stats.pushes += 1
        self.stats.bytes_pushed += gradient.nbytes
        self.stats.updates_applied += 1
        return self._versions[name]


class ParameterServerCluster:
    """Hash-partitions named parameters across several servers."""

    def __init__(self, num_servers: int = 4, learning_rate: float = 0.05,
                 seed: int = 5):
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        self.servers = [ParameterServer(i, learning_rate)
                        for i in range(num_servers)]
        self._seed = seed
        self._placement: Dict[str, int] = {}

    def register_state(self, state: Dict[str, np.ndarray]) -> None:
        """Place every parameter of a model state dict on a server."""
        for name, value in state.items():
            server_index = (hash((name, self._seed)) & 0x7FFFFFFF) % len(self.servers)
            self._placement[name] = server_index
            self.servers[server_index].register(name, value)

    def server_for(self, name: str) -> ParameterServer:
        return self.servers[self._placement[name]]

    def pull_state(self, names: Optional[Sequence[str]] = None
                   ) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """Pull parameter values (and versions) for the requested names."""
        names = list(names) if names is not None else list(self._placement)
        values: Dict[str, np.ndarray] = {}
        versions: Dict[str, int] = {}
        for name in names:
            value, version = self.server_for(name).pull(name)
            values[name] = value
            versions[name] = version
        return values, versions

    def push_gradients(self, gradients: Dict[str, np.ndarray]) -> None:
        """Push a gradient dict; each server applies its shard's updates."""
        for name, gradient in gradients.items():
            self.server_for(name).push(name, gradient)

    def placement_counts(self) -> List[int]:
        """Number of parameters hosted per server (load-balance check)."""
        counts = [0] * len(self.servers)
        for server_index in self._placement.values():
            counts[server_index] += 1
        return counts

    def total_traffic_bytes(self) -> int:
        return sum(s.stats.bytes_pulled + s.stats.bytes_pushed
                   for s in self.servers)


class AsyncTrainingSimulator:
    """Drives simulated asynchronous workers training one model via the PS.

    Each logical worker pulls the parameters, computes gradients on its own
    mini-batch and pushes them back.  Workers take turns in a round-robin
    schedule but pull only every ``staleness`` steps, so pushes in between are
    applied to parameters the worker has not yet seen — the essential
    asynchrony of the paper's training architecture.  Staleness events are
    counted so its effect can be measured.
    """

    def __init__(self, model: RetrievalModel, cluster: ParameterServerCluster,
                 num_workers: int = 4, staleness: int = 2, seed: int = 0):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if staleness <= 0:
            raise ValueError("staleness must be positive")
        self.model = model
        self.cluster = cluster
        self.num_workers = num_workers
        self.staleness = staleness
        self._rng = np.random.default_rng(seed)
        self.stale_pulls = 0
        self.total_steps = 0
        cluster.register_state(model.state_dict())
        self._worker_versions: List[Dict[str, int]] = [dict() for _ in range(num_workers)]

    def run(self, examples: Sequence[ImpressionRecord], batch_size: int = 64,
            steps: int = 10) -> List[float]:
        """Run ``steps`` asynchronous updates; returns the per-step losses."""
        loader = ImpressionDataLoader(examples, batch_size=batch_size,
                                      seed=int(self._rng.integers(1 << 30)))
        batches = list(loader.epoch())
        if not batches:
            return []
        losses: List[float] = []
        for step in range(steps):
            worker = step % self.num_workers
            batch = batches[step % len(batches)]
            # Pull (possibly stale) parameters into the local model.
            if step % self.staleness == 0 or not self._worker_versions[worker]:
                values, versions = self.cluster.pull_state()
                self.model.load_state_dict(values, strict=False)
                self._worker_versions[worker] = versions
            else:
                # Re-using previously pulled parameters: count how many have
                # advanced on the servers since then (the staleness measure).
                _, current = self.cluster.pull_state()
                stale = sum(1 for name, version in current.items()
                            if version > self._worker_versions[worker].get(name, 0))
                self.stale_pulls += int(stale > 0)
            # Compute gradients locally.
            self.model.zero_grad()
            probabilities = self.model.forward_batch(batch.user_ids,
                                                     batch.query_ids,
                                                     batch.item_ids)
            loss = F.binary_cross_entropy(probabilities, batch.labels)
            loss.backward()
            gradients = {name: param.grad for name, param
                         in self.model.named_parameters()
                         if param.grad is not None}
            self.cluster.push_gradients(gradients)
            losses.append(float(loss.item()))
            self.total_steps += 1
        # Leave the model holding the final server-side parameters.
        values, _ = self.cluster.pull_state()
        self.model.load_state_dict(values, strict=False)
        return losses
