"""Asynchronous IO/compute pipeline model (paper Section VI).

Training a batch involves three stages: reading the sampled subgraphs,
reading the embeddings from the parameter servers, and the training
computation.  Zoomer "overlaps the three stages ... in a fully asynchronous
pipeline to avoid IO bottleneck".  :class:`AsyncPipeline` computes the total
wall-clock of a run with and without overlap so the benefit can be quantified
and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage with a per-batch duration (seconds)."""

    name: str
    seconds_per_batch: float

    def __post_init__(self):
        if self.seconds_per_batch < 0:
            raise ValueError("stage duration must be non-negative")


class AsyncPipeline:
    """Three-stage (or N-stage) pipeline overlap model."""

    def __init__(self, stages: Sequence[PipelineStage]):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)

    @classmethod
    def default_training_pipeline(cls, subgraph_io: float, embedding_io: float,
                                  compute: float) -> "AsyncPipeline":
        """The paper's three training stages."""
        return cls([
            PipelineStage("read_subgraph", subgraph_io),
            PipelineStage("read_embeddings", embedding_io),
            PipelineStage("compute", compute),
        ])

    def sequential_time(self, num_batches: int) -> float:
        """Total time when stages run back-to-back for every batch."""
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        per_batch = sum(stage.seconds_per_batch for stage in self.stages)
        return per_batch * num_batches

    def pipelined_time(self, num_batches: int) -> float:
        """Total time with full overlap.

        The classic pipeline bound: fill time (one pass through all stages)
        plus (num_batches - 1) times the bottleneck stage.
        """
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        if num_batches == 0:
            return 0.0
        fill = sum(stage.seconds_per_batch for stage in self.stages)
        bottleneck = max(stage.seconds_per_batch for stage in self.stages)
        return fill + bottleneck * (num_batches - 1)

    def speedup(self, num_batches: int) -> float:
        """Sequential / pipelined time ratio."""
        pipelined = self.pipelined_time(num_batches)
        if pipelined == 0:
            return 1.0
        return self.sequential_time(num_batches) / pipelined

    def throughput(self, num_batches: int) -> float:
        """Batches per second under full overlap."""
        pipelined = self.pipelined_time(num_batches)
        if pipelined == 0:
            return 0.0
        return num_batches / pipelined

    def bottleneck(self) -> PipelineStage:
        """The stage that limits pipelined throughput."""
        return max(self.stages, key=lambda stage: stage.seconds_per_batch)

    def utilisation(self, num_batches: int) -> Dict[str, float]:
        """Fraction of the pipelined wall-clock each stage is busy."""
        total = self.pipelined_time(num_batches)
        if total == 0:
            return {stage.name: 0.0 for stage in self.stages}
        return {stage.name: stage.seconds_per_batch * num_batches / total
                for stage in self.stages}
