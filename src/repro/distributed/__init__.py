"""Distributed-training simulation (the XDL-like substrate of the paper).

The paper trains with a worker / parameter-server architecture (1000 workers,
40 PS), asynchronous sparse updates, and a fully asynchronous three-stage IO
pipeline (read subgraphs, read embeddings, compute).  This package provides
laptop-scale simulations of those mechanisms:

* :class:`~repro.distributed.parameter_server.ParameterServerCluster` — hash
  partitions model parameters across simulated servers, serves pulls and
  applies pushed gradients, and accounts for traffic and staleness.
* :class:`~repro.distributed.parameter_server.AsyncTrainingSimulator` — drives
  several simulated workers training one model through the PS cluster with
  stale pulls, reproducing the asynchronous update semantics.
* :class:`~repro.distributed.pipeline.AsyncPipeline` — models the overlap of
  the three IO/compute stages and quantifies the speed-up of full overlap.
* :class:`~repro.distributed.cost.GNNCostModel` — analytic memory / time model
  of recursive neighborhood expansion, calibrated by measurement; drives the
  Fig. 4(a) and Fig. 10 benches.
"""

from repro.distributed.parameter_server import (
    ParameterServer,
    ParameterServerCluster,
    AsyncTrainingSimulator,
)
from repro.distributed.pipeline import AsyncPipeline, PipelineStage
from repro.distributed.cost import GNNCostModel, IterationCost

__all__ = [
    "ParameterServer",
    "ParameterServerCluster",
    "AsyncTrainingSimulator",
    "AsyncPipeline",
    "PipelineStage",
    "GNNCostModel",
    "IterationCost",
]
