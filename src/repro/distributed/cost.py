"""Training-cost model for recursive neighborhood expansion.

The paper's Fig. 4(a) motivates ROI sampling by showing that memory grows
(roughly exponentially in the number of layers) and training speed drops as
the number of sampled neighbors per node increases.  :class:`GNNCostModel`
captures that relationship analytically — cost per example is dominated by
the size of the sampled neighborhood tree, ``sum_l prod_{h<=l} fanout_h`` —
and can be calibrated against measured iteration times so the Fig. 4(a) and
Fig. 10 benches report both measured (small-scale) and modelled
(extrapolated) numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.base import RetrievalModel
from repro.ndarray import functional as F
from repro.training.dataloader import Batch


@dataclass
class IterationCost:
    """Cost of a single training iteration."""

    sampled_nodes: float          # neighborhood-tree nodes per example
    memory_bytes: float           # activation + embedding bytes per example
    seconds: float                # wall-clock per iteration
    iterations_per_second: float  # convenience inverse

    def as_row(self) -> Dict[str, float]:
        return {
            "sampled_nodes": round(self.sampled_nodes, 1),
            "memory_mb": round(self.memory_bytes / 1e6, 3),
            "seconds_per_iter": round(self.seconds, 4),
            "iters_per_second": round(self.iterations_per_second, 3),
        }


class GNNCostModel:
    """Analytic + calibrated cost model of K-layer sampled GNN training."""

    def __init__(self, hidden_dim: int = 32, bytes_per_value: int = 8,
                 overhead_per_node_seconds: float = 2e-5,
                 base_seconds_per_iteration: float = 5e-3):
        self.hidden_dim = hidden_dim
        self.bytes_per_value = bytes_per_value
        self.overhead_per_node_seconds = overhead_per_node_seconds
        self.base_seconds_per_iteration = base_seconds_per_iteration

    # ------------------------------------------------------------------ #
    # Analytic model
    # ------------------------------------------------------------------ #
    def sampled_nodes_per_example(self, fanouts: Sequence[int],
                                  egos_per_example: int = 2) -> float:
        """Nodes touched per example: the recursive expansion tree size."""
        total = 1.0
        layer_width = 1.0
        for fanout in fanouts:
            layer_width *= fanout
            total += layer_width
        return total * egos_per_example

    def memory_per_example(self, fanouts: Sequence[int],
                           egos_per_example: int = 2) -> float:
        """Activation + embedding bytes needed per example."""
        nodes = self.sampled_nodes_per_example(fanouts, egos_per_example)
        # Forward activations (slots + projected vector) plus gradients.
        values_per_node = self.hidden_dim * 4
        return nodes * values_per_node * self.bytes_per_value

    def predict(self, fanouts: Sequence[int], batch_size: int,
                egos_per_example: int = 2) -> IterationCost:
        """Predict the cost of one training iteration."""
        nodes = self.sampled_nodes_per_example(fanouts, egos_per_example)
        memory = self.memory_per_example(fanouts, egos_per_example) * batch_size
        seconds = (self.base_seconds_per_iteration
                   + nodes * batch_size * self.overhead_per_node_seconds)
        return IterationCost(
            sampled_nodes=nodes,
            memory_bytes=memory,
            seconds=seconds,
            iterations_per_second=1.0 / seconds if seconds > 0 else float("inf"),
        )

    # ------------------------------------------------------------------ #
    # Calibration / measurement
    # ------------------------------------------------------------------ #
    def measure(self, model: RetrievalModel, batch: Batch,
                repeats: int = 1) -> IterationCost:
        """Measure an actual forward+backward iteration of ``model``."""
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        durations = []
        for _ in range(repeats):
            model.zero_grad()
            start = time.perf_counter()
            probabilities = model.forward_batch(batch.user_ids, batch.query_ids,
                                                batch.item_ids)
            loss = F.binary_cross_entropy(probabilities, batch.labels)
            loss.backward()
            durations.append(time.perf_counter() - start)
        seconds = float(np.median(durations))
        fanouts = getattr(model, "fanouts", None)
        if fanouts is None:
            config = getattr(model, "config", None)
            fanouts = getattr(config, "fanouts", (10, 5)) if config else (10, 5)
        nodes = self.sampled_nodes_per_example(fanouts)
        memory = self.memory_per_example(fanouts) * len(batch)
        return IterationCost(
            sampled_nodes=nodes,
            memory_bytes=memory,
            seconds=seconds,
            iterations_per_second=1.0 / seconds if seconds > 0 else float("inf"),
        )

    def calibrate(self, measured: IterationCost, fanouts: Sequence[int],
                  batch_size: int) -> None:
        """Fit the per-node overhead so predictions match a measurement."""
        nodes = self.sampled_nodes_per_example(fanouts)
        denominator = nodes * batch_size
        if denominator <= 0:
            return
        adjusted = (measured.seconds - self.base_seconds_per_iteration) / denominator
        self.overhead_per_node_seconds = max(adjusted, 1e-9)

    def sweep_fanouts(self, fanout_values: Sequence[int], num_layers: int,
                      batch_size: int) -> List[Tuple[int, IterationCost]]:
        """Predict costs for a sweep of per-layer fanouts (Fig. 4a x-axis)."""
        results = []
        for fanout in fanout_values:
            cost = self.predict([fanout] * num_layers, batch_size)
            results.append((fanout, cost))
        return results
